//! Streaming cluster tails: gap-free, duplicate-free resume across a shard
//! kill-and-restart, over real sockets.
//!
//! The acceptance bar this asserts:
//!
//! * a wire `ObsSubscribe` through the router delivers, across a subscribed
//!   shard being stopped and respawned over its durable store
//!   (`replace_shard` re-pointing the ring slot), a stream whose rows are
//!   **bit-exactly** the rows a post-hoc routed `ObsQuery` returns over the
//!   same range — zero gaps, zero duplicates,
//! * the in-process [`RouterHandle::cluster_tail`] push path (what the
//!   control plane consumes) does the same, and its `resumed` counter
//!   records the leg resubscription that spliced the stream back together.

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const TENANTS: [&str; 4] = ["tail-a", "tail-b", "tail-c", "tail-d"];

fn shard_registry(seed: u64) -> Arc<LearnerRegistry> {
    let registry = LearnerRegistry::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let mut rng = SeedRng::new(seed + i as u64);
        registry
            .register(
                DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
    }
    Arc::new(registry)
}

/// Boots one durable observed shard generation over `dir`: sealed chunks
/// spill through while serving, and a respawn over the same directory
/// rehydrates the previous generation's timeline before answering.
fn spawn_shard(seed: u64, dir: &Path) -> ShardProcess {
    let registry = shard_registry(seed);
    let store = Store::open(dir).unwrap();
    store.bootstrap(&registry).unwrap();
    let obs = Obs::new(ObsConfig::default().with_chunk_events(8));
    ShardProcess::spawn_durable_observed(
        registry,
        WireConfig::tcp_loopback(),
        Some(store),
        Some(obs),
    )
    .unwrap()
}

fn temp_base(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-live-tail-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).unwrap();
    path
}

fn burst(client: &mut WireClient, tenant: &str, step: usize) {
    client
        .call(ServeRequest::LearnOnline {
            deployment: tenant.into(),
            batch: traffic::support_batch(IMAGE, &[2 * step, 2 * step + 1], 3),
        })
        .unwrap();
    for _ in 0..3 {
        client
            .call(ServeRequest::Infer {
                deployment: tenant.into(),
                image: traffic::class_image(IMAGE, 2 * step, 0.01),
            })
            .unwrap();
    }
}

/// One event row projected to raw bits for multiset comparison.
type RowBits = (String, u8, u64, u64, u64, u64, u32, u64);

/// Bit-exact projection of an event — the derived `PartialEq` treats NaN
/// accuracy as unequal to itself, which is wrong for "is this the same row".
fn bits(event: &Event) -> RowBits {
    (
        event.deployment.clone(),
        event.kind.code(),
        event.seq,
        event.time_us,
        event.energy_mj.to_bits(),
        event.latency_us,
        event.accuracy.to_bits(),
        event.wal_bytes,
    )
}

/// Drains tail batches until the streamed rows bit-match `expected` (sorted
/// multisets) or the deadline passes; returns the streamed rows in arrival
/// order. Duplicate rows would make the multisets diverge permanently, so
/// equality is simultaneously the zero-gap and zero-duplicate assert.
fn drain_until_match(
    stream: &mut ObsTailStream,
    expected: &[RowBits],
    deadline: Duration,
) -> Vec<Event> {
    // A watchdog raises the stop flag so a stream that went silent unblocks
    // `next_batch` (via the socket read timeout) instead of hanging the test.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            std::thread::sleep(deadline);
            stop.store(true, Ordering::Release);
        });
    }
    let mut rows: Vec<Event> = Vec::new();
    loop {
        let mut sorted: Vec<_> = rows.iter().map(bits).collect();
        sorted.sort_unstable();
        if sorted == expected {
            return rows;
        }
        match stream.next_batch(Some(&stop)) {
            Ok(Some(batch)) => rows.extend(batch.events),
            Ok(None) => panic!(
                "tail never converged: streamed {} rows, expected {} ({} missing)",
                sorted.len(),
                expected.len(),
                expected.iter().filter(|row| !sorted.contains(row)).count(),
            ),
            Err(e) => panic!("tail stream broke: {e}"),
        }
    }
}

#[test]
fn wire_cluster_tail_survives_shard_restart_bit_exact() {
    let base = temp_base("wire");
    let dirs = [base.join("shard0"), base.join("shard1")];
    let mut shards: Vec<Option<ShardProcess>> =
        dirs.iter().enumerate().map(|(i, dir)| Some(spawn_shard(40 + i as u64, dir))).collect();
    let addrs: Vec<BoundAddr> =
        shards.iter().map(|s| s.as_ref().unwrap().addr().clone()).collect();
    let router_obs = Obs::new(ObsConfig::default());
    let config = RouterConfig::tcp_loopback(addrs)
        .with_deployments(&TENANTS)
        .with_obs(router_obs.clone())
        .with_pool(PoolConfig {
            connect_attempts: 2,
            backoff: Duration::from_millis(5),
            cooldown: Duration::from_millis(100),
            max_idle: 4,
        });
    RouterServer::run(&config, move |router| {
        // Subscribe BEFORE any traffic: the back-fill is empty and every
        // serving row must arrive through the live stream.
        let sub = WireClient::connect(router.addr()).unwrap();
        sub.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut stream = sub.obs_subscribe(&ObsQuery::all(), None).unwrap();

        let mut client = WireClient::connect(router.addr()).unwrap();
        // A tenant homed on each shard keeps both legs busy; if the hash
        // put all four on one shard, migrate one over (the Migration event
        // then rides the router-local leg like any other cluster event).
        let victim_shard = router.shard_for(TENANTS[0]).unwrap();
        let survivor_shard = (victim_shard + 1) % 2;
        let victim_tenant = TENANTS[0];
        let survivor_tenant = match TENANTS
            .iter()
            .find(|t| router.shard_for(t).unwrap() == survivor_shard)
            .copied()
        {
            Some(tenant) => tenant,
            None => {
                router.migrate(TENANTS[1], survivor_shard).unwrap();
                TENANTS[1]
            }
        };

        burst(&mut client, victim_tenant, 0);
        burst(&mut client, survivor_tenant, 0);

        // Kill the subscribed home shard mid-stream and boot a fresh
        // generation over its store directory; the router leg re-resolves
        // the slot's address and resubscribes from its cursor, so the
        // merged stream resumes with no gaps and no duplicates.
        shards[victim_shard].take().unwrap().stop();
        burst(&mut client, survivor_tenant, 1);
        let reborn = spawn_shard(40 + victim_shard as u64, &dirs[victim_shard]);
        router.replace_shard(victim_shard, reborn.addr().clone()).unwrap();
        shards[victim_shard] = Some(reborn);

        burst(&mut client, victim_tenant, 1);
        burst(&mut client, survivor_tenant, 2);

        // Traffic is quiesced: the post-hoc routed query over the full
        // range is now the ground truth the stream must converge to.
        let reference = router.obs_query(&ObsQuery::all());
        assert_eq!(reference.shards_err, 0, "every shard answered the reference query");
        assert!(!reference.truncated, "reference query must cover the full range");
        let mut expected: Vec<_> = reference.events.iter().map(bits).collect();
        expected.sort_unstable();

        let rows = drain_until_match(&mut stream, &expected, Duration::from_secs(20));
        // Arrival order within the merged stream is frame-ordered: each
        // frame is time-sorted, and resumed back-fill precedes later live
        // rows of the same leg. (Cross-leg arrival interleaving is free to
        // differ from global time order; multiset equality above is the
        // zero-gap, zero-duplicate invariant.)
        assert!(!rows.is_empty());
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn in_process_cluster_tail_resumes_and_counts() {
    let base = temp_base("local");
    let dir = base.join("shard0");
    let mut shard = Some(spawn_shard(7, &dir));
    let router_obs = Obs::new(ObsConfig::default());
    let config =
        RouterConfig::tcp_loopback(vec![shard.as_ref().unwrap().addr().clone()])
            .with_deployments(&TENANTS)
            .with_obs(router_obs.clone())
            .with_pool(PoolConfig {
                connect_attempts: 2,
                backoff: Duration::from_millis(5),
                cooldown: Duration::from_millis(100),
                max_idle: 4,
            });
    RouterServer::run(&config, move |router| {
        let tail = router.cluster_tail(&ObsQuery::all(), None);
        assert_eq!(tail.legs(), 2, "one shard leg plus the router-local leg");

        let mut client = WireClient::connect(router.addr()).unwrap();
        burst(&mut client, TENANTS[0], 0);

        shard.take().unwrap().stop();
        let reborn = spawn_shard(7, &dir);
        router.replace_shard(0, reborn.addr().clone()).unwrap();
        shard = Some(reborn);
        burst(&mut client, TENANTS[0], 1);

        let reference = router.obs_query(&ObsQuery::all());
        let mut expected: Vec<_> = reference.events.iter().map(bits).collect();
        expected.sort_unstable();

        // Drain leg batches until the consumed rows bit-match the post-hoc
        // query — dedup-free equality doubles as the no-duplicate assert.
        let started = Instant::now();
        let mut rows: Vec<Event> = Vec::new();
        loop {
            let mut sorted: Vec<_> = rows.iter().map(bits).collect();
            sorted.sort_unstable();
            if sorted == expected {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(20),
                "cluster tail never converged: {} of {} rows",
                sorted.len(),
                expected.len()
            );
            if let Ok(batch) = tail.recv_timeout(Duration::from_millis(100)) {
                rows.extend(batch.events);
            }
        }
        assert!(
            tail.resumed() >= 1,
            "the shard leg must have resubscribed across the restart"
        );
        assert_eq!(tail.dropped(), 0, "nothing shed in the non-adversarial path");
        // The reborn shard must outlive the draining above.
        drop(shard);
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&base);
}
