//! Smoke test: the whole pipeline — pretraining, metalearning, the FSCIL
//! session protocol and evaluation — must run end-to-end from the facade
//! crate's prelude on the micro configuration.

use ofscil::prelude::*;

#[test]
fn micro_experiment_runs_and_reports_finite_accuracies() {
    let outcome = run_experiment(&ExperimentConfig::micro(42)).expect("micro experiment must run");
    let accuracies = &outcome.sessions.accuracies;
    assert!(!accuracies.is_empty(), "protocol must produce at least one session");
    for (session, &acc) in accuracies.iter().enumerate() {
        assert!(acc.is_finite(), "session {session} accuracy is not finite: {acc}");
        assert!(
            (0.0..=1.0).contains(&acc),
            "session {session} accuracy out of range: {acc}"
        );
    }
}

#[test]
fn micro_experiment_is_deterministic_across_runs() {
    let a = run_experiment(&ExperimentConfig::micro(42)).expect("first run");
    let b = run_experiment(&ExperimentConfig::micro(42)).expect("second run");
    assert_eq!(a.sessions.accuracies, b.sessions.accuracies);
}
