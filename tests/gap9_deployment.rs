//! Integration tests of the GAP9 deployment model against the paper's
//! deployment claims (Table I cost table, Table IV energy table, Fig. 2
//! scaling, and the 12 mJ-per-class headline).

use ofscil::nn::models::{mobilenet_v2, resnet12, MobileNetVariant};
use ofscil::prelude::*;

#[test]
fn table1_cost_relations_hold() {
    let mut rng = SeedRng::new(0);
    let mut x1 = mobilenet_v2(MobileNetVariant::X1, &mut rng);
    let mut x2 = mobilenet_v2(MobileNetVariant::X2, &mut rng);
    let mut x4 = mobilenet_v2(MobileNetVariant::X4, &mut rng);
    let mut r12 = resnet12(&mut rng);

    let p1 = profile_with_fcr(&mut x1, 256, 32, 32);
    let p2 = profile_with_fcr(&mut x2, 256, 32, 32);
    let p4 = profile_with_fcr(&mut x4, 256, 32, 32);
    let pr = profile_with_fcr(&mut r12, 512, 32, 32);

    // Paper Table I: MobileNetV2 variants share ~2.5 M params; ResNet-12 has
    // ~12.9 M. MACs: 25.9 / 45.4 / 149.2 / 525.3 M.
    assert_eq!(p1.params, p2.params);
    assert_eq!(p2.params, p4.params);
    assert!((2.0..3.0).contains(&p1.params_millions()), "{}", p1.params_millions());
    assert!((11.0..15.0).contains(&pr.params_millions()), "{}", pr.params_millions());
    assert!(p1.macs < p2.macs && p2.macs < p4.macs && p4.macs < pr.macs);

    // The paper's headline efficiency ratios: ResNet-12 vs MobileNetV2 x4 is
    // ~3.5x the MACs and ~5.2x the parameters.
    let mac_ratio = pr.macs as f64 / p4.macs as f64;
    let param_ratio = pr.params as f64 / p4.params as f64;
    assert!((2.0..6.0).contains(&mac_ratio), "mac ratio {mac_ratio}");
    assert!((4.0..7.0).contains(&param_ratio), "param ratio {param_ratio}");
}

#[test]
fn table4_energy_ordering_and_magnitudes() {
    let executor = Gap9Executor::default();
    let mut rng = SeedRng::new(0);
    let mut energies = Vec::new();
    for variant in [MobileNetVariant::X1, MobileNetVariant::X2, MobileNetVariant::X4] {
        let backbone = mobilenet_v2(variant, &mut rng);
        let deployed = deploy_backbone(&backbone, 32, 32);
        let fcr = executor.fcr_inference(1280, 256, 8).unwrap();
        let inference = executor.backbone_inference(&deployed, 8).unwrap();
        let update = executor.em_update(&deployed, 1280, 256, 5, 8).unwrap();
        let finetune = executor
            .fcr_finetune(&deployed.name, 1280, 256, 60, 100, 8)
            .unwrap();

        // Within one backbone: FCR << inference << EM update << finetune.
        assert!(fcr.energy_mj < inference.energy_mj);
        assert!(inference.energy_mj < update.energy_mj);
        assert!(update.energy_mj < finetune.energy_mj);
        // Power stays within the ~50 mW envelope for every operation.
        for cost in [&fcr, &inference, &update, &finetune] {
            assert!(
                (35.0..55.0).contains(&cost.power_mw),
                "{} power {} mW",
                cost.operation,
                cost.power_mw
            );
        }
        energies.push(update.energy_mj);
    }
    // Larger stride profiles cost more energy per learned class (Table IV:
    // 11.35 / 12.75 / 22.75 mJ).
    assert!(energies[0] < energies[1] && energies[1] < energies[2], "{energies:?}");
    // The headline: the baseline profile learns a class for on the order of
    // 12 mJ.
    assert!((5.0..30.0).contains(&energies[0]), "per-class energy {} mJ", energies[0]);
}

#[test]
fn figure2_scaling_shapes() {
    let executor = Gap9Executor::default();
    let mut rng = SeedRng::new(0);
    let cores = [1usize, 2, 4, 8];

    // Backbone panels: MACs/cycle grows with cores and with the stride-relaxed
    // profiles (x4 > x2 > x1 at 8 cores).
    let mut at_8_cores = Vec::new();
    for variant in [MobileNetVariant::X1, MobileNetVariant::X2, MobileNetVariant::X4] {
        let deployed = deploy_backbone(&mobilenet_v2(variant, &mut rng), 32, 32);
        let sweep = executor.macs_per_cycle_sweep(&deployed, &cores, false).unwrap();
        for window in sweep.windows(2) {
            assert!(window[1].1 > window[0].1, "{variant:?} not monotone: {sweep:?}");
        }
        at_8_cores.push(sweep.last().unwrap().1);
    }
    assert!(at_8_cores[0] < at_8_cores[1] && at_8_cores[1] < at_8_cores[2]);
    assert!((3.5..8.0).contains(&at_8_cores[2]), "x4 at 8 cores: {}", at_8_cores[2]);

    // FCR panel: DMA-bound, so the gains from more cores are small and the
    // absolute MACs/cycle stays below 1.
    let fcr = deploy_fcr(1280, 256);
    let fcr_sweep = executor.macs_per_cycle_sweep(&fcr, &cores, false).unwrap();
    assert!(fcr_sweep.last().unwrap().1 < 1.0);
    let fcr_gain = fcr_sweep.last().unwrap().1 / fcr_sweep[0].1;
    let backbone_gain = {
        let deployed = deploy_backbone(&mobilenet_v2(MobileNetVariant::X4, &mut rng), 32, 32);
        let sweep = executor.macs_per_cycle_sweep(&deployed, &cores, false).unwrap();
        sweep.last().unwrap().1 / sweep[0].1
    };
    assert!(
        fcr_gain < backbone_gain,
        "FCR should parallelise worse than the backbone: {fcr_gain} vs {backbone_gain}"
    );

    // Fine-tuning panel: training kernels reach lower MACs/cycle than the int8
    // inference kernels.
    let finetune_sweep = executor.macs_per_cycle_sweep(&fcr, &cores, true).unwrap();
    for (inference, training) in fcr_sweep.iter().zip(&finetune_sweep) {
        assert!(training.1 < 8.0);
        assert!(training.1 > 0.0);
        let _ = inference;
    }
}

#[test]
fn deployment_uses_the_device_memory_hierarchy() {
    let config = Gap9Config::default();
    let mut rng = SeedRng::new(0);
    let backbone = mobilenet_v2(MobileNetVariant::X4, &mut rng);
    let deployed = deploy_backbone(&backbone, 32, 32);
    // The int8 model does not fit in L2 (which is what forces L3 streaming in
    // the model and on the real device), but fits in L3.
    assert!(deployed.total_weight_bytes() > config.l2_bytes as u64);
    assert!(deployed.total_weight_bytes() < config.l3_bytes as u64);
    // Single layers exceed L1 and therefore require tiling.
    assert!(deployed.layers.iter().any(|l| l.working_set_bytes() > config.l1_bytes as u64));
}
