//! End-to-end sharded serving: N backend serving processes behind the
//! consistent-hash router, exercised over real sockets.
//!
//! The acceptance bar this asserts:
//!
//! * requests land on the hash-ring-assigned shard (verified against each
//!   backend's own registry counters),
//! * a live-migrated deployment answers **bit-identically** on its new
//!   shard, with snapshot-byte equality across the move,
//! * a killed shard yields a typed `ShardUnavailable` error promptly — not
//!   a hang — while deployments on surviving shards keep serving.

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const DEPLOYMENTS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Every shard loads the same pretrained weights per deployment (identical
/// seeds), so a deployment's serving state is exactly its explicit memory —
/// the thing migration moves.
fn shard_registry() -> Arc<LearnerRegistry> {
    let registry = LearnerRegistry::new();
    for name in DEPLOYMENTS {
        let mut rng = SeedRng::new(11);
        registry
            .register(
                DeploymentSpec::new(name, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
    }
    Arc::new(registry)
}

fn spawn_shards(n: usize) -> (Vec<Arc<LearnerRegistry>>, Vec<ShardProcess>) {
    let registries: Vec<Arc<LearnerRegistry>> = (0..n).map(|_| shard_registry()).collect();
    let shards = registries
        .iter()
        .map(|registry| {
            ShardProcess::spawn(Arc::clone(registry), WireConfig::tcp_loopback()).unwrap()
        })
        .collect();
    (registries, shards)
}

fn router_config(shards: &[ShardProcess]) -> RouterConfig {
    RouterConfig::tcp_loopback(shards.iter().map(|s| s.addr().clone()).collect())
        .with_deployments(&DEPLOYMENTS)
        .with_pool(PoolConfig {
            connect_attempts: 2,
            backoff: Duration::from_millis(5),
            cooldown: Duration::from_millis(200),
            max_idle: 4,
        })
}

fn learn(client: &mut WireClient, deployment: &str, classes: &[usize]) {
    client
        .call(ServeRequest::LearnOnline {
            deployment: deployment.into(),
            batch: traffic::support_batch(IMAGE, classes, 3),
        })
        .unwrap();
}

fn infer(client: &mut WireClient, deployment: &str, class: usize) -> (usize, u32) {
    match client
        .call(ServeRequest::Infer {
            deployment: deployment.into(),
            image: traffic::class_image(IMAGE, class, 0.017),
        })
        .unwrap()
    {
        ServeResponse::Prediction { class, similarity, .. } => (class, similarity.to_bits()),
        other => panic!("unexpected response {other:?}"),
    }
}

fn snapshot(client: &mut WireClient, deployment: &str) -> Vec<u8> {
    match client.call(ServeRequest::Snapshot { deployment: deployment.into() }).unwrap() {
        ServeResponse::Snapshot { bytes } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn requests_land_on_the_ring_assigned_shard() {
    let (registries, shards) = spawn_shards(3);
    RouterServer::run(&router_config(&shards), |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        for (i, name) in DEPLOYMENTS.iter().enumerate() {
            learn(&mut client, name, &[i, i + 1]);
            let (class, _) = infer(&mut client, name, i);
            assert_eq!(class, i, "deployment {name} misclassified its own class");
        }

        // Each deployment's traffic hit exactly its ring-assigned shard.
        for name in DEPLOYMENTS {
            let owner = router.shard_for(name).unwrap();
            for (shard, registry) in registries.iter().enumerate() {
                let stats = registry.stats(name).unwrap();
                if shard == owner {
                    assert_eq!(stats.learn_requests, 1, "{name} owner {shard}");
                    assert_eq!(stats.infer_requests, 1, "{name} owner {shard}");
                } else {
                    assert_eq!(stats.learn_requests, 0, "{name} bystander {shard}");
                    assert_eq!(stats.infer_requests, 0, "{name} bystander {shard}");
                }
            }
        }

        // With 5 names and 3 shards at 64 vnodes, the keys must actually
        // spread (no shard owns everything).
        let owners: std::collections::BTreeSet<usize> = DEPLOYMENTS
            .iter()
            .map(|name| router.shard_for(name).unwrap())
            .collect();
        assert!(owners.len() >= 2, "all deployments collapsed onto one shard");

        // Scatter-gather statistics agree with the per-shard registries.
        let slices = router.cluster_stats();
        assert_eq!(slices.len(), 3);
        let total_learns: u64 = slices
            .iter()
            .flat_map(|slice| slice.deployments.iter().map(|d| d.learn_requests))
            .sum();
        assert_eq!(total_learns, DEPLOYMENTS.len() as u64);
        for slice in &slices {
            assert!(slice.error.is_none(), "shard {} errored: {:?}", slice.shard, slice.error);
        }
    })
    .unwrap();
}

#[test]
fn migration_is_bit_exact_and_atomically_remaps() {
    let (registries, shards) = spawn_shards(3);
    RouterServer::run(&router_config(&shards), |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        let mover = "gamma";
        learn(&mut client, mover, &[0, 1, 2]);
        learn(&mut client, mover, &[3]);

        let before_snapshot = snapshot(&mut client, mover);
        let before: Vec<(usize, u32)> =
            (0..4).map(|class| infer(&mut client, mover, class)).collect();

        let source = router.shard_for(mover).unwrap();
        let target = (source + 1) % 3;
        let report = router.migrate(mover, target).unwrap();
        assert_eq!(report.from, source);
        assert_eq!(report.to, target);
        assert_eq!(report.seq, 2, "two learn commits were exported");
        assert_eq!(report.classes, 4);
        assert_eq!(router.shard_for(mover).unwrap(), target);

        // Snapshot-hash equality across the move, through the router.
        assert_eq!(snapshot(&mut client, mover), before_snapshot);
        // Same bytes directly on the two registries.
        assert_eq!(
            registries[source].snapshot(mover).unwrap(),
            registries[target].snapshot(mover).unwrap()
        );

        // Inference on the new shard is bit-identical.
        for (class, (expected_class, expected_bits)) in before.iter().enumerate() {
            let (got_class, got_bits) = infer(&mut client, mover, class);
            assert_eq!(got_class, *expected_class);
            assert_eq!(got_bits, *expected_bits, "class {class} similarity bits diverged");
        }
        // And it actually ran on the target shard: the billing state came
        // along in the export, so the target's counters continue from the
        // migrated history (4 infers) instead of resetting to zero.
        assert!(registries[target].stats(mover).unwrap().infer_requests >= 8);

        // Post-migration writes land on the target and keep serving — the
        // adopted 2 migrated learns plus this fresh one — while the
        // source's counters stay frozen where the export cut them.
        learn(&mut client, mover, &[4]);
        assert_eq!(registries[target].stats(mover).unwrap().learn_requests, 3);
        assert_eq!(registries[source].stats(mover).unwrap().learn_requests, 2);

        // Migrating onto the current owner is a typed refusal.
        assert!(matches!(
            router.migrate(mover, target).unwrap_err(),
            RouterError::InvalidConfig(_)
        ));
    })
    .unwrap();
}

#[test]
fn restarted_router_recovers_migrated_placement_from_the_journal() {
    let mut log_path = std::env::temp_dir();
    log_path.push(format!("ofscil-router-placement-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let (registries, shards) = spawn_shards(3);
    let config = router_config(&shards).with_placement_log(&log_path);
    let mover = "gamma";

    // Router generation 1: learn, then migrate the deployment off its ring
    // shard. The override is journaled.
    let (source, target, moved_snapshot) = RouterServer::run(&config, |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        learn(&mut client, mover, &[0, 1]);
        let source = router.shard_for(mover).unwrap();
        let target = (source + 1) % 3;
        router.migrate(mover, target).unwrap();
        (source, target, snapshot(&mut client, mover))
    })
    .unwrap();

    // Router generation 2: same shard set, fresh process. Without the
    // journal it would hash the mover back onto its ring shard — whose
    // registry no longer matches the migrated state.
    RouterServer::run(&config, |router| {
        assert_eq!(
            router.shard_for(mover).unwrap(),
            target,
            "restarted router lost the migrated placement"
        );
        let mut client = WireClient::connect(router.addr()).unwrap();
        // Requests route to the shard that actually holds the memory.
        assert_eq!(snapshot(&mut client, mover), moved_snapshot);
        let (class, _) = infer(&mut client, mover, 1);
        assert_eq!(class, 1);
        assert!(registries[target].stats(mover).unwrap().infer_requests >= 1);
        assert_eq!(registries[source].stats(mover).unwrap().infer_requests, 0);
    })
    .unwrap();

    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn killed_shard_yields_typed_shard_unavailable_not_a_hang() {
    let (_registries, shards) = spawn_shards(3);
    let config = router_config(&shards);
    let mut shards: Vec<Option<ShardProcess>> = shards.into_iter().map(Some).collect();
    RouterServer::run(&config, move |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        for name in DEPLOYMENTS {
            learn(&mut client, name, &[0, 1]);
        }
        let victim_deployment = DEPLOYMENTS[0];
        let victim = router.shard_for(victim_deployment).unwrap();
        shards[victim].take().unwrap().stop();

        // The dead shard is a typed error, delivered promptly.
        let start = Instant::now();
        let err = client
            .call(ServeRequest::Infer {
                deployment: victim_deployment.into(),
                image: traffic::class_image(IMAGE, 0, 0.0),
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Remote(ServeError::ShardUnavailable { ref shard, .. })
                    if shard.starts_with(&victim.to_string())
            ),
            "expected ShardUnavailable for shard {victim}, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "failover detection took {:?}",
            start.elapsed()
        );

        // Deployments on surviving shards keep serving through the router.
        let mut served_elsewhere = 0;
        for name in DEPLOYMENTS {
            if router.shard_for(name).unwrap() != victim {
                infer(&mut client, name, 0);
                served_elsewhere += 1;
            }
        }
        assert!(served_elsewhere > 0, "every deployment lived on the killed shard");

        // Probing reports the outage (and the survivors' health).
        for health in router.probe() {
            assert_eq!(health.healthy, health.shard != victim, "shard {}", health.shard);
        }

        // Cluster stats degrade gracefully: the dead shard carries an error,
        // the rest answer.
        let slices = router.cluster_stats();
        for slice in &slices {
            if slice.shard == victim {
                assert!(slice.error.is_some());
            } else {
                assert!(slice.error.is_none(), "shard {}: {:?}", slice.shard, slice.error);
            }
        }

        // Draining the dead shard fails (its deployments cannot be
        // exported) but stays retryable: the second attempt resumes moving
        // the stranded deployments instead of claiming the shard is gone.
        let first = router.drain_shard(victim).unwrap_err();
        assert!(
            matches!(first, RouterError::ShardUnavailable { .. }),
            "unexpected drain error: {first}"
        );
        let retry = router.drain_shard(victim).unwrap_err();
        assert!(
            matches!(retry, RouterError::ShardUnavailable { .. }),
            "a partially-failed drain must stay retryable, got: {retry}"
        );
        // The victim's deployments are still (correctly) recorded on it.
        assert_eq!(router.shard_for(victim_deployment).unwrap(), victim);
    })
    .unwrap();
}

#[test]
fn budget_rejections_stay_out_of_throughput_counters_across_the_cluster() {
    // Shards whose deployments start with a zero budget and a Reject policy;
    // the budget is topped up out-of-band to admit an exact number of
    // requests, so the accepted/rejected split is fully determined.
    let registries: Vec<Arc<LearnerRegistry>> = (0..2)
        .map(|_| {
            let registry = LearnerRegistry::new();
            for name in DEPLOYMENTS {
                let mut rng = SeedRng::new(11);
                registry
                    .register(
                        DeploymentSpec::new(name, (IMAGE, IMAGE))
                            .with_energy_budget(0.0, BudgetPolicy::Reject),
                        OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
                    )
                    .unwrap();
            }
            Arc::new(registry)
        })
        .collect();
    let shards: Vec<ShardProcess> = registries
        .iter()
        .map(|registry| {
            ShardProcess::spawn(Arc::clone(registry), WireConfig::tcp_loopback()).unwrap()
        })
        .collect();

    RouterServer::run(&router_config(&shards), |router| {
        let victim = "alpha";
        let owner = router.shard_for(victim).unwrap();
        // Admit exactly one single-sample learn and one infer (both cost one
        // backbone+FCR pass); the half-pass slack keeps float noise harmless
        // while refusing any third pass.
        let pass_mj = registries[owner].pricing(victim).unwrap().infer_mj;
        registries[owner].top_up(victim, 2.5 * pass_mj).unwrap();

        let mut client = WireClient::connect(router.addr()).unwrap();
        let single_learn = |client: &mut WireClient| {
            client.call(ServeRequest::LearnOnline {
                deployment: victim.into(),
                batch: traffic::support_batch(IMAGE, &[0], 1),
            })
        };
        single_learn(&mut client).unwrap();
        infer(&mut client, victim, 0);
        // Budget spent: both of these must be refused with a typed error...
        for expect_learn in [false, true] {
            let err = if expect_learn {
                single_learn(&mut client).unwrap_err()
            } else {
                client
                    .call(ServeRequest::Infer {
                        deployment: victim.into(),
                        image: traffic::class_image(IMAGE, 0, 0.0),
                    })
                    .unwrap_err()
            };
            assert!(
                matches!(err, WireError::Remote(ServeError::BudgetExhausted { .. })),
                "expected BudgetExhausted, got {err:?}"
            );
        }

        // ...and the refusals must land in the per-type rejection counters,
        // never in the accepted-throughput counters — observed through the
        // router's scatter-gathered cluster statistics.
        let slices = router.cluster_stats();
        let stats = slices
            .iter()
            .flat_map(|slice| slice.deployments.iter())
            .find(|d| d.name == victim)
            .expect("victim deployment missing from cluster stats");
        assert_eq!(stats.infer_requests, 1, "accepted infers only");
        assert_eq!(stats.learn_requests, 1, "accepted learns only");
        assert_eq!(stats.rejected_infer, 1);
        assert_eq!(stats.rejected_learn, 1);
        assert_eq!(stats.rejected(), 2);
        assert_eq!(stats.accepted(), 2);
        // The wire roundtrip agrees bit-for-bit with the owning registry.
        assert_eq!(*stats, registries[owner].stats(victim).unwrap());
    })
    .unwrap();
}

#[test]
fn add_and_drain_rebalance_with_live_migrations() {
    let (_registries, mut shards) = spawn_shards(2);
    let config = router_config(&shards[..2]);
    // A third backend stands ready to join the ring mid-run.
    let extra_registry = shard_registry();
    let extra =
        ShardProcess::spawn(Arc::clone(&extra_registry), WireConfig::tcp_loopback()).unwrap();
    let extra_addr = extra.addr().clone();
    shards.push(extra);

    RouterServer::run(&config, |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        let mut snapshots = std::collections::HashMap::new();
        for (i, name) in DEPLOYMENTS.iter().enumerate() {
            learn(&mut client, name, &[i, i + 1]);
            snapshots.insert(*name, snapshot(&mut client, name));
        }

        // Scale out: the new shard takes over the arcs the ring assigns it,
        // and every moved deployment is live-migrated there.
        let (new_shard, moves) = router.add_shard(extra_addr.clone()).unwrap();
        assert_eq!(new_shard, 2);
        for report in &moves {
            assert_eq!(report.to, new_shard, "rebalance moves keys onto the new shard only");
        }
        assert!(!moves.is_empty(), "64 vnodes over 5 names should move something");

        // Drain it again: its deployments migrate off, bit-exactly, and the
        // ring stops routing to it.
        let drained = router.drain_shard(new_shard).unwrap();
        assert_eq!(drained.len(), moves.len());
        for name in DEPLOYMENTS {
            assert_ne!(router.shard_for(name).unwrap(), new_shard);
            assert_eq!(snapshot(&mut client, name), snapshots[name], "{name} diverged");
        }

        // Draining everything but one shard is refused at the brink.
        router.drain_shard(1).unwrap();
        assert!(matches!(
            router.drain_shard(0).unwrap_err(),
            RouterError::InvalidConfig(_)
        ));
    })
    .unwrap();
}
