//! End-to-end integration test: the complete O-FSCIL pipeline on the
//! laptop-scale profile, checking the qualitative properties the paper
//! reports (learning works, forgetting is graceful, the components help).

use ofscil::prelude::*;

/// A reduced micro configuration so the integration suite stays fast.
fn fast_config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::micro(seed);
    config.fscil.synthetic.num_classes = 20;
    config.fscil.synthetic.image_size = 14;
    config.fscil.num_base_classes = 10;
    config.fscil.num_sessions = 5;
    config.fscil.ways = 2;
    config.fscil.base_train_per_class = 14;
    config.fscil.test_per_class = 6;
    config.pretrain.epochs = 3;
    config.pretrain.batch_size = 20;
    if let Some(meta) = &mut config.metalearn {
        meta.iterations = 10;
    }
    config
}

#[test]
fn ofscil_learns_incrementally_without_collapse() {
    let outcome = run_experiment(&fast_config(3)).unwrap();
    let sessions = &outcome.sessions;
    let num_sessions = outcome.benchmark.config().num_sessions;
    assert_eq!(sessions.accuracies.len(), num_sessions + 1);

    // Base-session accuracy clearly above chance (10 base classes).
    assert!(
        sessions.session0() > 0.3,
        "base session accuracy {} too close to chance",
        sessions.session0()
    );
    // After all sessions the model still beats chance over all 20 classes.
    assert!(
        sessions.last_session() > 0.15,
        "final accuracy {} collapsed",
        sessions.last_session()
    );
    // Accuracy decreases as classes are added (the FSCIL forgetting trend) —
    // allow small non-monotonic wiggles but require an overall decline.
    assert!(
        sessions.last_session() <= sessions.session0() + 0.05,
        "accuracy unexpectedly increased from {} to {}",
        sessions.session0(),
        sessions.last_session()
    );
    // Every learned class has a prototype and an activation-memory entry.
    assert_eq!(
        outcome.model.em().num_classes(),
        outcome.benchmark.config().total_classes()
    );
    assert_eq!(
        outcome.model.activation_means().len(),
        outcome.benchmark.config().total_classes()
    );
}

#[test]
fn pretraining_and_metalearning_improve_over_random_backbone() {
    let config = fast_config(5);
    // Trained pipeline.
    let trained = run_experiment(&config).unwrap();

    // Untrained control: same data and protocol, but no pretraining epochs
    // and no metalearning.
    let mut control_config = config.clone();
    control_config.pretrain.epochs = 0;
    control_config.metalearn = None;
    let control = run_experiment(&control_config).unwrap();

    assert!(
        trained.sessions.average() > control.sessions.average(),
        "training did not help: trained {} vs random {}",
        trained.sessions.average(),
        control.sessions.average()
    );
}

#[test]
fn online_learning_is_single_pass_and_expands_the_memory() {
    let config = fast_config(7);
    let outcome = run_experiment(&config).unwrap();
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;

    // Learn a brand-new synthetic class (one not in the protocol) online from
    // five samples only, in a single call.
    let generator = SyntheticCifar::new(benchmark.config().synthetic.clone(), 99);
    let novel_class = 19usize;
    let before = model.em().num_classes();
    let support = generator.generate_split(&[novel_class], 5, 0).unwrap();
    model.learn_classes_online(&support.full_batch().unwrap()).unwrap();
    assert_eq!(model.em().num_classes(), before.max(novel_class + 1).max(before));
    assert!(model.em().prototype(novel_class).is_ok());
}

#[test]
fn experiments_are_deterministic_across_runs() {
    let a = run_experiment(&fast_config(11)).unwrap();
    let b = run_experiment(&fast_config(11)).unwrap();
    assert_eq!(a.sessions.accuracies, b.sessions.accuracies);
    assert_eq!(a.pretrain.epoch_losses, b.pretrain.epoch_losses);
}
