//! Concurrency coverage for the serving runtime: N client threads fire mixed
//! infer/learn traffic at multiple deployments of one [`ServeRuntime`] and
//! every response must arrive, with deterministic per-deployment class
//! counts afterwards.

use ofscil::prelude::*;
use ofscil::serve::traffic;

const IMAGE: usize = 8;

fn micro_model(seed: u64) -> OFscilModel {
    let mut rng = SeedRng::new(seed);
    OFscilModel::new(BackboneKind::Micro, 16, &mut rng)
}

fn class_image(class: usize, jitter: f32) -> Tensor {
    traffic::class_image(IMAGE, class, jitter)
}

fn support_batch(classes: &[usize], shots: usize) -> Batch {
    traffic::support_batch(IMAGE, classes, shots)
}

#[test]
fn concurrent_mixed_traffic_loses_nothing() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 6;

    let registry = LearnerRegistry::new();
    registry
        .register(DeploymentSpec::new("alpha", (IMAGE, IMAGE)), micro_model(0))
        .unwrap();
    registry
        .register(DeploymentSpec::new("beta", (IMAGE, IMAGE)), micro_model(1))
        .unwrap();

    // Each deployment is taught a fixed class set, repeatedly and from
    // several threads at once. Prototype writes are overwrites, so the final
    // class count is deterministic no matter how the traffic interleaves.
    let alpha_classes = [0usize, 1, 2];
    let beta_classes = [10usize, 11, 12, 13];

    let config = ServeConfig::default().with_max_batch(8);
    let (responses, expected) = ServeRuntime::run(&registry, &config, |client| {
        let mut expected = 0usize;
        let mut pending = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for who in 0..CLIENTS {
                let client = client.clone();
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    for round in 0..ROUNDS {
                        // Every thread teaches both deployments their fixed
                        // class sets...
                        mine.push(client.submit(ServeRequest::LearnOnline {
                            deployment: "alpha".into(),
                            batch: support_batch(&alpha_classes, 2),
                        }));
                        mine.push(client.submit(ServeRequest::LearnOnline {
                            deployment: "beta".into(),
                            batch: support_batch(&beta_classes, 2),
                        }));
                        // ...and sprays inference at them.
                        for i in 0..3 {
                            let target = if (who + round + i) % 2 == 0 { "alpha" } else { "beta" };
                            mine.push(client.submit(ServeRequest::Infer {
                                deployment: target.into(),
                                image: class_image(who + round + i, 0.01),
                            }));
                        }
                    }
                    mine
                }));
            }
            for handle in handles {
                let mine = handle.join().expect("client thread panicked");
                expected += mine.len();
                pending.extend(mine);
            }
        });
        let responses: Vec<_> = pending.into_iter().map(PendingResponse::wait).collect();
        (responses, expected)
    })
    .unwrap();

    // No lost responses: one reply per submitted request, all successful.
    assert_eq!(responses.len(), expected);
    assert_eq!(expected, CLIENTS * ROUNDS * 5);
    for response in &responses {
        assert!(response.is_ok(), "a request failed: {response:?}");
    }

    // Deterministic per-deployment state.
    let alpha = registry.stats("alpha").unwrap();
    let beta = registry.stats("beta").unwrap();
    assert_eq!(alpha.classes, alpha_classes.len());
    assert_eq!(beta.classes, beta_classes.len());
    assert_eq!(alpha.learn_requests, (CLIENTS * ROUNDS) as u64);
    assert_eq!(beta.learn_requests, (CLIENTS * ROUNDS) as u64);
    // Every infer was answered by some batch; batches never exceed the cap.
    assert_eq!(
        alpha.infer_requests + beta.infer_requests,
        (CLIENTS * ROUNDS * 3) as u64
    );
    assert!(alpha.largest_batch <= config.max_batch);
    assert!(beta.largest_batch <= config.max_batch);
    let classes = registry
        .with_model("alpha", |model| model.em().classes())
        .unwrap();
    assert_eq!(classes, alpha_classes.to_vec());
    let classes = registry
        .with_model("beta", |model| model.em().classes())
        .unwrap();
    assert_eq!(classes, beta_classes.to_vec());
}

#[test]
fn snapshot_replicates_across_deployments_under_load() {
    let registry = LearnerRegistry::new();
    registry
        .register(DeploymentSpec::new("primary", (IMAGE, IMAGE)), micro_model(0))
        .unwrap();
    registry
        .register(DeploymentSpec::new("replica", (IMAGE, IMAGE)), micro_model(0))
        .unwrap();

    let bytes = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
        client
            .call(ServeRequest::LearnOnline {
                deployment: "primary".into(),
                batch: support_batch(&[0, 1, 2], 3),
            })
            .unwrap();
        match client
            .call(ServeRequest::Snapshot { deployment: "primary".into() })
            .unwrap()
        {
            ServeResponse::Snapshot { bytes } => bytes,
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();

    // Warm-restart the replica from the snapshot; its memory is now
    // byte-identical to the primary's.
    let restored = registry.restore("replica", &bytes).unwrap();
    assert_eq!(restored, 3);
    assert_eq!(registry.snapshot("replica").unwrap(), bytes);

    // The replica serves predictions from the replicated memory alone.
    ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
        let response = client
            .call(ServeRequest::Infer {
                deployment: "replica".into(),
                image: class_image(2, 0.015),
            })
            .unwrap();
        match response {
            ServeResponse::Prediction { class, .. } => assert_eq!(class, 2),
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();
}
