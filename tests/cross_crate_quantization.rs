//! Integration tests for the quantized deployment path: int8 weights and
//! activations (Table II INT8 rows) and the prototype-precision sweep
//! (Fig. 3) on a trained model.

use ofscil::prelude::*;

fn fast_config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::micro(seed);
    config.fscil.synthetic.num_classes = 16;
    config.fscil.synthetic.image_size = 14;
    config.fscil.num_base_classes = 8;
    config.fscil.num_sessions = 4;
    config.fscil.ways = 2;
    config.fscil.base_train_per_class = 12;
    config.fscil.test_per_class = 6;
    config.pretrain.epochs = 3;
    config.pretrain.batch_size = 16;
    if let Some(meta) = &mut config.metalearn {
        meta.iterations = 8;
    }
    config
}

#[test]
fn int8_accuracy_tracks_fp32_accuracy() {
    let fp32 = run_experiment(&fast_config(21)).unwrap();
    let int8 = run_experiment(&fast_config(21).with_precision(EvalPrecision::Int8)).unwrap();
    assert!(int8.model.is_int8());
    assert!(!fp32.model.is_int8());
    // The paper reports int8 accuracy within a fraction of a percent of fp32;
    // on the micro profile we allow a wider band but no collapse.
    let gap = fp32.sessions.average() - int8.sessions.average();
    assert!(
        gap < 0.15,
        "int8 degraded too much: fp32 {} vs int8 {}",
        fp32.sessions.average(),
        int8.sessions.average()
    );
}

#[test]
fn prototype_precision_sweep_matches_figure3_shape() {
    let outcome = run_experiment(&fast_config(22)).unwrap();
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;
    let test = benchmark
        .test_after_session(benchmark.config().num_sessions)
        .unwrap();

    let mut accuracy_by_bits = Vec::new();
    for precision in PrototypePrecision::figure3_sweep() {
        model.set_prototype_precision(precision);
        let accuracy = model.evaluate(&test, 64).unwrap();
        accuracy_by_bits.push((precision.bits(), accuracy));
    }
    let full = accuracy_by_bits[0].1;
    let at = |bits: u8| {
        accuracy_by_bits
            .iter()
            .find(|(b, _)| *b == bits)
            .map(|(_, a)| *a)
            .unwrap()
    };
    // Fig. 3: 8-bit and even 3-bit prototypes match full precision closely.
    assert!((full - at(8)).abs() < 0.05, "8-bit dropped: {} vs {}", at(8), full);
    assert!(full - at(3) < 0.10, "3-bit dropped: {} vs {}", at(3), full);
    // 1-bit (sign-only) storage loses accuracy — in the paper's Fig. 3 it is
    // the first precision that visibly degrades, and with the micro profile's
    // small d_p the sign vectors collide hard. It must merely not fall below
    // chance.
    assert!(at(1) >= 0.8 / 16.0, "1-bit fell below chance: {}", at(1));
    assert!(at(3) >= at(1), "3-bit should be at least as good as 1-bit");
}

#[test]
fn em_footprint_shrinks_linearly_with_bits() {
    let outcome = run_experiment(&fast_config(23)).unwrap();
    let mut model = outcome.model;
    let kb_32 = model.em().footprint().kilobytes();
    model.set_prototype_precision(PrototypePrecision::new(8).unwrap());
    let kb_8 = model.em().footprint().kilobytes();
    model.set_prototype_precision(PrototypePrecision::new(3).unwrap());
    let kb_3 = model.em().footprint().kilobytes();
    assert!((kb_32 / kb_8 - 4.0).abs() < 1e-6);
    assert!((kb_8 / kb_3 - 8.0 / 3.0).abs() < 1e-6);
}

#[test]
fn quantized_tensors_round_trip_through_the_model_feature_path() {
    // The integer matmul of the quant crate agrees with the float path on the
    // features produced by a real (trained) FCR — a cross-crate consistency
    // check of scales and shapes.
    let outcome = run_experiment(&fast_config(24)).unwrap();
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;
    let batch = benchmark.base_train().batch(&[0, 1, 2, 3]).unwrap();
    let features = model.extract_features(&batch.images, Mode::Eval).unwrap();
    let q = QuantTensor::quantize_auto(&features);
    let back = q.dequantize();
    let relative = features.max_abs_diff(&back).unwrap() / features.max_abs().max(1e-6);
    assert!(relative < 0.02, "int8 round trip error {relative}");
}
