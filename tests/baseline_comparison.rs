//! Integration test comparing O-FSCIL against the baseline heads on the same
//! backbone, FCR and data — the qualitative content of Table II.

use ofscil::prelude::*;

fn fast_config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::micro(seed);
    config.fscil.synthetic.num_classes = 18;
    config.fscil.synthetic.image_size = 14;
    config.fscil.num_base_classes = 10;
    config.fscil.num_sessions = 4;
    config.fscil.ways = 2;
    config.fscil.base_train_per_class = 14;
    config.fscil.test_per_class = 6;
    config.pretrain.epochs = 3;
    config.pretrain.batch_size = 20;
    if let Some(meta) = &mut config.metalearn {
        meta.iterations = 10;
    }
    config
}

#[test]
fn ofscil_is_competitive_with_every_baseline_head() {
    let outcome = run_experiment(&fast_config(31)).unwrap();
    let ofscil_avg = outcome.sessions.average();
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;

    let mut results = Vec::new();

    let mut ncm = NearestClassMean::new(SimilarityMetric::Cosine);
    results.push((
        "ncm-backbone",
        run_baseline_protocol(&mut model, &benchmark, &mut ncm, FeatureSpace::Backbone, 64)
            .unwrap()
            .average(),
    ));

    let mut euclid = NearestClassMean::new(SimilarityMetric::Euclidean);
    results.push((
        "ncm-euclid-projected",
        run_baseline_protocol(&mut model, &benchmark, &mut euclid, FeatureSpace::Projected, 64)
            .unwrap()
            .average(),
    ));

    let mut etf = EtfHead::new(
        model.projection_dim(),
        benchmark.config().total_classes(),
        31,
    );
    results.push((
        "etf-projected",
        run_baseline_protocol(&mut model, &benchmark, &mut etf, FeatureSpace::Projected, 64)
            .unwrap()
            .average(),
    ));

    for (name, avg) in &results {
        // Every baseline produces a sane accuracy…
        assert!(
            (0.0..=1.0).contains(avg) && *avg > 1.0 / 18.0,
            "{name} collapsed to {avg}"
        );
        // …and O-FSCIL's explicit-memory classifier is at least competitive
        // with it (small tolerance: on the micro profile the gaps are small).
        assert!(
            ofscil_avg + 0.08 >= *avg,
            "O-FSCIL ({ofscil_avg}) clearly below {name} ({avg})"
        );
    }
}

#[test]
fn baseline_heads_share_the_forgetting_trend() {
    let outcome = run_experiment(&fast_config(32)).unwrap();
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;
    let mut ncm = NearestClassMean::new(SimilarityMetric::Cosine);
    let results =
        run_baseline_protocol(&mut model, &benchmark, &mut ncm, FeatureSpace::Projected, 64)
            .unwrap();
    // Accuracy over a growing class set does not increase overall.
    assert!(results.last_session() <= results.session0() + 0.05);
    assert_eq!(results.accuracies.len(), benchmark.config().num_sessions + 1);
}
