//! End-to-end durability: a store-backed serving process killed mid-workload
//! recovers every deployment bit-exactly, replication subscribers anchor
//! from checkpoints, and a follower promotes to a writable durable primary.
//!
//! The acceptance bar this asserts:
//!
//! * a store-backed runtime killed mid-workload (including a torn WAL tail)
//!   recovers every deployment's explicit memory, replication sequence
//!   number and energy budget **bit-exactly**, and a recovered deployment
//!   answers `Infer` with bit-identical predictions,
//! * subscribers (and the one-shot `ReAnchor` request) are anchored from the
//!   store's latest checkpoint and still converge bit-exactly with the live
//!   primary,
//! * a promoted follower accepts writes that a re-attached subscriber then
//!   replicates.

use ofscil::prelude::*;
use ofscil::serve::traffic;
use std::path::PathBuf;
use std::time::Duration;

const IMAGE: usize = 8;
const WAIT: Duration = Duration::from_secs(30);

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-durable-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Every process generation loads the same pretrained weights (identical
/// seeds); the explicit memory, sequence number and meter are what the store
/// must carry across the kill.
fn model() -> OFscilModel {
    let mut rng = SeedRng::new(7);
    OFscilModel::new(BackboneKind::Micro, 16, &mut rng)
}

fn registry_with(names: &[&str], budget_mj: Option<f64>) -> LearnerRegistry {
    let registry = LearnerRegistry::new();
    for name in names {
        let mut spec = DeploymentSpec::new(name, (IMAGE, IMAGE));
        if let Some(budget) = budget_mj {
            spec = spec.with_energy_budget(budget, BudgetPolicy::Reject);
        }
        registry.register(spec, model()).unwrap();
    }
    registry
}

fn support(classes: &[usize]) -> Batch {
    traffic::support_batch(IMAGE, classes, 3)
}

fn learn(client: &mut WireClient, deployment: &str, classes: &[usize]) {
    client
        .call(ServeRequest::LearnOnline { deployment: deployment.into(), batch: support(classes) })
        .unwrap();
}

fn infer(client: &mut WireClient, deployment: &str, class: usize) -> (usize, u32) {
    match client
        .call(ServeRequest::Infer {
            deployment: deployment.into(),
            image: traffic::class_image(IMAGE, class, 0.013),
        })
        .unwrap()
    {
        ServeResponse::Prediction { class, similarity, .. } => (class, similarity.to_bits()),
        other => panic!("unexpected response {other:?}"),
    }
}

fn wire_snapshot(client: &mut WireClient, deployment: &str) -> Vec<u8> {
    match client.call(ServeRequest::Snapshot { deployment: deployment.into() }).unwrap() {
        ServeResponse::Snapshot { bytes } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

/// One deployment's full durable identity, read straight off a registry.
fn identity(registry: &LearnerRegistry, name: &str) -> (Vec<u8>, u64, u64, Option<u64>) {
    let (seq, snapshot) = registry.snapshot_with_seq(name).unwrap();
    let (spent, budget) = registry.energy_state(name).unwrap();
    (snapshot, seq, spent.to_bits(), budget.map(f64::to_bits))
}

#[test]
fn killed_store_backed_runtime_recovers_every_deployment_bit_exactly() {
    let dir = temp_dir("kill-recover");
    let names = ["tenant-a", "tenant-b"];

    // Generation 1: a store-backed server takes a mixed workload, then the
    // process "dies" (the scope ends with no graceful persistence step —
    // durability comes exclusively from the per-record WAL).
    let expected: Vec<_> = {
        let registry = registry_with(&names, Some(1e6));
        let store = Store::open(&dir).unwrap();
        assert!(store.bootstrap(&registry).unwrap().is_empty());
        let (identities, predictions) = WireServer::run_with_store(
            &registry,
            &WireConfig::tcp_loopback(),
            Some(&store),
            |server| {
                let mut client = WireClient::connect(server.addr()).unwrap();
                learn(&mut client, "tenant-a", &[0, 1]);
                learn(&mut client, "tenant-b", &[0]);
                client
                    .call(ServeRequest::TopUpBudget {
                        deployment: "tenant-b".into(),
                        energy_mj: 123.25,
                    })
                    .unwrap();
                // This inference's spend lands on the meter before the final
                // learns journal it, so the journaled meter state covers it.
                let _ = infer(&mut client, "tenant-a", 0);
                learn(&mut client, "tenant-a", &[2]);
                learn(&mut client, "tenant-b", &[1, 2]);
                // The durable identity as of the last journaled record; the
                // witness inferences *after* this point spend meter energy
                // that is deliberately not journaled (energy accounting is
                // durable at learn/top-up granularity).
                let identities: Vec<_> = names.iter().map(|n| identity(&registry, n)).collect();
                (identities, names.map(|name| infer(&mut client, name, 1)))
            },
        )
        .unwrap();
        // The kill also tears a half-written record onto the WAL tail —
        // recovery must truncate it, not fail.
        for name in names {
            let wal = dir.join(format!("{name}.wal"));
            let mut bytes = std::fs::read(&wal).unwrap();
            bytes.extend_from_slice(&[0x03, 0xff, 0xff, 0x00, 0x00, 0xde, 0xad]);
            std::fs::write(&wal, &bytes).unwrap();
        }
        identities.into_iter().zip(predictions).collect()
    };

    // Generation 2: a fresh process, fresh registry, same store directory.
    let registry = registry_with(&names, None);
    let store = Store::open(&dir).unwrap();
    let reports = store.bootstrap(&registry).unwrap();
    assert_eq!(reports.len(), 2, "both deployments recover: {reports:?}");

    for (name, (want, _)) in names.iter().zip(&expected) {
        let got = identity(&registry, name);
        assert_eq!(got.0, want.0, "{name}: snapshot bytes diverged");
        assert_eq!(got.1, want.1, "{name}: replication seq diverged");
        assert_eq!(got.2, want.2, "{name}: energy spend bits diverged");
        assert_eq!(got.3, want.3, "{name}: energy budget bits diverged");
    }

    // The recovered process serves — and predicts bit-identically.
    WireServer::run_with_store(&registry, &WireConfig::tcp_loopback(), Some(&store), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        for (name, (_, want)) in names.iter().zip(&expected) {
            let got = infer(&mut client, name, 1);
            assert_eq!(got, *want, "{name}: post-recovery prediction diverged");
        }
        // New commits journal on top of the recovered log.
        learn(&mut client, "tenant-a", &[5]);
    })
    .unwrap();
    let final_seq = registry.snapshot_with_seq("tenant-a").unwrap().0;
    assert_eq!(store.latest_state("tenant-a").unwrap().seq, final_seq);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribers_and_reanchors_are_served_from_the_checkpoint() {
    let dir = temp_dir("checkpoint-anchor");
    let primary = registry_with(&["tenant"], None);
    // Checkpoint every 4 records, compact aggressively: the subscriber's
    // anchor comes from checkpoint + compacted tail, never a live snapshot.
    let store = Store::open_with(
        &dir,
        StoreConfig::default().with_checkpoint_interval(4).with_compact_min_records(2),
    )
    .unwrap();
    store.bootstrap(&primary).unwrap();

    WireServer::run_with_store(&primary, &WireConfig::tcp_loopback(), Some(&store), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        // Re-learn the same classes repeatedly: exactly the write pattern
        // delta compaction collapses.
        for round in 0..9 {
            learn(&mut client, "tenant", &[round % 3, 3]);
        }
        let live = wire_snapshot(&mut client, "tenant");
        let live_seq = primary.snapshot_with_seq("tenant").unwrap().0;

        // The one-shot re-anchor answers from the store and matches the
        // live state bit-exactly (every commit is journaled pre-reply).
        let (seq, anchor) = client.re_anchor("tenant").unwrap();
        assert_eq!(seq, live_seq);
        assert_eq!(anchor, live, "checkpoint-served anchor diverged from live snapshot");

        // Durability counters travel the wire: the checkpoint ran.
        match client.call(ServeRequest::Stats { deployment: "tenant".into() }).unwrap() {
            ServeResponse::Stats(stats) => {
                let durability = stats.durability.expect("durable server reports counters");
                assert!(durability.last_checkpoint_seq >= 4, "stats: {durability:?}");
            }
            other => panic!("unexpected response {other:?}"),
        }

        // A follower attaching now anchors from the checkpoint and still
        // converges bit-exactly, through further live deltas.
        let replica = registry_with(&["tenant"], None);
        let config = FollowerConfig::new(server.addr().clone(), &["tenant"]);
        Follower::run(&replica, &config, |follower| {
            follower.wait_for_seq("tenant", live_seq, WAIT).unwrap();
            learn(&mut client, "tenant", &[7]);
            follower.wait_for_seq("tenant", live_seq + 1, WAIT).unwrap();
            let mut to_follower = WireClient::connect(follower.addr()).unwrap();
            assert_eq!(
                wire_snapshot(&mut client, "tenant"),
                wire_snapshot(&mut to_follower, "tenant")
            );
            let (p_class, p_sim) = infer(&mut client, "tenant", 7);
            let (f_class, f_sim) = infer(&mut to_follower, "tenant", 7);
            assert_eq!((p_class, p_sim), (f_class, f_sim));
        })
        .unwrap();
    })
    .unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promoted_follower_accepts_writes_that_a_reattached_subscriber_replicates() {
    let primary_dir = temp_dir("promotion-primary");
    let promoted_dir = temp_dir("promotion-promoted");

    let replica = registry_with(&["tenant"], None);
    let replicated_seq = {
        // The doomed primary: store-backed, with a follower tailing it.
        let primary = registry_with(&["tenant"], None);
        let store = Store::open(&primary_dir).unwrap();
        store.bootstrap(&primary).unwrap();
        WireServer::run_with_store(&primary, &WireConfig::tcp_loopback(), Some(&store), |server| {
            let mut client = WireClient::connect(server.addr()).unwrap();
            learn(&mut client, "tenant", &[0, 1]);
            let config = FollowerConfig::new(server.addr().clone(), &["tenant"]);
            Follower::run(&replica, &config, |follower| {
                learn(&mut client, "tenant", &[2]);
                follower.wait_for_seq("tenant", 2, WAIT).unwrap()
            })
            .unwrap()
        })
        .unwrap()
        // The primary "dies" here: its scope ended, its port is gone.
    };
    assert_eq!(replicated_seq, 2);

    // Failover: the follower promotes itself to a writable durable primary.
    // The fresh store adopts the follower's replicated sequence number.
    let store = Store::open(&promoted_dir).unwrap();
    Follower::promote(&replica, &store, &WireConfig::tcp_loopback(), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();

        // Writable: the promoted primary accepts the write a replica would
        // have refused...
        learn(&mut client, "tenant", &[3]);

        // ...and a re-attached subscriber replicates it bit-exactly, with
        // sequence numbers continuing from the adopted history.
        let second_replica = registry_with(&["tenant"], None);
        let config = FollowerConfig::new(server.addr().clone(), &["tenant"]);
        Follower::run(&second_replica, &config, |follower| {
            let applied = follower.wait_for_seq("tenant", 3, WAIT).unwrap();
            assert_eq!(applied, 3, "promoted primary continues the adopted seq line");
            learn(&mut client, "tenant", &[4]);
            follower.wait_for_seq("tenant", 4, WAIT).unwrap();
            let mut to_follower = WireClient::connect(follower.addr()).unwrap();
            assert_eq!(
                wire_snapshot(&mut client, "tenant"),
                wire_snapshot(&mut to_follower, "tenant")
            );
            for class in 0..5 {
                let p = infer(&mut client, "tenant", class);
                let f = infer(&mut to_follower, "tenant", class);
                assert_eq!(p, f, "class {class} diverged across promotion");
            }
        })
        .unwrap();
    })
    .unwrap();

    // The promoted primary journaled its writes: the store replays to the
    // final state and could seed the *next* failover.
    assert_eq!(store.latest_state("tenant").unwrap().seq, 4);
    assert_eq!(store.latest_state("tenant").unwrap().snapshot, replica.snapshot("tenant").unwrap());

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&promoted_dir);
}
