//! Durable observability: timelines survive kill-and-recover.
//!
//! The acceptance bar this asserts:
//!
//! * an observed store killed **mid-burst** (the active chunk dies with the
//!   process, the spill log keeps a torn tail) rehydrates from its spill
//!   into a fresh, empty store whose timeline is **byte-identical** to a
//!   continuously-running reference over the pre-kill (sealed) window —
//!   every field of every event, NaN accuracy included, compared by bits,
//! * a wire-served shard stopped gracefully and respawned over the same
//!   store directory with a brand-new obs pipeline answers `ObsQuery` with
//!   the byte-identical serving timeline the first generation reported.

use ofscil::obs::DEFAULT_EVENT_LIMIT;
use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::path::PathBuf;
use std::sync::Arc;

const IMAGE: usize = 8;
const TENANT: &str = "tenant";

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-durable-obs-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).unwrap();
    path
}

/// xorshift64* — deterministic event streams without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A seeded event with exact binary-fraction payloads (sums stay exact no
/// matter how chunks regroup them) and a NaN accuracy now and then.
fn random_event(rng: &mut Rng, i: u64) -> Event {
    let kinds = EventKind::ALL;
    let kind = kinds[rng.below(kinds.len() as u64) as usize];
    let accuracy = if rng.below(4) == 0 { f32::NAN } else { rng.below(65) as f32 / 64.0 };
    Event::new(kind, &format!("tenant-{}", rng.below(3)))
        .with_seq(i)
        .with_time_us(i * 1_000 + rng.below(500))
        .with_energy_mj(rng.below(16) as f64 * 0.25)
        .with_latency_us(rng.below(1_000))
        .with_accuracy(accuracy)
        .with_wal_bytes(rng.below(4_096))
}

/// Bit-exact projection of an event — `Event`'s derived `PartialEq` treats
/// NaN accuracy as unequal to itself, which is exactly wrong for "is this
/// the same bytes".
fn bits(event: &Event) -> (String, u8, u64, u64, u64, u64, u32, u64) {
    (
        event.deployment.clone(),
        event.kind.code(),
        event.seq,
        event.time_us,
        event.energy_mj.to_bits(),
        event.latency_us,
        event.accuracy.to_bits(),
        event.wal_bytes,
    )
}

#[test]
fn mid_burst_kill_rehydrates_sealed_prefix_byte_identical() {
    let dir = temp_dir("midburst");
    let spill_path = dir.join("obs.spill");
    const CHUNK: usize = 16;
    const TOTAL: u64 = 150; // 9 sealed chunks + 6 events in the active chunk

    // The reference never dies; the observed store spills sealed chunks.
    let reference = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    let (spill, recovery) = ObsSpill::open(&spill_path).unwrap();
    assert!(recovery.chunks.is_empty() && recovery.rollups.is_empty());
    let observed = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    observed.set_spill(Arc::new(spill));

    let mut rng = Rng(0x5eed);
    let mut pre_kill_max_time = 0u64;
    for i in 0..TOTAL {
        let event = random_event(&mut rng, i);
        reference.append(&event);
        observed.append(&event);
        let sealed = (TOTAL as usize / CHUNK * CHUNK) as u64;
        if i < sealed {
            pre_kill_max_time = pre_kill_max_time.max(event.time_us);
        }
    }

    // The kill: the observed store drops with its active chunk unsealed —
    // those 6 events were never acknowledged durable — and the process dies
    // mid-write, tearing garbage onto the spill log's tail.
    drop(observed);
    let mut bytes = std::fs::read(&spill_path).unwrap();
    bytes.extend_from_slice(&[0x01, 0xff, 0xff, 0x00, 0xde, 0xad]);
    std::fs::write(&spill_path, &bytes).unwrap();

    // Recovery: a fresh generation opens the same spill and rehydrates into
    // a brand-new, empty store.
    let (spill2, recovery) = ObsSpill::open(&spill_path).unwrap();
    assert_eq!(recovery.chunks.len(), TOTAL as usize / CHUNK, "every sealed chunk recovered");
    let reborn = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    recovery.rehydrate_into(&reborn);
    reborn.set_spill(Arc::new(spill2));

    // The pre-kill window answers byte-identically to the reference.
    let window = ObsQuery::all()
        .with_time_range(0, pre_kill_max_time)
        .with_limit(DEFAULT_EVENT_LIMIT);
    let want = reference.query(&window);
    let got = reborn.query(&window);
    assert_eq!(want.events.len(), got.events.len());
    for (w, g) in want.events.iter().zip(&got.events) {
        assert_eq!(bits(w), bits(g), "rehydrated event diverged from the reference");
    }
    assert_eq!(want.aggregates.matched, got.aggregates.matched);
    assert_eq!(want.aggregates.energy_mj.sum, got.aggregates.energy_mj.sum);
    assert_eq!(want.aggregates.latency_us.sum, got.aggregates.latency_us.sum);

    // The reborn store is live, not a museum: it keeps appending and keeps
    // spilling new sealed chunks after the recovery.
    for i in TOTAL..TOTAL + CHUNK as u64 {
        reborn.append(&random_event(&mut rng, i));
    }
    assert!(reborn.counters().spilled_chunks > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_restart_rehydrates_timeline_byte_identical() {
    let dir = temp_dir("wire");

    fn fresh_registry() -> Arc<LearnerRegistry> {
        let mut rng = SeedRng::new(7);
        let registry = LearnerRegistry::new();
        registry
            .register(
                DeploymentSpec::new(TENANT, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        Arc::new(registry)
    }
    fn spawn(dir: &std::path::Path) -> (ShardProcess, Obs) {
        let registry = fresh_registry();
        let store = Store::open(dir).unwrap();
        store.bootstrap(&registry).unwrap();
        let obs = Obs::new(ObsConfig::default().with_chunk_events(4));
        let shard = ShardProcess::spawn_durable_observed(
            registry,
            WireConfig::tcp_loopback(),
            Some(store),
            Some(obs.clone()),
        )
        .unwrap();
        (shard, obs)
    }
    // Only the serving kinds the driven traffic produced: the store
    // maintenance thread keeps stamping Checkpoint rows on its own clock,
    // which would race this comparison.
    let query = ObsQuery::deployment(TENANT)
        .with_kinds(&[EventKind::Learn, EventKind::Infer])
        .with_limit(DEFAULT_EVENT_LIMIT);

    // Generation 1: serve traffic, query the timeline, stop gracefully
    // (sealing and spilling the active chunk).
    let (shard, _obs) = spawn(&dir);
    let want = {
        let mut client = WireClient::connect(shard.addr()).unwrap();
        for step in 0..3usize {
            client
                .call(ServeRequest::LearnOnline {
                    deployment: TENANT.into(),
                    batch: traffic::support_batch(IMAGE, &[2 * step, 2 * step + 1], 3),
                })
                .unwrap();
            client
                .call(ServeRequest::Infer {
                    deployment: TENANT.into(),
                    image: traffic::class_image(IMAGE, 2 * step, 0.01),
                })
                .unwrap();
        }
        client.obs_query(&query).unwrap()
    };
    assert_eq!(want.events.len(), 6, "three learns and three infers");
    shard.stop();

    // Generation 2: same store directory, brand-new empty obs pipeline. The
    // spill rehydrates the whole serving timeline before the socket answers.
    let (reborn, reborn_obs) = spawn(&dir);
    let got = {
        let mut client = WireClient::connect(reborn.addr()).unwrap();
        client.obs_query(&query).unwrap()
    };
    assert_eq!(want.events.len(), got.events.len());
    for (w, g) in want.events.iter().zip(&got.events) {
        assert_eq!(bits(w), bits(g), "restarted timeline diverged from generation 1");
    }
    assert_eq!(want.aggregates.matched, got.aggregates.matched);
    assert_eq!(
        want.aggregates.energy_mj.sum.to_bits(),
        got.aggregates.energy_mj.sum.to_bits(),
        "aggregate energy must survive the restart bit-exactly"
    );
    assert_eq!(got.dropped, 0, "the fresh pipeline shed nothing");
    assert!(reborn_obs.store().appended() >= 6, "rehydrated events count as appended");

    reborn.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
