//! End-to-end replication: a primary serves writes over a socket while a
//! follower tails its snapshot stream and serves bit-identical reads.
//!
//! The acceptance bar this asserts: after ≥ 3 online-learning sessions on
//! the primary, a follower reachable over its own socket answers `Infer`
//! with **bit-identical** predictions (same class, same similarity bits),
//! its snapshot bytes hash identically, and writes against it fail with the
//! typed `ReadOnlyReplica` error.

use ofscil::prelude::*;
use ofscil::serve::traffic;
use std::time::Duration;

const IMAGE: usize = 8;
const WAIT: Duration = Duration::from_secs(30);

/// Primary and follower must share backbone + FCR weights (a real replica
/// loads the same pretrained model); identical seeds guarantee it.
fn model() -> OFscilModel {
    let mut rng = SeedRng::new(7);
    OFscilModel::new(BackboneKind::Micro, 16, &mut rng)
}

fn registry() -> LearnerRegistry {
    let registry = LearnerRegistry::new();
    registry
        .register(DeploymentSpec::new("tenant", (IMAGE, IMAGE)), model())
        .unwrap();
    registry
}

fn support(classes: &[usize]) -> Batch {
    traffic::support_batch(IMAGE, classes, 3)
}

fn infer(client: &mut WireClient, class: usize) -> (usize, f32) {
    match client
        .call(ServeRequest::Infer {
            deployment: "tenant".into(),
            image: traffic::class_image(IMAGE, class, 0.013),
        })
        .unwrap()
    {
        ServeResponse::Prediction { class, similarity, .. } => (class, similarity),
        other => panic!("unexpected response {other:?}"),
    }
}

fn snapshot(client: &mut WireClient) -> Vec<u8> {
    match client.call(ServeRequest::Snapshot { deployment: "tenant".into() }).unwrap() {
        ServeResponse::Snapshot { bytes } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn follower_serves_bit_identical_reads_and_rejects_writes() {
    let primary = registry();
    let replica = registry();

    WireServer::run(&primary, &WireConfig::tcp_loopback(), |primary_server| {
        let mut to_primary = WireClient::connect(primary_server.addr()).unwrap();

        // Session 1 happens *before* the follower exists — it must arrive
        // through the full-snapshot anchor.
        to_primary
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: support(&[0, 1]),
            })
            .unwrap();

        let config = FollowerConfig::new(primary_server.addr().clone(), &["tenant"]);
        Follower::run(&replica, &config, |follower| {
            follower.wait_for_seq("tenant", 1, WAIT).unwrap();

            // Sessions 2 and 3 stream as sequence-numbered deltas.
            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[2, 3]),
                })
                .unwrap();
            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[4]),
                })
                .unwrap();
            follower.wait_for_seq("tenant", 3, WAIT).unwrap();

            // The follower is reachable over its own socket and serves
            // bit-identical inference for every learned class.
            let mut to_follower = WireClient::connect(follower.addr()).unwrap();
            for class in 0..5 {
                let (p_class, p_similarity) = infer(&mut to_primary, class);
                let (f_class, f_similarity) = infer(&mut to_follower, class);
                assert_eq!(p_class, f_class, "class {class} prediction diverged");
                assert_eq!(
                    p_similarity.to_bits(),
                    f_similarity.to_bits(),
                    "class {class} similarity bits diverged"
                );
            }

            // Snapshot bytes are identical — replicas can be diffed by hash.
            assert_eq!(snapshot(&mut to_primary), snapshot(&mut to_follower));

            // Writes to the replica fail typed; its state is untouched.
            let err = to_follower
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[9]),
                })
                .unwrap_err();
            assert!(matches!(
                err,
                WireError::Remote(ServeError::ReadOnlyReplica { ref deployment })
                    if deployment == "tenant"
            ));
            let err = to_follower
                .call(ServeRequest::TopUpBudget {
                    deployment: "tenant".into(),
                    energy_mj: 1.0,
                })
                .unwrap_err();
            assert!(matches!(err, WireError::Remote(ServeError::ReadOnlyReplica { .. })));

            // Reads after the rejected writes still see the replicated state.
            match to_follower
                .call(ServeRequest::Stats { deployment: "tenant".into() })
                .unwrap()
            {
                ServeResponse::Stats(stats) => assert_eq!(stats.classes, 5),
                other => panic!("unexpected response {other:?}"),
            }

            // A fourth session (a *re-learn* of a known class plus a new
            // one) replicates too — overwrites travel like inserts.
            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[0, 5]),
                })
                .unwrap();
            follower.wait_for_seq("tenant", 4, WAIT).unwrap();
            assert_eq!(snapshot(&mut to_primary), snapshot(&mut to_follower));
            let (p_class, p_sim) = infer(&mut to_primary, 5);
            let (f_class, f_sim) = infer(&mut to_follower, 5);
            assert_eq!(p_class, f_class);
            assert_eq!(p_sim.to_bits(), f_sim.to_bits());

            assert!(follower.replication_error("tenant").is_none());
        })
        .unwrap();
    })
    .unwrap();

    // The replica registry holds the replicated memory after shutdown.
    assert_eq!(
        primary.snapshot("tenant").unwrap(),
        replica.snapshot("tenant").unwrap()
    );
}

#[test]
fn follower_resyncs_from_a_fresh_anchor_after_a_replication_gap() {
    let primary = registry();
    let replica = registry();

    WireServer::run(&primary, &WireConfig::tcp_loopback(), |primary_server| {
        let mut to_primary = WireClient::connect(primary_server.addr()).unwrap();
        to_primary
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: support(&[0, 1]),
            })
            .unwrap();

        let config = FollowerConfig::new(primary_server.addr().clone(), &["tenant"]);
        Follower::run(&replica, &config, |follower| {
            follower.wait_for_seq("tenant", 1, WAIT).unwrap();
            assert_eq!(follower.resyncs("tenant"), 0);

            // Mutate the primary's memory outside the commit stream: a
            // restore bumps the replication sequence without emitting a
            // delta, so the follower's next delta skips a number.
            let bytes = primary.snapshot("tenant").unwrap();
            primary.restore("tenant", &bytes).unwrap();
            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[2]),
                })
                .unwrap();

            // The gapped tail resubscribes on its own: a fresh full-snapshot
            // anchor carries the follower past the gap, and the tail keeps
            // applying deltas afterwards.
            follower.wait_for_seq("tenant", 3, WAIT).unwrap();
            assert_eq!(follower.resyncs("tenant"), 1);
            assert!(follower.replication_error("tenant").is_none());

            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[3]),
                })
                .unwrap();
            follower.wait_for_seq("tenant", 4, WAIT).unwrap();

            // Bit-exactness survived the resync.
            let mut to_follower = WireClient::connect(follower.addr()).unwrap();
            assert_eq!(snapshot(&mut to_primary), snapshot(&mut to_follower));
            for class in 0..4 {
                let (p_class, p_sim) = infer(&mut to_primary, class);
                let (f_class, f_sim) = infer(&mut to_follower, class);
                assert_eq!(p_class, f_class);
                assert_eq!(p_sim.to_bits(), f_sim.to_bits());
            }
        })
        .unwrap();
    })
    .unwrap();
}

#[test]
fn exhausted_resync_budget_surfaces_the_gap_error() {
    let primary = registry();
    let replica = registry();

    WireServer::run(&primary, &WireConfig::tcp_loopback(), |primary_server| {
        let mut to_primary = WireClient::connect(primary_server.addr()).unwrap();
        to_primary
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: support(&[0]),
            })
            .unwrap();

        let config = FollowerConfig::new(primary_server.addr().clone(), &["tenant"])
            .with_resync_limit(0);
        Follower::run(&replica, &config, |follower| {
            follower.wait_for_seq("tenant", 1, WAIT).unwrap();
            let bytes = primary.snapshot("tenant").unwrap();
            primary.restore("tenant", &bytes).unwrap();
            to_primary
                .call(ServeRequest::LearnOnline {
                    deployment: "tenant".into(),
                    batch: support(&[1]),
                })
                .unwrap();
            // With no resyncs allowed, the gap halts the tail and the error
            // is surfaced — the pre-resync behaviour, now opt-in.
            let err = follower.wait_for_seq("tenant", 3, WAIT).unwrap_err();
            assert!(err.to_string().contains("gapped"), "unexpected error: {err}");
            assert!(follower.replication_error("tenant").is_some());
            assert_eq!(follower.resyncs("tenant"), 0);
        })
        .unwrap();
    })
    .unwrap();
}

#[test]
fn follower_of_unknown_deployment_reports_the_error() {
    let primary = registry();
    let replica = registry();
    WireServer::run(&primary, &WireConfig::tcp_loopback(), |primary_server| {
        let config = FollowerConfig::new(primary_server.addr().clone(), &["ghost"]);
        Follower::run(&replica, &config, |follower| {
            let err = follower.wait_for_seq("ghost", 1, WAIT).unwrap_err();
            assert!(err.to_string().contains("ghost"));
            assert!(follower.replication_error("ghost").is_some());
        })
        .unwrap();
    })
    .unwrap();
}
