//! FSCIL benchmark comparison: O-FSCIL against the baseline classifier heads
//! on the same backbone and data — a laptop-scale version of the paper's
//! Table II comparison.
//!
//! ```text
//! cargo run --release --example fscil_benchmark
//! ```

use ofscil::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = 7;
    let config = ExperimentConfig::micro(seed);
    println!(
        "FSCIL benchmark (micro profile): {} base + {}x{}-way {}-shot sessions",
        config.fscil.num_base_classes,
        config.fscil.num_sessions,
        config.fscil.ways,
        config.fscil.shots
    );

    // O-FSCIL: pretraining + metalearning + online prototype learning.
    let outcome = run_experiment(&config)?;
    println!("\n{:<28} sessions 0..N then average [%]", "method");
    println!("{:<28} {}", "O-FSCIL (ours)", outcome.sessions.to_row());

    // Baselines share the *pretrained* backbone and FCR of the O-FSCIL model
    // so the comparison isolates the classifier / memory design.
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;

    let mut ncm_backbone = NearestClassMean::new(SimilarityMetric::Cosine);
    let ncm_results = run_baseline_protocol(
        &mut model,
        &benchmark,
        &mut ncm_backbone,
        FeatureSpace::Backbone,
        64,
    )?;
    println!("{:<28} {}", "NCM on backbone features", ncm_results.to_row());

    let mut ncm_euclid = NearestClassMean::new(SimilarityMetric::Euclidean);
    let euclid_results = run_baseline_protocol(
        &mut model,
        &benchmark,
        &mut ncm_euclid,
        FeatureSpace::Projected,
        64,
    )?;
    println!("{:<28} {}", "C-FSCIL-style (euclidean)", euclid_results.to_row());

    let mut etf = EtfHead::new(
        model.projection_dim(),
        benchmark.config().total_classes(),
        seed,
    );
    let etf_results =
        run_baseline_protocol(&mut model, &benchmark, &mut etf, FeatureSpace::Projected, 64)?;
    println!("{:<28} {}", "NC-FSCIL-style ETF head", etf_results.to_row());

    println!("\n(all methods use the same pretrained backbone, FCR and data)");
    Ok(())
}
