//! Cluster timeline walkthrough: a sharded serving run with a mid-burst
//! live migration **and a shard kill-and-restart**, reconstructed afterwards
//! from **one** routed observability query.
//!
//! Every shard records its serving events (`Infer`, `Learn`, `Reject`,
//! `TopUp`) into its own columnar event store through a non-blocking sink —
//! the hot path never waits on observability. Each shard is also *durable*:
//! it owns a store directory, and sealed event chunks are written through
//! the store's record codec into an obs spill log. The router records the
//! cluster events (`Migration`, breaker transitions) into its own store.
//!
//! After the traffic, the tenant's original home shard is stopped and a
//! fresh process generation is booted over the same store directory with a
//! **brand-new, empty** observability pipeline. Opening the spill log
//! rehydrates the chunk index, so the restarted shard answers timeline
//! queries as if it never died. A single `ObsQuery` sent to the router is
//! scatter-gathered across every shard (including the restarted one),
//! merged with the router's timeline, and comes back time-ordered: the
//! tenant's accuracy/energy/latency trajectory is whole again even though a
//! live migration split its history across two processes and one of them
//! was killed and recovered in between.
//!
//! ```text
//! cargo run --release -p ofscil --example timeline
//! ```

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::error::Error;
use std::path::Path;
use std::sync::Arc;

const IMAGE: usize = 8;
const TENANT: &str = "wildlife-cam";
const OTHER: &str = "doorbell";
const BURSTS: usize = 4;
const INFERS_PER_BURST: usize = 3;

/// Every shard loads the same pretrained weights per tenant; what migrates
/// is the explicit memory. Restarting a shard re-derives the same weights
/// from the same seed — the learned state comes back from the store.
fn shard_registry(seed: u64) -> Result<Arc<LearnerRegistry>, ServeError> {
    let registry = LearnerRegistry::new();
    for (i, tenant) in [TENANT, OTHER].iter().enumerate() {
        let mut rng = SeedRng::new(seed + i as u64);
        registry.register(
            DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )?;
    }
    Ok(Arc::new(registry))
}

/// Boots one durable observed shard generation over `dir` with a fresh obs
/// pipeline. Chunks are small so sealed chunks reach the spill log mid-run,
/// not only at graceful shutdown — and anything a previous generation
/// spilled into `dir` is rehydrated before the server starts answering.
fn spawn_shard(seed: u64, dir: &Path) -> Result<(ShardProcess, Obs), Box<dyn Error>> {
    let registry = shard_registry(seed)?;
    let store = Store::open(dir)?;
    store.bootstrap(&registry)?;
    let obs = Obs::new(ObsConfig::default().with_chunk_events(8));
    let shard = ShardProcess::spawn_durable_observed(
        registry,
        WireConfig::tcp_loopback(),
        Some(store),
        Some(obs.clone()),
    )?;
    Ok((shard, obs))
}

/// One burst of traffic for the tenant: learn two fresh classes, then infer.
fn burst(client: &mut WireClient, step: usize) -> Result<(), Box<dyn Error>> {
    client.call(ServeRequest::LearnOnline {
        deployment: TENANT.into(),
        batch: traffic::support_batch(IMAGE, &[2 * step, 2 * step + 1], 3),
    })?;
    for _ in 0..INFERS_PER_BURST {
        client.call(ServeRequest::Infer {
            deployment: TENANT.into(),
            image: traffic::class_image(IMAGE, 2 * step, 0.01),
        })?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut base = std::env::temp_dir();
    base.push(format!("ofscil-timeline-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs = [base.join("shard0"), base.join("shard1")];

    // Two durable observed backend "processes": each shard's WireServer
    // feeds its own event store and spills sealed chunks into its own store
    // directory.
    let mut shards: Vec<Option<ShardProcess>> = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        let (shard, _obs) = spawn_shard(100 + i as u64, dir)?;
        shards.push(Some(shard));
    }
    let addrs: Vec<BoundAddr> =
        shards.iter().map(|s| s.as_ref().expect("shard is up").addr().clone()).collect();

    // The router gets its own store for cluster events and a scatter-gather
    // answer path for ObsQuery frames.
    let router_obs = Obs::new(ObsConfig::default());
    let config = RouterConfig::tcp_loopback(addrs)
        .with_deployments(&[TENANT, OTHER])
        .with_obs(router_obs.clone());
    RouterServer::run(&config, move |router| -> Result<(), Box<dyn Error>> {
        println!("router serving on {}", router.addr());
        let mut client = WireClient::connect(router.addr())?;

        // First half of the run on the tenant's home shard...
        for step in 0..BURSTS / 2 {
            burst(&mut client, step)?;
        }

        // ...then a live migration mid-run: explicit memory moves shards,
        // routing remaps atomically, and the router stamps a Migration
        // event into its own timeline.
        let home = router.shard_for(TENANT)?;
        let target = (home + 1) % 2;
        let report = router.migrate(TENANT, target)?;
        println!(
            "migrated {TENANT:?} shard {} -> {} ({} classes at seq {})",
            report.from, report.to, report.classes, report.seq
        );

        // Second half of the run lands on the new shard.
        for step in BURSTS / 2..BURSTS {
            burst(&mut client, step)?;
        }

        // Now kill the tenant's *original* home shard — the only process
        // that ever saw the first half of the timeline — and boot a fresh
        // generation over its store directory with an empty obs pipeline.
        // The spill log rehydrates the pre-kill chunks, `replace_shard`
        // points the ring slot at the new address, and the first half of
        // the trajectory is queryable again.
        shards[home].take().expect("home shard is up").stop();
        println!("killed shard {home} (it held the pre-migration timeline)");
        let (reborn, _reborn_obs) = spawn_shard(100 + home as u64, &dirs[home])?;
        router.replace_shard(home, reborn.addr().clone())?;
        println!("restarted shard {home} from its store on {}", reborn.addr());
        shards[home] = Some(reborn);

        // ONE routed query reconstructs the whole trajectory — across the
        // migration *and* the restart. The router fans it out to every
        // shard, merges the slices with its own cluster events, and returns
        // a single time-ordered timeline.
        let result = client.obs_query(&ObsQuery::deployment(TENANT))?;
        assert_eq!(result.shards_err, 0, "every shard answered");
        assert_eq!(result.dropped, 0, "nothing was shed in the non-adversarial path");
        assert!(
            result.events.windows(2).all(|w| w[0].order_key() <= w[1].order_key()),
            "merged timeline must be time-ordered"
        );

        println!("\n{TENANT} timeline ({} shards answered):", result.shards_ok);
        let start = result.events.first().map(|e| e.time_us).unwrap_or(0);
        for event in &result.events {
            let mut line = format!(
                "  +{:>7} us  {:<12}", event.time_us.saturating_sub(start),
                format!("{:?}", event.kind),
            );
            if event.seq != 0 {
                line.push_str(&format!("  seq {:<4}", event.seq));
            }
            if event.energy_mj > 0.0 {
                line.push_str(&format!("  {:.4} mJ", event.energy_mj));
            }
            if event.latency_us > 0 {
                line.push_str(&format!("  {} us", event.latency_us));
            }
            if event.accuracy.is_finite() {
                line.push_str(&format!("  sim {:.3}", event.accuracy));
            }
            println!("{line}");
        }

        let learns = result.events.iter().filter(|e| e.kind == EventKind::Learn).count();
        let infers = result.events.iter().filter(|e| e.kind == EventKind::Infer).count();
        let migrations =
            result.events.iter().filter(|e| e.kind == EventKind::Migration).count();
        assert_eq!(learns, BURSTS, "one learn per burst, restart survivors included");
        assert_eq!(infers, BURSTS * INFERS_PER_BURST, "every inference recorded");
        assert_eq!(migrations, 1, "the migration marker survived the merge");

        let agg = &result.aggregates;
        println!("\naggregates over {} matched events:", agg.matched);
        println!(
            "  energy : {:.4} mJ total ({:.4}..{:.4} per event)",
            agg.energy_mj.sum, agg.energy_mj.min, agg.energy_mj.max
        );
        println!(
            "  latency: {:.0}..{:.0} us (mean {:.1})",
            agg.latency_us.min,
            agg.latency_us.max,
            agg.latency_us.mean()
        );
        println!(
            "  accuracy (similarity): mean {:.3} over {} inferences",
            agg.accuracy.mean(),
            agg.accuracy.count
        );

        // A kind-masked pure-aggregate query (limit 0) answers "what did
        // inference cost this tenant" without materializing any rows.
        let infer_only = client.obs_query(
            &ObsQuery::deployment(TENANT).with_kinds(&[EventKind::Infer]).with_limit(0),
        )?;
        assert!(infer_only.events.is_empty() && infer_only.truncated);
        println!(
            "\ninference-only aggregate query: {} rows, {:.4} mJ total, 0 events shipped",
            infer_only.aggregates.matched, infer_only.aggregates.energy_mj.sum
        );

        println!("\nobs dropped events: {}", result.dropped);
        Ok(())
    })??;

    println!("done: timeline stitched across a live migration and a shard restart");
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
