//! Sharded-cluster walkthrough: three backend serving processes behind the
//! consistent-hash router, one client-facing address.
//!
//! Shows the full sharded topology the router opens up:
//!
//! 1. deployments spread across shards by consistent hashing of their name,
//! 2. clients speaking the ordinary wire protocol to the router, never
//!    knowing which shard serves them,
//! 3. scatter-gather cluster statistics,
//! 4. a **live migration** moving one deployment's explicit memory between
//!    shards bit-exactly (snapshot bytes identical across the move),
//! 5. a killed shard answering with a typed `ShardUnavailable` error while
//!    the surviving shards keep serving.
//!
//! Everything crosses real sockets (loopback TCP with ephemeral ports) —
//! the same code works with the shards as separate OS processes.
//!
//! ```text
//! cargo run --release -p ofscil --example sharded_serving
//! ```

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::error::Error;
use std::sync::Arc;

const IMAGE: usize = 8;
const TENANTS: [&str; 4] = ["wildlife-cam", "doorbell", "warehouse-bot", "greenhouse"];

/// Every shard loads the same pretrained weights per tenant; a deployment's
/// serving state is its explicit memory, which is what migrates.
fn shard_registry() -> Result<Arc<LearnerRegistry>, ServeError> {
    let registry = LearnerRegistry::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let mut rng = SeedRng::new(100 + i as u64);
        registry.register(
            DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )?;
    }
    Ok(Arc::new(registry))
}

fn infer_bits(client: &mut WireClient, tenant: &str, class: usize) -> (usize, u32) {
    match client
        .call(ServeRequest::Infer {
            deployment: tenant.into(),
            image: traffic::class_image(IMAGE, class, 0.01),
        })
        .expect("inference through the router")
    {
        ServeResponse::Prediction { class, similarity, .. } => (class, similarity.to_bits()),
        other => panic!("unexpected response {other:?}"),
    }
}

fn snapshot(client: &mut WireClient, tenant: &str) -> Vec<u8> {
    match client
        .call(ServeRequest::Snapshot { deployment: tenant.into() })
        .expect("snapshot through the router")
    {
        ServeResponse::Snapshot { bytes } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    // Three backend "processes": each a WireServer over its own registry on
    // its own socket (threads here; identical with real OS processes).
    let mut shards: Vec<Option<ShardProcess>> = (0..3)
        .map(|_| Ok(Some(ShardProcess::spawn(shard_registry()?, WireConfig::tcp_loopback())?)))
        .collect::<Result<_, Box<dyn Error>>>()?;
    let addrs: Vec<BoundAddr> =
        shards.iter().map(|s| s.as_ref().unwrap().addr().clone()).collect();

    let config = RouterConfig::tcp_loopback(addrs).with_deployments(&TENANTS);
    RouterServer::run(&config, move |router| -> Result<(), Box<dyn Error>> {
        println!("router serving on {}", router.addr());
        for tenant in TENANTS {
            println!("  {tenant:<14} -> shard {}", router.shard_for(tenant)?);
        }

        // Clients speak the ordinary wire protocol to the router.
        let mut client = WireClient::connect(router.addr())?;
        for (i, tenant) in TENANTS.iter().enumerate() {
            client.call(ServeRequest::LearnOnline {
                deployment: tenant.to_string(),
                batch: traffic::support_batch(IMAGE, &[i, i + 1], 5),
            })?;
            let (class, _) = infer_bits(&mut client, tenant, i);
            assert_eq!(class, i, "{tenant} must recognise its first class");
        }
        println!("learned 2 classes per tenant and verified inference, all via the router");

        // Scatter-gather statistics across the cluster.
        let slices = router.cluster_stats();
        for slice in &slices {
            let served: u64 = slice.deployments.iter().map(|d| d.infer_requests).sum();
            println!(
                "  shard {} ({}) owns {} deployment(s), served {} inference(s)",
                slice.shard,
                slice.addr,
                slice.deployments.len(),
                served
            );
        }

        // Live migration: move one tenant's explicit memory to another
        // shard; routing remaps atomically, results stay bit-exact.
        let mover = TENANTS[0];
        let before_snapshot = snapshot(&mut client, mover);
        let before_bits = infer_bits(&mut client, mover, 0);
        let source = router.shard_for(mover)?;
        let target = (source + 1) % 3;
        let report = router.migrate(mover, target)?;
        println!(
            "migrated {mover:?} shard {} -> {} ({} classes at seq {})",
            report.from, report.to, report.classes, report.seq
        );
        assert_eq!(router.shard_for(mover)?, target);
        assert_eq!(infer_bits(&mut client, mover, 0), before_bits, "prediction bits diverged");
        assert_eq!(snapshot(&mut client, mover), before_snapshot, "snapshot bytes diverged");
        println!("post-migration inference and snapshot are bit-identical");

        // Failover: kill the shard now serving the migrated tenant. The
        // router answers with a typed ShardUnavailable — no hang — while
        // other tenants keep serving.
        shards[target].take().unwrap().stop();
        match client.call(ServeRequest::Infer {
            deployment: mover.into(),
            image: traffic::class_image(IMAGE, 0, 0.01),
        }) {
            Err(WireError::Remote(ServeError::ShardUnavailable { shard, .. })) => {
                println!("killed shard {target}: request failed typed (ShardUnavailable on {shard})");
            }
            other => return Err(format!("expected ShardUnavailable, got {other:?}").into()),
        }
        let survivor = TENANTS
            .iter()
            .find(|t| router.shard_for(t).map(|s| s != target).unwrap_or(false))
            .expect("some tenant lives on a surviving shard");
        infer_bits(&mut client, survivor, 0);
        println!("{survivor:?} still serves from its surviving shard");

        for health in router.probe() {
            println!(
                "  probe shard {}: {}",
                health.shard,
                if health.healthy { "healthy" } else { "down" }
            );
        }
        Ok(())
    })??;

    println!("done: router and shards tore down cleanly");
    Ok(())
}
