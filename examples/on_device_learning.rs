//! On-device learning cost walk-through: deploy the paper's three MobileNetV2
//! stride profiles on the GAP9-class device model and report what learning a
//! new class costs (the Table IV scenario), together with the explicit-memory
//! footprint at different prototype precisions.
//!
//! ```text
//! cargo run --release --example on_device_learning
//! ```

use ofscil::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let executor = Gap9Executor::default();
    let config = executor.config();
    println!(
        "GAP9-class device model: {} cluster cores @ {:.0} MHz, {:.2} V",
        config.cluster_cores,
        config.frequency_hz / 1e6,
        config.voltage_v
    );
    println!("{:-<78}", "");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "operation", "backbone", "time [ms]", "power [mW]", "energy [mJ]"
    );

    let mut rng = SeedRng::new(0);
    let shots = 5;
    for variant in [
        MobileNetVariant::X1,
        MobileNetVariant::X2,
        MobileNetVariant::X4,
    ] {
        let backbone = ofscil::nn::models::mobilenet_v2(variant, &mut rng);
        let deployed = deploy_backbone(&backbone, 32, 32);
        let d_a = backbone.feature_dim;
        let d_p = 256;

        for cost in [
            executor.fcr_inference(d_a, d_p, 8)?,
            executor.backbone_inference(&deployed, 8)?,
            executor.em_update(&deployed, d_a, d_p, shots, 8)?,
            executor.fcr_finetune(&deployed.name, d_a, d_p, 60, 100, 8)?,
        ] {
            println!(
                "{:<18} {:>12} {:>12.2} {:>12.2} {:>12.2}",
                cost.operation,
                variant_label(variant),
                cost.time_ms,
                cost.power_mw,
                cost.energy_mj
            );
        }
        println!("{:-<78}", "");
    }

    println!("\nexplicit-memory footprint for 100 classes, d_p = 256:");
    for bits in [32u8, 8, 3, 1] {
        let footprint = ExplicitMemoryFootprint::new(100, 256, bits);
        println!("  {bits:>2}-bit prototypes: {:6.1} kB", footprint.kilobytes());
    }
    Ok(())
}

fn variant_label(variant: MobileNetVariant) -> &'static str {
    match variant {
        MobileNetVariant::X1 => "M",
        MobileNetVariant::X2 => "M2",
        MobileNetVariant::X4 => "M4",
    }
}
