//! Quickstart: run the complete O-FSCIL pipeline (pretraining, metalearning,
//! eight incremental sessions) on the laptop-scale profile and print the
//! per-session accuracies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ofscil::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = 42;
    println!("O-FSCIL quickstart (micro profile, seed {seed})");
    println!("================================================");

    let config = ExperimentConfig::micro(seed);
    println!(
        "protocol: {} base classes, {} sessions x {}-way {}-shot, {} classes total",
        config.fscil.num_base_classes,
        config.fscil.num_sessions,
        config.fscil.ways,
        config.fscil.shots,
        config.fscil.total_classes()
    );

    let outcome = run_experiment(&config)?;

    println!("\npretraining:");
    for (epoch, loss) in outcome.pretrain.epoch_losses.iter().enumerate() {
        println!("  epoch {epoch}: loss {loss:.4}");
    }
    println!(
        "  final training accuracy: {:.1}%",
        100.0 * outcome.pretrain.final_train_accuracy
    );
    if let Some(meta) = &outcome.metalearn {
        println!(
            "metalearning: {} iterations, late query accuracy {:.1}%",
            meta.iteration_losses.len(),
            100.0 * meta.late_accuracy()
        );
    }

    println!("\nincremental learning (accuracy per session, then average):");
    println!("  {}", outcome.sessions.to_row());
    println!(
        "\nexplicit memory: {} prototypes of dimension {}, {:.1} kB",
        outcome.model.em().num_classes(),
        outcome.model.em().dim(),
        outcome.em_kilobytes()
    );
    Ok(())
}
