//! Serving-runtime walkthrough: two tenants share one runtime, learn new
//! classes online, get their inference traffic coalesced into batches, hit
//! an energy budget, and survive a warm restart from an explicit-memory
//! snapshot.
//!
//! ```text
//! cargo run --release -p ofscil --example serving
//! ```

use ofscil::prelude::*;
use ofscil::serve::traffic;
use std::error::Error;

const IMAGE: usize = 8;

/// Colour-dominant synthetic image: classes a fresh backbone can already
/// separate, so the demo's predictions are meaningful.
fn class_image(class: usize, jitter: f32) -> Tensor {
    traffic::class_image(IMAGE, class, jitter)
}

fn support_batch(classes: &[usize], shots: usize) -> Batch {
    traffic::support_batch(IMAGE, classes, shots)
}

fn main() -> Result<(), Box<dyn Error>> {
    // -- Registry: two tenants, one with a strict energy budget ------------
    let mut rng = SeedRng::new(42);
    let registry = LearnerRegistry::new();
    registry.register(
        DeploymentSpec::new("wildlife-cam", (IMAGE, IMAGE)),
        OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
    )?;
    // The paper's point is an energy envelope per learned class; give this
    // tenant a budget that covers its first two classes (5 shots each on the
    // micro backbone ≈ 0.1 mJ/class) but not a third, and reject the excess.
    registry.register(
        DeploymentSpec::new("wearable", (IMAGE, IMAGE))
            .with_energy_budget(0.25, BudgetPolicy::Reject),
        OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
    )?;
    println!("registered deployments: {:?}", registry.names());

    let config = ServeConfig::default().with_max_batch(8);
    let snapshot = ServeRuntime::run(&registry, &config, |client| {
        // -- Online learning: single-pass EM updates over the wire ---------
        let learned = client.call(ServeRequest::LearnOnline {
            deployment: "wildlife-cam".into(),
            batch: support_batch(&[0, 1, 2], 5),
        })?;
        println!("wildlife-cam learned: {learned:?}");

        // -- Batched inference: submit a burst, then collect ---------------
        let pending: Vec<PendingResponse> = (0..16)
            .map(|i| {
                client.submit(ServeRequest::Infer {
                    deployment: "wildlife-cam".into(),
                    image: class_image(i % 3, 0.01),
                })
            })
            .collect();
        let mut correct = 0usize;
        let mut largest = 0usize;
        for (i, pending) in pending.into_iter().enumerate() {
            if let ServeResponse::Prediction { class, batched_with, .. } = pending.wait()? {
                correct += usize::from(class == i % 3);
                largest = largest.max(batched_with);
            }
        }
        println!("burst of 16 inferences: {correct}/16 correct, largest coalesced batch {largest}");

        // -- Energy-budget admission ---------------------------------------
        let outcome = client.call(ServeRequest::LearnOnline {
            deployment: "wearable".into(),
            batch: support_batch(&[7, 8], 5),
        });
        println!("wearable learn within budget: {}", outcome.is_ok());
        let outcome = client.call(ServeRequest::LearnOnline {
            deployment: "wearable".into(),
            batch: support_batch(&[9], 5),
        });
        match outcome {
            Err(ServeError::BudgetExhausted { required_mj, remaining_mj, .. }) => println!(
                "wearable learn over budget rejected: needs {required_mj:.3} mJ, \
                 {remaining_mj:.3} mJ left"
            ),
            other => println!("unexpected outcome: {other:?}"),
        }

        // -- Stats + snapshot ----------------------------------------------
        if let ServeResponse::Stats(stats) = client.call(ServeRequest::Stats {
            deployment: "wildlife-cam".into(),
        })? {
            println!(
                "wildlife-cam stats: {} classes, {} infers in {} batches (mean {:.1}), \
                 {:.3} mJ admitted",
                stats.classes,
                stats.infer_requests,
                stats.infer_batches,
                stats.mean_batch(),
                stats.energy_spent_mj
            );
        }
        match client.call(ServeRequest::Snapshot { deployment: "wildlife-cam".into() })? {
            ServeResponse::Snapshot { bytes } => Ok(bytes),
            other => Err(ServeError::Execution(format!("unexpected response {other:?}"))),
        }
    })??;

    // -- Int8 conversion re-prices admission -------------------------------
    // Registration priced the fp32 model at fp32 byte traffic; converting
    // the deployment to int8 re-derives the price list, so the budget meter
    // charges the cheaper quantized rate from here on (the gap widens with
    // how DMA-bound the backbone is — 4x the bytes, same MACs).
    let fp32 = registry.pricing("wildlife-cam")?;
    let int8 = registry.convert_to_int8("wildlife-cam")?;
    println!(
        "int8 conversion re-priced inference: {:.4} -> {:.4} mJ per request",
        fp32.infer_mj, int8.infer_mj
    );

    // -- Warm restart: a brand-new model picks up the snapshot -------------
    println!("snapshot: {} bytes", snapshot.len());
    let mut rng = SeedRng::new(7);
    registry.register(
        DeploymentSpec::new("wildlife-cam-replica", (IMAGE, IMAGE)),
        OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
    )?;
    let classes = registry.restore("wildlife-cam-replica", &snapshot)?;
    println!("replica restored {classes} classes from snapshot");
    ServeRuntime::run(&registry, &config, |client| {
        let response = client.call(ServeRequest::Infer {
            deployment: "wildlife-cam-replica".into(),
            image: class_image(1, 0.015),
        })?;
        println!("replica prediction: {response:?}");
        Ok::<(), ServeError>(())
    })??;
    Ok(())
}
