//! Prototype-precision sweep (the paper's Fig. 3): train once, then
//! re-quantize the explicit memory at decreasing bit widths and measure the
//! accuracy on the base and final sessions together with the memory
//! footprint.
//!
//! ```text
//! cargo run --release --example prototype_precision
//! ```

use ofscil::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = ExperimentConfig::micro(11);
    println!("training the micro-profile model once…");
    let outcome = run_experiment(&config)?;
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;
    let classes = benchmark.config().total_classes();

    let session0 = benchmark.test_after_session(0)?;
    let session_last = benchmark.test_after_session(benchmark.config().num_sessions)?;

    println!(
        "\n{:>6} {:>14} {:>14} {:>16}",
        "bits", "session 0 [%]", "last sess. [%]", "EM size [kB]"
    );
    for precision in PrototypePrecision::figure3_sweep() {
        model.set_prototype_precision(precision);
        let acc0 = model.evaluate(&session0, 64)?;
        let acc_last = model.evaluate(&session_last, 64)?;
        let footprint =
            ExplicitMemoryFootprint::new(classes, model.projection_dim(), precision.bits());
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>16.2}",
            precision.bits(),
            100.0 * acc0,
            100.0 * acc_last,
            footprint.kilobytes()
        );
    }
    println!("\n(the paper's claim: accuracy holds down to 3-bit prototypes, Fig. 3)");
    Ok(())
}
