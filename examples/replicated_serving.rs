//! Cross-process serving walkthrough: a primary wire server takes online
//! learning over a TCP socket while a snapshot-replicated follower tails its
//! commit stream and serves bit-identical read-only inference on a second
//! socket.
//!
//! Everything here crosses real sockets (loopback TCP with ephemeral
//! ports) — the same code works with the primary and follower in different
//! processes or on different machines.
//!
//! ```text
//! cargo run --release -p ofscil --example replicated_serving
//! ```

use ofscil::prelude::*;
use ofscil::serve::traffic;
use std::error::Error;
use std::time::Duration;

const IMAGE: usize = 8;

/// Primary and replica load the same pretrained weights (same seed here);
/// replication then only has to move the explicit memory.
fn pretrained() -> OFscilModel {
    let mut rng = SeedRng::new(42);
    OFscilModel::new(BackboneKind::Micro, 16, &mut rng)
}

fn registry() -> Result<LearnerRegistry, ServeError> {
    let registry = LearnerRegistry::new();
    registry.register(DeploymentSpec::new("wildlife-cam", (IMAGE, IMAGE)), pretrained())?;
    Ok(registry)
}

fn main() -> Result<(), Box<dyn Error>> {
    let primary = registry()?;
    let replica = registry()?;

    WireServer::run(&primary, &WireConfig::tcp_loopback(), |primary_server| {
        println!("primary serving on {}", primary_server.addr());
        let mut writer = WireClient::connect(primary_server.addr())?;

        // One learning session lands before the follower connects: it will
        // arrive through the follower's full-snapshot anchor.
        writer.call(ServeRequest::LearnOnline {
            deployment: "wildlife-cam".into(),
            batch: traffic::support_batch(IMAGE, &[0, 1], 5),
        })?;

        let config = FollowerConfig::new(primary_server.addr().clone(), &["wildlife-cam"]);
        Follower::run(&replica, &config, |follower| -> Result<(), Box<dyn Error>> {
            println!("follower serving read-only on {}", follower.addr());
            follower.wait_for_seq("wildlife-cam", 1, Duration::from_secs(30))?;

            // Two more sessions stream to the follower as sequence-numbered
            // deltas while it keeps serving.
            for (seq, classes) in [(2u64, vec![2usize, 3]), (3, vec![4])] {
                writer.call(ServeRequest::LearnOnline {
                    deployment: "wildlife-cam".into(),
                    batch: traffic::support_batch(IMAGE, &classes, 5),
                })?;
                let applied =
                    follower.wait_for_seq("wildlife-cam", seq, Duration::from_secs(30))?;
                println!("follower caught up to commit seq {applied}");
            }

            // Read path: the follower answers over its own socket,
            // bit-identically to the primary.
            let mut reader = WireClient::connect(follower.addr())?;
            let mut identical = 0usize;
            for class in 0..5 {
                let image = traffic::class_image(IMAGE, class, 0.01);
                let from_primary = writer.call(ServeRequest::Infer {
                    deployment: "wildlife-cam".into(),
                    image: image.clone(),
                })?;
                let from_follower = reader.call(ServeRequest::Infer {
                    deployment: "wildlife-cam".into(),
                    image,
                })?;
                if let (
                    ServeResponse::Prediction { class: p, similarity: ps, .. },
                    ServeResponse::Prediction { class: f, similarity: fs, .. },
                ) = (from_primary, from_follower)
                {
                    identical += usize::from(p == f && ps.to_bits() == fs.to_bits());
                }
            }
            println!("predictions bit-identical on both sockets: {identical}/5");
            assert_eq!(identical, 5, "replica diverged from primary");

            // Replicas are diffable by hash: snapshot bytes are equal.
            let p_snap = match writer
                .call(ServeRequest::Snapshot { deployment: "wildlife-cam".into() })?
            {
                ServeResponse::Snapshot { bytes } => bytes,
                other => return Err(format!("unexpected response {other:?}").into()),
            };
            let f_snap = match reader
                .call(ServeRequest::Snapshot { deployment: "wildlife-cam".into() })?
            {
                ServeResponse::Snapshot { bytes } => bytes,
                other => return Err(format!("unexpected response {other:?}").into()),
            };
            println!(
                "snapshots: primary {} bytes, follower {} bytes, identical: {}",
                p_snap.len(),
                f_snap.len(),
                p_snap == f_snap
            );
            assert_eq!(p_snap, f_snap, "snapshot bytes diverged");

            // The follower is read-only: writes come back typed.
            match reader.call(ServeRequest::LearnOnline {
                deployment: "wildlife-cam".into(),
                batch: traffic::support_batch(IMAGE, &[9], 5),
            }) {
                Err(WireError::Remote(ServeError::ReadOnlyReplica { deployment })) => {
                    println!("write to follower rejected: ReadOnlyReplica({deployment:?})")
                }
                other => return Err(format!("expected ReadOnlyReplica, got {other:?}").into()),
            }
            Ok(())
        })??;
        Ok::<(), Box<dyn Error>>(())
    })??;

    println!("done: primary and follower tore down cleanly");
    Ok(())
}
