//! Durable serving: learn → kill → recover → bit-exact inference.
//!
//! A store-backed serving process learns classes online (the precious,
//! unrecomputable state the paper buys at 12 mJ each), then "dies" without
//! any graceful persistence step — durability comes exclusively from the
//! write-ahead log, and the kill even tears a half-written record onto the
//! log's tail. A fresh process then opens the same store directory,
//! recovers, and must answer inference **bit-identically**.
//!
//! Run with `cargo run --release -p ofscil --example durable_serving`.
//! The CI workflow runs this as the durability smoke test.

use ofscil::prelude::*;
use ofscil::serve::traffic;

const IMAGE: usize = 8;
const TENANT: &str = "tenant";

/// Both process generations load the same pretrained weights (same seed);
/// the explicit memory, replication seq and energy meter live in the store.
fn fresh_registry() -> LearnerRegistry {
    let mut rng = SeedRng::new(7);
    let registry = LearnerRegistry::new();
    registry
        .register(
            DeploymentSpec::new(TENANT, (IMAGE, IMAGE))
                .with_energy_budget(1e6, BudgetPolicy::Reject),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )
        .unwrap();
    registry
}

fn infer(client: &mut WireClient, class: usize) -> (usize, u32) {
    match client
        .call(ServeRequest::Infer {
            deployment: TENANT.into(),
            image: traffic::class_image(IMAGE, class, 0.013),
        })
        .unwrap()
    {
        ServeResponse::Prediction { class, similarity, .. } => (class, similarity.to_bits()),
        other => panic!("unexpected response {other:?}"),
    }
}

fn main() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("ofscil-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Generation 1: serve, learn, die ----------------------------------
    let expected = {
        let registry = fresh_registry();
        let store = Store::open(&dir).unwrap();
        store.bootstrap(&registry).unwrap();
        let expected = WireServer::run_with_store(
            &registry,
            &WireConfig::tcp_loopback(),
            Some(&store),
            |server| {
                let mut client = WireClient::connect(server.addr()).unwrap();
                for classes in [vec![0usize, 1], vec![2], vec![3, 4]] {
                    client
                        .call(ServeRequest::LearnOnline {
                            deployment: TENANT.into(),
                            batch: traffic::support_batch(IMAGE, &classes, 3),
                        })
                        .unwrap();
                }
                (0..5).map(|class| infer(&mut client, class)).collect::<Vec<_>>()
            },
        )
        .unwrap();
        let (seq, _) = registry.snapshot_with_seq(TENANT).unwrap();
        println!(
            "generation 1: learned 5 classes in 3 commits (seq {seq}), then died \
             mid-write"
        );
        expected
        // The registry, runtime and store drop here: the "kill". No
        // checkpoint, no shutdown hook — only the per-record WAL survives.
    };

    // The kill tears a half-written record onto the WAL tail; recovery must
    // truncate it, not fail.
    let wal = dir.join(format!("{TENANT}.wal"));
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x01, 0xff, 0xff, 0x00, 0x00, 0xde, 0xad, 0xbe]);
    std::fs::write(&wal, &bytes).unwrap();

    // ---- Generation 2: recover, verify bit-exactness ----------------------
    let registry = fresh_registry();
    let store = Store::open(&dir).unwrap();
    let reports = store.bootstrap(&registry).unwrap();
    assert_eq!(reports.len(), 1, "the tenant recovers: {reports:?}");
    println!(
        "generation 2: recovered {:?} at seq {} with {} classes ({} WAL records replayed)",
        reports[0].deployment, reports[0].seq, reports[0].classes, reports[0].replayed_records
    );

    WireServer::run_with_store(&registry, &WireConfig::tcp_loopback(), Some(&store), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        for (class, want) in expected.iter().enumerate() {
            let got = infer(&mut client, class);
            assert_eq!(
                got, *want,
                "class {class}: post-recovery prediction diverged from pre-kill"
            );
        }
        match client.call(ServeRequest::Stats { deployment: TENANT.into() }).unwrap() {
            ServeResponse::Stats(stats) => {
                let durability = stats.durability.expect("durable server reports counters");
                println!(
                    "recovered server: {} classes, wal_records {}, last_checkpoint_seq {}",
                    stats.classes, durability.wal_records, durability.last_checkpoint_seq
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();

    println!("all 5 predictions bit-identical across the kill — durable serving works");
    let _ = std::fs::remove_dir_all(&dir);
}
