//! Live cluster tail walkthrough: subscribe to the whole cluster's event
//! stream through the router, kill the subscribed home shard mid-burst,
//! restart it from its store — and watch the stream resume **gap-free**.
//!
//! One `ObsSubscribe` frame to the router opens a [`ClusterTail`] under the
//! hood: a leg per shard, a leg per advertised follower, plus the router's
//! own store, each leg keeping its own `(time_us, seq)` resume cursor. When
//! the home shard dies, its leg reconnects to whatever address the ring
//! slot points at next and resubscribes from that cursor; the server
//! back-fills strictly after it from the durable spill-rehydrated store, so
//! the merged stream splices back together with no gaps and no duplicates.
//!
//! The proof at the end is bit-exact: once traffic quiesces, the streamed
//! rows must equal — as a multiset of full event rows, NaN bits included —
//! what one post-hoc routed `ObsQuery` returns over the same range.
//!
//! ```text
//! cargo run --release -p ofscil --example live_tail
//! ```

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::error::Error;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const TENANTS: [&str; 4] = ["traffic-cam", "doorbell", "wildlife-cam", "meter"];
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

fn shard_registry(seed: u64) -> Result<Arc<LearnerRegistry>, ServeError> {
    let registry = LearnerRegistry::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let mut rng = SeedRng::new(seed + i as u64);
        registry.register(
            DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )?;
    }
    Ok(Arc::new(registry))
}

/// Boots one durable observed shard generation over `dir`: sealed chunks
/// spill to disk while serving, and a respawn over the same directory
/// rehydrates the previous generation's timeline before answering.
fn spawn_shard(seed: u64, dir: &Path) -> Result<ShardProcess, Box<dyn Error>> {
    let registry = shard_registry(seed)?;
    let store = Store::open(dir)?;
    store.bootstrap(&registry)?;
    let obs = Obs::new(ObsConfig::default().with_chunk_events(8));
    Ok(ShardProcess::spawn_durable_observed(
        registry,
        WireConfig::tcp_loopback(),
        Some(store),
        Some(obs),
    )?)
}

/// One burst for a tenant: learn two fresh classes, then infer three times.
fn burst(client: &mut WireClient, tenant: &str, step: usize) -> Result<(), Box<dyn Error>> {
    client.call(ServeRequest::LearnOnline {
        deployment: tenant.into(),
        batch: traffic::support_batch(IMAGE, &[2 * step, 2 * step + 1], 3),
    })?;
    for _ in 0..3 {
        client.call(ServeRequest::Infer {
            deployment: tenant.into(),
            image: traffic::class_image(IMAGE, 2 * step, 0.01),
        })?;
    }
    Ok(())
}

/// One event row projected to raw bits for multiset comparison.
type RowBits = (String, u8, u64, u64, u64, u64, u32, u64);

/// Bit-exact row identity — the derived equality would treat NaN accuracy
/// as unequal to itself, which is wrong for "is this the same row".
fn bits(event: &Event) -> RowBits {
    (
        event.deployment.clone(),
        event.kind.code(),
        event.seq,
        event.time_us,
        event.energy_mj.to_bits(),
        event.latency_us,
        event.accuracy.to_bits(),
        event.wal_bytes,
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut base = std::env::temp_dir();
    base.push(format!("ofscil-live-tail-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs = [base.join("shard0"), base.join("shard1")];

    let mut shards: Vec<Option<ShardProcess>> = Vec::new();
    for (i, dir) in dirs.iter().enumerate() {
        shards.push(Some(spawn_shard(200 + i as u64, dir)?));
    }
    let addrs: Vec<BoundAddr> =
        shards.iter().map(|s| s.as_ref().expect("shard is up").addr().clone()).collect();

    let router_obs = Obs::new(ObsConfig::default());
    let config = RouterConfig::tcp_loopback(addrs)
        .with_deployments(&TENANTS)
        .with_obs(router_obs.clone());
    RouterServer::run(&config, move |router| -> Result<(), Box<dyn Error>> {
        println!("router serving on {}", router.addr());

        // Subscribe BEFORE any traffic: the back-fill is empty, so every
        // row printed below traveled the live streaming path.
        let sub = WireClient::connect(router.addr())?;
        sub.set_read_timeout(Some(Duration::from_millis(20)))?;
        let mut stream = sub.obs_subscribe(&ObsQuery::all(), None)?;
        println!("subscribed to the cluster tail (cursor: start)");

        let mut client = WireClient::connect(router.addr())?;
        let victim = router.shard_for(TENANTS[0])?;
        let survivor_shard = (victim + 1) % 2;
        let survivor = TENANTS
            .iter()
            .find(|t| router.shard_for(t).map(|s| s == survivor_shard).unwrap_or(false))
            .copied();
        let survivor = match survivor {
            Some(tenant) => tenant,
            None => {
                router.migrate(TENANTS[1], survivor_shard)?;
                TENANTS[1]
            }
        };

        // First half of the burst, split across both shards.
        burst(&mut client, TENANTS[0], 0)?;
        burst(&mut client, survivor, 0)?;

        // Kill the subscribed home shard mid-burst...
        shards[victim].take().expect("victim is up").stop();
        println!("killed shard {victim} mid-burst (the subscribed home shard)");
        // ...keep the survivor busy while the leg is down...
        burst(&mut client, survivor, 1)?;
        // ...and boot a fresh generation over the victim's store directory.
        let reborn = spawn_shard(200 + victim as u64, &dirs[victim])?;
        router.replace_shard(victim, reborn.addr().clone())?;
        println!("restarted shard {victim} from its store on {}", reborn.addr());
        shards[victim] = Some(reborn);

        burst(&mut client, TENANTS[0], 1)?;
        burst(&mut client, survivor, 2)?;

        // Traffic has quiesced: one routed query over the full range is the
        // ground truth the stream must converge to.
        let reference = router.obs_query(&ObsQuery::all());
        assert_eq!(reference.shards_err, 0, "every shard answered the reference query");
        assert!(!reference.truncated, "reference query covers the full range");
        let mut expected: Vec<_> = reference.events.iter().map(bits).collect();
        expected.sort_unstable();

        // Drain the stream until the multisets match. Equality is
        // simultaneously the zero-gap AND zero-duplicate assert: a missing
        // row or a re-delivered row would both keep them unequal.
        let stop = Arc::new(AtomicBool::new(false));
        {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                std::thread::sleep(DRAIN_DEADLINE);
                stop.store(true, Ordering::Release);
            });
        }
        let started = Instant::now();
        let mut streamed: Vec<RowBits> = Vec::new();
        let mut batches = 0u64;
        let mut dropped = 0u64;
        loop {
            let mut sorted = streamed.clone();
            sorted.sort_unstable();
            if sorted == expected {
                break;
            }
            match stream.next_batch(Some(&stop))? {
                Some(batch) => {
                    batches += 1;
                    dropped = batch.dropped;
                    streamed.extend(batch.events.iter().map(bits));
                }
                None => {
                    panic!(
                        "stream went silent before converging: {} of {} rows",
                        sorted.len(),
                        expected.len()
                    );
                }
            }
        }
        println!(
            "stream converged in {:.1} ms: {} rows over {} frames, across a shard \
             kill-and-restart",
            1e3 * started.elapsed().as_secs_f64(),
            streamed.len(),
            batches
        );

        let learns = reference.events.iter().filter(|e| e.kind == EventKind::Learn).count();
        let infers = reference.events.iter().filter(|e| e.kind == EventKind::Infer).count();
        println!("streamed timeline: {learns} learns, {infers} infers, zero gaps, zero duplicates");
        println!("gap-free: stream matched post-hoc query bit-exactly");
        println!("tail dropped events: {dropped}");
        Ok(())
    })??;

    println!("done: the live tail survived a shard restart with no gaps and no duplicates");
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
