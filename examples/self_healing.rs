//! Self-healing walkthrough: a sharded cluster that survives losing a
//! shard **with zero operator calls**.
//!
//! Three backend shards serve four tenants behind the consistent-hash
//! router. A follower replica tails one shard and advertises itself to the
//! router as a promotion candidate. Then the shard is killed mid-run — and
//! nobody calls `migrate` or `promote`:
//!
//! 1. the router's circuit breaker opens and its dwell time starts growing,
//! 2. the control loop ([`Controller`]) notices the dwell crossing its
//!    hysteresis threshold on a tick,
//! 3. the planner emits a typed `PromoteFollower` action; the executor
//!    promotes the replica into a durable writable primary and re-points
//!    the ring slot at it,
//! 4. traffic flows again — including writes — and the whole recovery
//!    (breaker-open → promotion → per-deployment adoption) reads back from
//!    one routed observability query.
//!
//! Everything crosses real sockets (loopback TCP with ephemeral ports).
//!
//! ```text
//! cargo run --release -p ofscil --example self_healing
//! ```

use ofscil::ctrl::harness::FollowerProcess;
use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use std::error::Error;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const TENANTS: [&str; 4] = ["wildlife-cam", "doorbell", "warehouse-bot", "greenhouse"];

/// Every process loads the same pretrained weights per tenant; replication
/// and promotion then only move the explicit memory.
fn cluster_registry() -> Result<Arc<LearnerRegistry>, ServeError> {
    let registry = LearnerRegistry::new();
    for (i, tenant) in TENANTS.iter().enumerate() {
        let mut rng = SeedRng::new(100 + i as u64);
        registry.register(
            DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )?;
    }
    Ok(Arc::new(registry))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-self-healing-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn main() -> Result<(), Box<dyn Error>> {
    // One shared observability pipeline: shards, router, the promoted
    // primary and the controller all stamp into the same timeline.
    let obs = Obs::new(ObsConfig::default());
    let shards: Vec<ShardProcess> = (0..3)
        .map(|_| {
            ShardProcess::spawn_observed(
                cluster_registry().unwrap(),
                WireConfig::tcp_loopback(),
                Some(obs.clone()),
            )
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<BoundAddr> = shards.iter().map(|s| s.addr().clone()).collect();
    let config = RouterConfig::tcp_loopback(addrs)
        .with_deployments(&TENANTS)
        .with_obs(obs.clone());

    RouterServer::run(&config, |router| -> Result<(), Box<dyn Error>> {
        println!("router serving on {}", router.addr());
        for tenant in TENANTS {
            println!("  {tenant:>14} -> shard {}", router.shard_for(tenant)?);
        }

        // The victim is whichever shard serves the first tenant. A replica
        // tails it and announces itself to the router.
        let victim = router.shard_for(TENANTS[0])?;
        let tailed: Vec<&str> = TENANTS
            .iter()
            .copied()
            .filter(|t| router.shard_for(t).unwrap() == victim)
            .collect();
        let follower = FollowerProcess::spawn(
            cluster_registry()?,
            FollowerConfig::new(router.shard_addr(victim)?, &tailed)
                .with_advertise(router.addr().clone()),
        )?;
        println!(
            "follower {} tails shard {victim} ({} tenant(s)) and advertised itself",
            follower.addr(),
            tailed.len()
        );

        // Load the cluster so there is real state to lose.
        let mut client = WireClient::connect(router.addr())?;
        for tenant in TENANTS {
            client.call(ServeRequest::LearnOnline {
                deployment: tenant.into(),
                batch: traffic::support_batch(IMAGE, &[0, 1, 2], 5),
            })?;
            for class in 0..3 {
                client.call(ServeRequest::Infer {
                    deployment: tenant.into(),
                    image: traffic::class_image(IMAGE, class, 0.01),
                })?;
            }
        }

        // Hand the standby resources to the control plane and start it.
        let mut fleet = StandbyFleet::new(Some(obs.clone()));
        fleet.add_follower(victim, follower);
        fleet.add_store(victim, scratch_dir("promote"));
        let mut controller = Controller::new(
            router,
            fleet,
            CtrlConfig::default()
                .with_dwell_threshold(Duration::from_millis(80))
                .with_cooldown_ticks(2)
                .with_retries(3, Duration::from_millis(10)),
        );

        // Murder. From here on, no operator calls — only controller ticks.
        println!("\nkilling shard {victim} mid-run...");
        let mut shards = shards;
        shards.remove(victim).stop();

        let deadline = Instant::now() + Duration::from_secs(30);
        let recovered = loop {
            let report = controller.tick();
            for action in &report.executed {
                println!("tick {:>2}: executed {action}", report.tick);
            }
            for failure in &report.failures {
                println!("tick {:>2}: {failure}", report.tick);
            }
            if controller.driver().recovered() > 0 && report.quiescent() {
                break report.tick;
            }
            if Instant::now() >= deadline {
                return Err("cluster never converged back to serving".into());
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        println!("cluster quiescent again after {recovered} tick(s)");
        println!("shard {victim} now serves from {}", router.shard_addr(victim)?);

        // Full service is back: reads AND writes on every tenant.
        let mut client = WireClient::connect(router.addr())?;
        for tenant in TENANTS {
            client.call(ServeRequest::Infer {
                deployment: tenant.into(),
                image: traffic::class_image(IMAGE, 0, 0.01),
            })?;
            client.call(ServeRequest::LearnOnline {
                deployment: tenant.into(),
                batch: traffic::support_batch(IMAGE, &[3], 5),
            })?;
        }
        println!("all {} tenants serving reads and writes again", TENANTS.len());

        // The recovery timeline reconstructs from one routed query.
        let timeline = router.obs_query(&ObsQuery::deployment(&format!("shard:{victim}")));
        println!("\nshard:{victim} timeline:");
        for event in &timeline.events {
            println!("  t={:>12}us {:>13} seq={}", event.time_us, event.kind.label(), event.seq);
        }
        let opened = timeline.events.iter().find(|e| e.kind == EventKind::BreakerOpen);
        let promoted = timeline.events.iter().find(|e| e.kind == EventKind::Promotion);
        match (opened, promoted) {
            (Some(open), Some(promo)) if open.time_us <= promo.time_us => {
                println!("breaker-open precedes the promotion: timeline is coherent");
            }
            other => return Err(format!("incoherent recovery timeline: {other:?}").into()),
        }
        let counters = obs.counters();
        println!("obs dropped events: {}", counters.dropped);
        Ok(())
    })??;
    Ok(())
}
