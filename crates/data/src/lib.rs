//! Synthetic CIFAR100-like dataset, augmentation and the FSCIL session
//! protocol for the O-FSCIL reproduction.
//!
//! The paper evaluates on CIFAR100 with the standard FSCIL split: 60 base
//! classes followed by eight incremental 5-way 5-shot sessions. Real CIFAR100
//! images are not available offline, so this crate provides
//! [`SyntheticCifar`], a procedural generator producing 32×32×3 images whose
//! class structure (class-specific low-frequency texture prototypes plus
//! per-sample jitter and noise) is learnable by a small CNN and exercises the
//! same code paths as real data. The FSCIL split, the episodic samplers, the
//! augmentation pipeline (flip / crop / blur), Mixup and CutMix are faithful
//! to the paper.
//!
//! # Example
//!
//! ```
//! use ofscil_data::{FscilConfig, FscilBenchmark};
//!
//! let config = FscilConfig::micro();
//! let bench = FscilBenchmark::generate(&config, 7).unwrap();
//! assert_eq!(bench.sessions().len(), config.num_sessions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod dataset;
mod error;
mod fscil;
mod synthetic;

pub use augment::{Augmenter, AugmenterConfig, CutMix, Mixup};
pub use dataset::{Batch, Dataset, Sample};
pub use error::DataError;
pub use fscil::{FscilBenchmark, FscilConfig, Session};
pub use synthetic::{SyntheticCifar, SyntheticConfig};

/// Result alias used across the data crate.
pub type Result<T> = std::result::Result<T, DataError>;
