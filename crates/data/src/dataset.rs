//! In-memory labeled image dataset and batch assembly.

use crate::{DataError, Result};
use ofscil_tensor::{SeedRng, Tensor};

/// One labeled image: a `[channels, h, w]` tensor plus its class id.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Image tensor of shape `[channels, h, w]`.
    pub image: Tensor,
    /// Class identifier.
    pub label: usize,
}

/// A mini-batch assembled from a dataset: stacked images and aligned labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Images of shape `[batch, channels, h, w]`.
    pub images: Tensor,
    /// Labels aligned with the batch dimension.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the batch has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// An in-memory labeled image dataset.
///
/// All images share the same `[channels, h, w]` shape. The dataset exposes
/// class-indexed access (needed by the episodic samplers of the FSCIL
/// protocol) and batch assembly.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
    image_dims: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset expecting images with the given dims.
    pub fn new(image_dims: &[usize]) -> Self {
        Dataset { samples: Vec::new(), image_dims: image_dims.to_vec() }
    }

    /// Adds a sample.
    ///
    /// # Errors
    ///
    /// Returns an error when the image shape differs from the dataset's shape.
    pub fn push(&mut self, sample: Sample) -> Result<()> {
        if sample.image.dims() != self.image_dims.as_slice() {
            return Err(DataError::InvalidConfig(format!(
                "sample shape {:?} does not match dataset shape {:?}",
                sample.image.dims(),
                self.image_dims
            )));
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The common image dims `[channels, h, w]`.
    pub fn image_dims(&self) -> &[usize] {
        &self.image_dims
    }

    /// Returns the sample at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::OutOfRange`] when `index >= len()`.
    pub fn get(&self, index: usize) -> Result<&Sample> {
        self.samples.get(index).ok_or(DataError::OutOfRange {
            what: "sample index".into(),
            value: index,
            bound: self.samples.len(),
        })
    }

    /// Iterates over all samples.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// The sorted list of distinct class ids present in the dataset.
    pub fn classes(&self) -> Vec<usize> {
        let mut classes: Vec<usize> = self.samples.iter().map(|s| s.label).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Indices of all samples belonging to `class`.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.label == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a new dataset containing only samples of the given classes.
    pub fn filter_classes(&self, classes: &[usize]) -> Dataset {
        let mut out = Dataset::new(&self.image_dims);
        for sample in &self.samples {
            if classes.contains(&sample.label) {
                out.samples.push(sample.clone());
            }
        }
        out
    }

    /// Keeps at most `per_class` samples of every class (in insertion order).
    pub fn truncate_per_class(&self, per_class: usize) -> Dataset {
        let mut counts = std::collections::HashMap::new();
        let mut out = Dataset::new(&self.image_dims);
        for sample in &self.samples {
            let count = counts.entry(sample.label).or_insert(0usize);
            if *count < per_class {
                out.samples.push(sample.clone());
                *count += 1;
            }
        }
        out
    }

    /// Assembles a batch from explicit sample indices.
    ///
    /// # Errors
    ///
    /// Returns an error when `indices` is empty or contains an invalid index.
    pub fn batch(&self, indices: &[usize]) -> Result<Batch> {
        if indices.is_empty() {
            return Err(DataError::Empty("batch"));
        }
        let plane: usize = self.image_dims.iter().product();
        let mut data = Vec::with_capacity(indices.len() * plane);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let sample = self.get(i)?;
            data.extend_from_slice(sample.image.as_slice());
            labels.push(sample.label);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.image_dims);
        Ok(Batch { images: Tensor::from_vec(data, &dims)?, labels })
    }

    /// Assembles the entire dataset as a single batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty.
    pub fn full_batch(&self) -> Result<Batch> {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }

    /// Splits the dataset into shuffled mini-batches of at most `batch_size`
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns an error when `batch_size` is zero or the dataset is empty.
    pub fn shuffled_batches(&self, batch_size: usize, rng: &mut SeedRng) -> Result<Vec<Batch>> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig("batch_size must be nonzero".into()));
        }
        if self.is_empty() {
            return Err(DataError::Empty("shuffled_batches"));
        }
        let order = rng.permutation(self.len());
        order
            .chunks(batch_size)
            .map(|chunk| self.batch(chunk))
            .collect()
    }

    /// Samples `shots` random samples per listed class and assembles them as a
    /// batch (support set of an episode).
    ///
    /// # Errors
    ///
    /// Returns an error when a class has fewer than `shots` samples.
    pub fn sample_support(
        &self,
        classes: &[usize],
        shots: usize,
        rng: &mut SeedRng,
    ) -> Result<Batch> {
        let mut indices = Vec::with_capacity(classes.len() * shots);
        for &class in classes {
            let of_class = self.indices_of_class(class);
            if of_class.len() < shots {
                return Err(DataError::InvalidConfig(format!(
                    "class {class} has only {} samples, need {shots}",
                    of_class.len()
                )));
            }
            for pick in rng.choose_distinct(of_class.len(), shots) {
                indices.push(of_class[pick]);
            }
        }
        self.batch(&indices)
    }

    /// Merges another dataset of identical image dims into this one.
    ///
    /// # Errors
    ///
    /// Returns an error when the image dims differ.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if other.image_dims != self.image_dims {
            return Err(DataError::InvalidConfig(format!(
                "cannot merge datasets with dims {:?} and {:?}",
                self.image_dims, other.image_dims
            )));
        }
        self.samples.extend(other.samples.iter().cloned());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new(&[1, 2, 2]);
        for label in 0..3usize {
            for k in 0..4usize {
                ds.push(Sample {
                    image: Tensor::full(&[1, 2, 2], (label * 10 + k) as f32),
                    label,
                })
                .unwrap();
            }
        }
        ds
    }

    #[test]
    fn push_rejects_wrong_shape() {
        let mut ds = Dataset::new(&[3, 4, 4]);
        assert!(ds
            .push(Sample { image: Tensor::zeros(&[3, 5, 5]), label: 0 })
            .is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn classes_and_filtering() {
        let ds = toy_dataset();
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.classes(), vec![0, 1, 2]);
        assert_eq!(ds.indices_of_class(1).len(), 4);
        let filtered = ds.filter_classes(&[0, 2]);
        assert_eq!(filtered.classes(), vec![0, 2]);
        assert_eq!(filtered.len(), 8);
        let truncated = ds.truncate_per_class(2);
        assert_eq!(truncated.len(), 6);
    }

    #[test]
    fn batch_assembly() {
        let ds = toy_dataset();
        let batch = ds.batch(&[0, 5, 11]).unwrap();
        assert_eq!(batch.images.dims(), &[3, 1, 2, 2]);
        assert_eq!(batch.labels, vec![0, 1, 2]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert!(ds.batch(&[]).is_err());
        assert!(ds.batch(&[99]).is_err());
        assert_eq!(ds.full_batch().unwrap().len(), 12);
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let ds = toy_dataset();
        let mut rng = SeedRng::new(0);
        let batches = ds.shuffled_batches(5, &mut rng).unwrap();
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 12);
        assert_eq!(batches.len(), 3);
        assert!(ds.shuffled_batches(0, &mut rng).is_err());
    }

    #[test]
    fn support_sampling_is_balanced() {
        let ds = toy_dataset();
        let mut rng = SeedRng::new(1);
        let support = ds.sample_support(&[0, 2], 3, &mut rng).unwrap();
        assert_eq!(support.len(), 6);
        assert_eq!(support.labels.iter().filter(|&&l| l == 0).count(), 3);
        assert_eq!(support.labels.iter().filter(|&&l| l == 2).count(), 3);
        assert!(ds.sample_support(&[0], 9, &mut rng).is_err());
    }

    #[test]
    fn extend_from_checks_dims() {
        let mut a = toy_dataset();
        let b = toy_dataset();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 24);
        let c = Dataset::new(&[3, 8, 8]);
        assert!(a.extend_from(&c).is_err());
    }
}
