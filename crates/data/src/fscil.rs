//! The FSCIL benchmark protocol (paper §III and §VI-A).
//!
//! A benchmark consists of a *base session* (many labeled samples for the
//! base classes, used for pretraining and metalearning), a sequence of
//! *incremental sessions* (each introducing `ways` new classes with only
//! `shots` labeled samples per class), and a held-out test set covering all
//! classes. After session `t`, the model is evaluated on the test samples of
//! every class seen so far.

use crate::{DataError, Dataset, Result, SyntheticCifar, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// Configuration of an FSCIL benchmark instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FscilConfig {
    /// Generator configuration for the synthetic imagery.
    pub synthetic: SyntheticConfig,
    /// Number of base classes (session 0).
    pub num_base_classes: usize,
    /// Number of incremental sessions.
    pub num_sessions: usize,
    /// New classes per incremental session (N-way).
    pub ways: usize,
    /// Labeled samples per new class (S-shot).
    pub shots: usize,
    /// Training samples per base class.
    pub base_train_per_class: usize,
    /// Held-out test samples per class (all classes).
    pub test_per_class: usize,
}

impl FscilConfig {
    /// The paper's CIFAR100 protocol: 60 base classes, eight 5-way 5-shot
    /// sessions, 100 test images per class, 32×32 images.
    pub fn cifar100() -> Self {
        FscilConfig {
            synthetic: SyntheticConfig::default(),
            num_base_classes: 60,
            num_sessions: 8,
            ways: 5,
            shots: 5,
            base_train_per_class: 50,
            test_per_class: 100,

        }
    }

    /// A laptop-scale profile with the same *shape* as the CIFAR100 protocol
    /// (8 incremental sessions, 5-shot) but fewer/smaller classes, so the full
    /// pretrain → metalearn → incremental pipeline runs in seconds.
    pub fn micro() -> Self {
        FscilConfig {
            synthetic: SyntheticConfig {
                num_classes: 36,
                image_size: 16,
                components_per_class: 5,
                ..SyntheticConfig::default()
            },
            num_base_classes: 20,
            num_sessions: 8,
            ways: 2,
            shots: 5,
            base_train_per_class: 20,
            test_per_class: 10,
        }
    }

    /// Total number of classes after the last session.
    pub fn total_classes(&self) -> usize {
        self.num_base_classes + self.num_sessions * self.ways
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when the class budget exceeds the generator's classes
    /// or any count is zero.
    pub fn validate(&self) -> Result<()> {
        if self.num_base_classes == 0 || self.ways == 0 || self.shots == 0 {
            return Err(DataError::InvalidConfig(
                "base classes, ways and shots must be nonzero".into(),
            ));
        }
        if self.total_classes() > self.synthetic.num_classes {
            return Err(DataError::InvalidConfig(format!(
                "protocol needs {} classes but the generator only provides {}",
                self.total_classes(),
                self.synthetic.num_classes
            )));
        }
        if self.test_per_class == 0 || self.base_train_per_class == 0 {
            return Err(DataError::InvalidConfig(
                "train and test samples per class must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// One incremental session: the new class ids and their few-shot support set.
#[derive(Debug, Clone)]
pub struct Session {
    /// 1-based session index (session 0 is the base session).
    pub index: usize,
    /// The new classes introduced by this session.
    pub classes: Vec<usize>,
    /// Support samples (`ways * shots` images).
    pub support: Dataset,
}

/// A fully materialised FSCIL benchmark: base data, incremental sessions and
/// the complete test set.
#[derive(Debug, Clone)]
pub struct FscilBenchmark {
    config: FscilConfig,
    base_train: Dataset,
    sessions: Vec<Session>,
    test: Dataset,
}

impl FscilBenchmark {
    /// Generates a benchmark from the synthetic generator with the given seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is inconsistent.
    pub fn generate(config: &FscilConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let generator = SyntheticCifar::new(config.synthetic.clone(), seed);
        const TRAIN_STREAM: u64 = 0;
        const TEST_STREAM: u64 = 1;

        let base_classes: Vec<usize> = (0..config.num_base_classes).collect();
        let base_train =
            generator.generate_split(&base_classes, config.base_train_per_class, TRAIN_STREAM)?;

        let mut sessions = Vec::with_capacity(config.num_sessions);
        for s in 0..config.num_sessions {
            let start = config.num_base_classes + s * config.ways;
            let classes: Vec<usize> = (start..start + config.ways).collect();
            let support = generator.generate_split(&classes, config.shots, TRAIN_STREAM)?;
            sessions.push(Session { index: s + 1, classes, support });
        }

        let all_classes: Vec<usize> = (0..config.total_classes()).collect();
        let test = generator.generate_split(&all_classes, config.test_per_class, TEST_STREAM)?;

        Ok(FscilBenchmark { config: config.clone(), base_train, sessions, test })
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &FscilConfig {
        &self.config
    }

    /// Training data of the base session (session 0).
    pub fn base_train(&self) -> &Dataset {
        &self.base_train
    }

    /// The incremental sessions in order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// The full test set over every class of the protocol.
    pub fn test(&self) -> &Dataset {
        &self.test
    }

    /// Class ids known after `session` (0 = base only).
    ///
    /// # Errors
    ///
    /// Returns an error when `session` exceeds the number of sessions.
    pub fn classes_after_session(&self, session: usize) -> Result<Vec<usize>> {
        if session > self.config.num_sessions {
            return Err(DataError::OutOfRange {
                what: "session".into(),
                value: session,
                bound: self.config.num_sessions + 1,
            });
        }
        Ok((0..self.config.num_base_classes + session * self.config.ways).collect())
    }

    /// Test samples restricted to the classes known after `session`; this is
    /// the evaluation set used for the per-session accuracy columns of
    /// Table II.
    ///
    /// # Errors
    ///
    /// Returns an error when `session` exceeds the number of sessions.
    pub fn test_after_session(&self, session: usize) -> Result<Dataset> {
        let classes = self.classes_after_session(session)?;
        Ok(self.test.filter_classes(&classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar100_protocol_shape() {
        let config = FscilConfig::cifar100();
        assert_eq!(config.total_classes(), 100);
        config.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = FscilConfig::micro();
        config.ways = 0;
        assert!(config.validate().is_err());
        let mut config = FscilConfig::micro();
        config.num_base_classes = 1000;
        assert!(config.validate().is_err());
        let mut config = FscilConfig::micro();
        config.test_per_class = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn generated_benchmark_is_consistent() {
        let config = FscilConfig::micro();
        let bench = FscilBenchmark::generate(&config, 11).unwrap();
        // Base training data covers exactly the base classes.
        assert_eq!(bench.base_train().classes().len(), config.num_base_classes);
        assert_eq!(
            bench.base_train().len(),
            config.num_base_classes * config.base_train_per_class
        );
        // Sessions introduce disjoint, consecutive classes.
        assert_eq!(bench.sessions().len(), config.num_sessions);
        let mut seen = bench.base_train().classes();
        for session in bench.sessions() {
            assert_eq!(session.classes.len(), config.ways);
            assert_eq!(session.support.len(), config.ways * config.shots);
            for class in &session.classes {
                assert!(!seen.contains(class), "class {class} reappears");
                seen.push(*class);
            }
        }
        assert_eq!(seen.len(), config.total_classes());
        // Test set covers every class with the configured count.
        assert_eq!(bench.test().len(), config.total_classes() * config.test_per_class);
    }

    #[test]
    fn session_filtered_test_sets_grow() {
        let config = FscilConfig::micro();
        let bench = FscilBenchmark::generate(&config, 3).unwrap();
        let t0 = bench.test_after_session(0).unwrap();
        let t4 = bench.test_after_session(4).unwrap();
        let t8 = bench.test_after_session(8).unwrap();
        assert!(t0.len() < t4.len() && t4.len() < t8.len());
        assert_eq!(
            t8.len(),
            config.total_classes() * config.test_per_class
        );
        assert!(bench.test_after_session(9).is_err());
        assert_eq!(
            bench.classes_after_session(1).unwrap().len(),
            config.num_base_classes + config.ways
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let config = FscilConfig::micro();
        let a = FscilBenchmark::generate(&config, 5).unwrap();
        let b = FscilBenchmark::generate(&config, 5).unwrap();
        assert_eq!(
            a.base_train().get(0).unwrap().image,
            b.base_train().get(0).unwrap().image
        );
        let c = FscilBenchmark::generate(&config, 6).unwrap();
        assert!(a
            .base_train()
            .get(0)
            .unwrap()
            .image
            .max_abs_diff(&c.base_train().get(0).unwrap().image)
            .unwrap()
            > 1e-4);
    }
}
