//! Data augmentation: the "traditional" transforms used during pretraining
//! (horizontal flip, padded random crop, blur) plus the feature-interpolation
//! augmentations Mixup and CutMix (paper §IV-B).

use crate::{Batch, DataError, Result};
use ofscil_tensor::{SeedRng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the per-image augmentation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AugmenterConfig {
    /// Probability of a horizontal flip.
    pub flip_probability: f32,
    /// Padding (pixels) applied before the random crop; 0 disables cropping.
    pub crop_padding: usize,
    /// Probability of applying a 3×3 box blur.
    pub blur_probability: f32,
}

impl Default for AugmenterConfig {
    fn default() -> Self {
        AugmenterConfig { flip_probability: 0.5, crop_padding: 4, blur_probability: 0.1 }
    }
}

/// Applies the per-image augmentation pipeline to batches.
#[derive(Debug, Clone)]
pub struct Augmenter {
    config: AugmenterConfig,
}

impl Augmenter {
    /// Creates an augmenter.
    pub fn new(config: AugmenterConfig) -> Self {
        Augmenter { config }
    }

    /// The augmenter configuration.
    pub fn config(&self) -> &AugmenterConfig {
        &self.config
    }

    /// Augments every image of a batch in place (labels are unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error when the batch images are not `[b, c, h, w]`.
    pub fn augment(&self, batch: &mut Batch, rng: &mut SeedRng) -> Result<()> {
        let dims = batch.images.dims().to_vec();
        if dims.len() != 4 {
            return Err(DataError::InvalidConfig(format!(
                "augmentation expects [b, c, h, w] images, got {dims:?}"
            )));
        }
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = c * h * w;
        for i in 0..b {
            let start = i * plane;
            let mut image = Tensor::from_vec(
                batch.images.as_slice()[start..start + plane].to_vec(),
                &[c, h, w],
            )?;
            if rng.chance(self.config.flip_probability) {
                image = horizontal_flip(&image)?;
            }
            if self.config.crop_padding > 0 {
                image = random_crop(&image, self.config.crop_padding, rng)?;
            }
            if rng.chance(self.config.blur_probability) {
                image = box_blur(&image)?;
            }
            batch.images.as_mut_slice()[start..start + plane].copy_from_slice(image.as_slice());
        }
        Ok(())
    }
}

/// Flips a `[c, h, w]` image left–right.
///
/// # Errors
///
/// Returns an error when the image is not rank-3.
pub fn horizontal_flip(image: &Tensor) -> Result<Tensor> {
    let dims = image.dims();
    if dims.len() != 3 {
        return Err(DataError::InvalidConfig(format!("expected [c,h,w], got {dims:?}")));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = image.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                out[ch * h * w + y * w + x] = src[ch * h * w + y * w + (w - 1 - x)];
            }
        }
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// Pads the image by `padding` pixels of reflection on every side and crops a
/// random window of the original size.
///
/// # Errors
///
/// Returns an error when the image is not rank-3.
pub fn random_crop(image: &Tensor, padding: usize, rng: &mut SeedRng) -> Result<Tensor> {
    let dims = image.dims();
    if dims.len() != 3 {
        return Err(DataError::InvalidConfig(format!("expected [c,h,w], got {dims:?}")));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = image.as_slice();
    let offset_y = rng.below(2 * padding + 1) as isize - padding as isize;
    let offset_x = rng.below(2 * padding + 1) as isize - padding as isize;
    let mut out = vec![0.0f32; src.len()];
    let reflect = |v: isize, len: usize| -> usize {
        let len = len as isize;
        let mut v = v;
        if v < 0 {
            v = -v;
        }
        if v >= len {
            v = 2 * len - 2 - v;
        }
        v.clamp(0, len - 1) as usize
    };
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = reflect(y as isize + offset_y, h);
                let sx = reflect(x as isize + offset_x, w);
                out[ch * h * w + y * w + x] = src[ch * h * w + sy * w + sx];
            }
        }
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// 3×3 box blur with reflected borders.
///
/// # Errors
///
/// Returns an error when the image is not rank-3.
pub fn box_blur(image: &Tensor) -> Result<Tensor> {
    let dims = image.dims();
    if dims.len() != 3 {
        return Err(DataError::InvalidConfig(format!("expected [c,h,w], got {dims:?}")));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = image.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                        acc += src[ch * h * w + sy * w + sx];
                    }
                }
                out[ch * h * w + y * w + x] = acc / 9.0;
            }
        }
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// Mixup augmentation (Zhang et al., 2018): convex combination of two images
/// and of their one-hot labels.
#[derive(Debug, Clone, Copy)]
pub struct Mixup {
    /// Beta-distribution shape parameter; the paper's recipe uses uniform
    /// mixing, approximated here by `Uniform(0, 1)` when `alpha == 1`.
    pub alpha: f32,
}

impl Default for Mixup {
    fn default() -> Self {
        Mixup { alpha: 1.0 }
    }
}

impl Mixup {
    /// Applies Mixup to a batch: every image is blended with a randomly chosen
    /// partner. Returns the mixed images and the *soft* label matrix
    /// `[batch, num_classes]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch is empty or a label is out of range.
    pub fn apply(
        &self,
        batch: &Batch,
        num_classes: usize,
        rng: &mut SeedRng,
    ) -> Result<(Tensor, Tensor)> {
        if batch.is_empty() {
            return Err(DataError::Empty("mixup"));
        }
        let dims = batch.images.dims().to_vec();
        let b = dims[0];
        let plane: usize = dims[1..].iter().product();
        let mut images = batch.images.clone();
        let mut soft = soft_labels(&batch.labels, num_classes)?;
        let partners = rng.permutation(b);
        for (i, &j) in partners.iter().enumerate() {
            let lambda = sample_lambda(self.alpha, rng);
            if j == i {
                continue;
            }
            for k in 0..plane {
                let a = batch.images.as_slice()[i * plane + k];
                let bb = batch.images.as_slice()[j * plane + k];
                images.as_mut_slice()[i * plane + k] = lambda * a + (1.0 - lambda) * bb;
            }
            for c in 0..num_classes {
                let own = soft_label_value(&batch.labels, i, c);
                let other = soft_label_value(&batch.labels, j, c);
                soft.set(&[i, c], lambda * own + (1.0 - lambda) * other)?;
            }
        }
        Ok((images, soft))
    }
}

/// CutMix augmentation (Yun et al., 2019): a rectangular region of a partner
/// image is pasted into each image; labels mix proportionally to area.
#[derive(Debug, Clone, Copy, Default)]
pub struct CutMix;

impl CutMix {
    /// Applies CutMix to a batch, returning mixed images and soft labels.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch is empty or a label is out of range.
    pub fn apply(
        &self,
        batch: &Batch,
        num_classes: usize,
        rng: &mut SeedRng,
    ) -> Result<(Tensor, Tensor)> {
        if batch.is_empty() {
            return Err(DataError::Empty("cutmix"));
        }
        let dims = batch.images.dims().to_vec();
        if dims.len() != 4 {
            return Err(DataError::InvalidConfig(format!(
                "cutmix expects [b, c, h, w] images, got {dims:?}"
            )));
        }
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = c * h * w;
        let mut images = batch.images.clone();
        let mut soft = soft_labels(&batch.labels, num_classes)?;
        let partners = rng.permutation(b);
        for (i, &j) in partners.iter().enumerate() {
            if j == i {
                continue;
            }
            // Random box occupying up to half of the area.
            let cut_h = 1 + rng.below(h / 2);
            let cut_w = 1 + rng.below(w / 2);
            let top = rng.below(h - cut_h + 1);
            let left = rng.below(w - cut_w + 1);
            for ch in 0..c {
                for y in top..top + cut_h {
                    for x in left..left + cut_w {
                        let idx = ch * h * w + y * w + x;
                        images.as_mut_slice()[i * plane + idx] =
                            batch.images.as_slice()[j * plane + idx];
                    }
                }
            }
            let lambda = 1.0 - (cut_h * cut_w) as f32 / (h * w) as f32;
            for class in 0..num_classes {
                let own = soft_label_value(&batch.labels, i, class);
                let other = soft_label_value(&batch.labels, j, class);
                soft.set(&[i, class], lambda * own + (1.0 - lambda) * other)?;
            }
        }
        Ok((images, soft))
    }
}

fn sample_lambda(alpha: f32, rng: &mut SeedRng) -> f32 {
    if alpha <= 0.0 {
        return 1.0;
    }
    // A cheap symmetric Beta(alpha, alpha) approximation: average of `alpha`
    // rounded up uniform draws mapped through a power; for alpha == 1 this is
    // exactly Uniform(0, 1), which is the common Mixup default.
    let u = rng.uniform();
    if (alpha - 1.0).abs() < 1e-6 {
        u
    } else {
        u.powf(1.0 / alpha)
    }
}

fn soft_labels(labels: &[usize], num_classes: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros(&[labels.len(), num_classes]);
    for (i, &label) in labels.iter().enumerate() {
        if label >= num_classes {
            return Err(DataError::OutOfRange {
                what: "label".into(),
                value: label,
                bound: num_classes,
            });
        }
        out.set(&[i, label], 1.0)?;
    }
    Ok(out)
}

fn soft_label_value(labels: &[usize], sample: usize, class: usize) -> f32 {
    if labels[sample] == class {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Sample};

    fn toy_batch() -> Batch {
        let mut ds = Dataset::new(&[3, 8, 8]);
        for label in 0..4usize {
            ds.push(Sample { image: Tensor::full(&[3, 8, 8], label as f32 / 4.0), label })
                .unwrap();
        }
        ds.full_batch().unwrap()
    }

    #[test]
    fn flip_is_involution() {
        let image = Tensor::from_vec((0..3 * 4 * 4).map(|v| v as f32).collect(), &[3, 4, 4]).unwrap();
        let flipped = horizontal_flip(&image).unwrap();
        assert_ne!(flipped, image);
        assert_eq!(horizontal_flip(&flipped).unwrap(), image);
        assert!(horizontal_flip(&Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn crop_preserves_shape_and_range() {
        let mut rng = SeedRng::new(0);
        let image = Tensor::from_vec((0..3 * 8 * 8).map(|v| v as f32 / 192.0).collect(), &[3, 8, 8])
            .unwrap();
        let cropped = random_crop(&image, 2, &mut rng).unwrap();
        assert_eq!(cropped.dims(), image.dims());
        assert!(cropped.max().unwrap() <= 1.0);
    }

    #[test]
    fn blur_smooths() {
        let mut image = Tensor::zeros(&[1, 5, 5]);
        image.set(&[0, 2, 2], 9.0).unwrap();
        let blurred = box_blur(&image).unwrap();
        assert!((blurred.at(&[0, 2, 2]).unwrap() - 1.0).abs() < 1e-5);
        assert!((blurred.sum() - 9.0).abs() < 1.0);
    }

    #[test]
    fn augmenter_preserves_shape_and_labels() {
        let mut batch = toy_batch();
        let labels = batch.labels.clone();
        let dims = batch.images.dims().to_vec();
        let augmenter = Augmenter::new(AugmenterConfig::default());
        let mut rng = SeedRng::new(3);
        augmenter.augment(&mut batch, &mut rng).unwrap();
        assert_eq!(batch.images.dims(), dims.as_slice());
        assert_eq!(batch.labels, labels);
        assert!(batch.images.all_finite());
    }

    #[test]
    fn mixup_produces_valid_soft_labels() {
        let batch = toy_batch();
        let mut rng = SeedRng::new(1);
        let (images, soft) = Mixup::default().apply(&batch, 4, &mut rng).unwrap();
        assert_eq!(images.dims(), batch.images.dims());
        assert_eq!(soft.dims(), &[4, 4]);
        for i in 0..4 {
            let row_sum: f32 = soft.row(i).unwrap().iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn cutmix_mixes_area_proportionally() {
        let batch = toy_batch();
        let mut rng = SeedRng::new(2);
        let (images, soft) = CutMix.apply(&batch, 4, &mut rng).unwrap();
        assert_eq!(images.dims(), batch.images.dims());
        for i in 0..4 {
            let row_sum: f32 = soft.row(i).unwrap().iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
            // The own label keeps the majority share (box ≤ half the area).
            assert!(soft.at(&[i, batch.labels[i]]).unwrap() >= 0.5);
        }
    }

    #[test]
    fn empty_batches_are_rejected() {
        let empty = Batch { images: Tensor::zeros(&[0, 3, 4, 4]), labels: vec![] };
        let mut rng = SeedRng::new(0);
        assert!(Mixup::default().apply(&empty, 4, &mut rng).is_err());
        assert!(CutMix.apply(&empty, 4, &mut rng).is_err());
    }

    #[test]
    fn out_of_range_labels_are_rejected() {
        let mut ds = Dataset::new(&[3, 4, 4]);
        ds.push(Sample { image: Tensor::zeros(&[3, 4, 4]), label: 9 }).unwrap();
        ds.push(Sample { image: Tensor::zeros(&[3, 4, 4]), label: 1 }).unwrap();
        let batch = ds.full_batch().unwrap();
        let mut rng = SeedRng::new(0);
        assert!(Mixup::default().apply(&batch, 4, &mut rng).is_err());
    }
}
