//! Error type for the data crate.

use ofscil_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by dataset construction and sampling operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The requested configuration is inconsistent (e.g. more base classes
    /// than total classes).
    InvalidConfig(String),
    /// A sample index or class id was out of range.
    OutOfRange {
        /// Description of the offending value.
        what: String,
        /// The offending value.
        value: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// The operation requires a non-empty dataset or batch.
    Empty(&'static str),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DataError::OutOfRange { what, value, bound } => {
                write!(f, "{what} {value} out of range (bound {bound})")
            }
            DataError::Empty(op) => write!(f, "{op} requires a non-empty dataset"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::from(TensorError::Empty("max"));
        assert!(e.source().is_some());
        let e = DataError::OutOfRange { what: "class".into(), value: 7, bound: 5 };
        assert!(e.to_string().contains('7'));
    }
}
