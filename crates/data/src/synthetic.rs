//! Procedural CIFAR100-like image generator.
//!
//! Each class owns a small set of low-frequency texture components (random
//! spatial frequencies, phases and per-channel amplitudes drawn from a
//! class-specific RNG stream). A sample of that class renders those
//! components with per-sample phase jitter, amplitude scaling, a random
//! spatial shift, and additive pixel noise. Classes therefore form compact
//! but overlapping clusters in image space — the property the FSCIL pipeline
//! actually relies on — while remaining cheap to generate and fully
//! deterministic given a seed.

use crate::{Dataset, Result, Sample};
use ofscil_tensor::{SeedRng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic CIFAR-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Total number of classes.
    pub num_classes: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Number of texture components per class.
    pub components_per_class: usize,
    /// Per-sample phase jitter amplitude (radians); larger = harder classes.
    pub phase_jitter: f32,
    /// Additive Gaussian pixel-noise standard deviation.
    pub pixel_noise: f32,
    /// Maximum per-sample spatial shift in pixels.
    pub max_shift: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_classes: 100,
            image_size: 32,
            components_per_class: 6,
            phase_jitter: 0.35,
            pixel_noise: 0.06,
            max_shift: 2,
        }
    }
}

impl SyntheticConfig {
    /// A small configuration for fast tests: 20 classes of 16×16 images.
    pub fn tiny() -> Self {
        SyntheticConfig {
            num_classes: 20,
            image_size: 16,
            components_per_class: 4,
            ..Default::default()
        }
    }
}

/// One texture component of a class prototype.
#[derive(Debug, Clone, Copy)]
struct Component {
    freq_x: f32,
    freq_y: f32,
    phase: f32,
    amplitude: [f32; 3],
}

/// The stable, per-class appearance: texture components plus a mean colour
/// offset. Both survive the per-sample jitter, giving classes a learnable
/// signature.
#[derive(Debug, Clone)]
struct ClassSignature {
    components: Vec<Component>,
    color_offset: [f32; 3],
}

/// Deterministic procedural image generator with CIFAR100-like class
/// structure.
///
/// # Example
///
/// ```
/// use ofscil_data::{SyntheticCifar, SyntheticConfig};
///
/// let gen = SyntheticCifar::new(SyntheticConfig::tiny(), 1);
/// let ds = gen.generate_split(&[0, 1, 2], 5, 100).unwrap();
/// assert_eq!(ds.len(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCifar {
    config: SyntheticConfig,
    seed: u64,
    signatures: Vec<ClassSignature>,
}

impl SyntheticCifar {
    /// Creates a generator; the class prototypes are derived from `seed`.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        let mut signatures = Vec::with_capacity(config.num_classes);
        for class in 0..config.num_classes {
            let mut rng = SeedRng::new(seed ^ (0xC1A5_5000 + class as u64).wrapping_mul(0x9E37));
            let components = (0..config.components_per_class)
                .map(|_| Component {
                    freq_x: rng.uniform_range(0.2, 1.6),
                    freq_y: rng.uniform_range(0.2, 1.6),
                    phase: rng.uniform_range(0.0, std::f32::consts::TAU),
                    amplitude: [
                        rng.uniform_range(-1.0, 1.0),
                        rng.uniform_range(-1.0, 1.0),
                        rng.uniform_range(-1.0, 1.0),
                    ],
                })
                .collect();
            let color_offset = [
                rng.uniform_range(-0.18, 0.18),
                rng.uniform_range(-0.18, 0.18),
                rng.uniform_range(-0.18, 0.18),
            ];
            signatures.push(ClassSignature { components, color_offset });
        }
        SyntheticCifar { config, seed, signatures }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Number of classes the generator can produce.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Renders one image of `class`; `sample_id` and `stream` select the
    /// per-sample randomness (train and test splits use different streams so
    /// they never share samples).
    ///
    /// # Errors
    ///
    /// Returns an error when `class` is out of range.
    pub fn render(&self, class: usize, sample_id: usize, stream: u64) -> Result<Tensor> {
        let signature = self.signatures.get(class).ok_or(crate::DataError::OutOfRange {
            what: "class".into(),
            value: class,
            bound: self.config.num_classes,
        })?;
        let components = &signature.components;
        let size = self.config.image_size;
        let mut rng = SeedRng::new(
            self.seed
                ^ stream.wrapping_mul(0x517C_C1B7_2722_0A95)
                ^ ((class as u64) << 32 | sample_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let jitter: Vec<f32> = components
            .iter()
            .map(|_| rng.uniform_range(-self.config.phase_jitter, self.config.phase_jitter))
            .collect();
        let scale = rng.uniform_range(0.85, 1.15);
        let shift_x = rng.below(2 * self.config.max_shift + 1) as f32 - self.config.max_shift as f32;
        let shift_y = rng.below(2 * self.config.max_shift + 1) as f32 - self.config.max_shift as f32;

        let mut data = vec![0.0f32; 3 * size * size];
        let freq_scale = 8.0 / size as f32;
        for y in 0..size {
            for x in 0..size {
                let xf = x as f32 + shift_x;
                let yf = y as f32 + shift_y;
                for (component, &j) in components.iter().zip(&jitter) {
                    let angle = component.freq_x * xf * freq_scale
                        + component.freq_y * yf * freq_scale
                        + component.phase
                        + j;
                    let v = scale * angle.sin();
                    for ch in 0..3 {
                        data[ch * size * size + y * size + x] += component.amplitude[ch] * v;
                    }
                }
            }
        }
        // Normalise roughly into [0, 1], add the class colour offset and pixel
        // noise.
        let norm = (components.len() as f32).sqrt().max(1.0);
        for (idx, v) in data.iter_mut().enumerate() {
            let ch = idx / (size * size);
            *v = 0.5
                + 0.35 * (*v / norm)
                + signature.color_offset[ch]
                + rng.normal_with(0.0, self.config.pixel_noise);
            *v = v.clamp(0.0, 1.0);
        }
        Ok(Tensor::from_vec(data, &[3, size, size])?)
    }

    /// Generates a dataset with `per_class` samples for each listed class.
    /// `stream` decorrelates splits (use different streams for train / test).
    ///
    /// # Errors
    ///
    /// Returns an error when any class id is out of range.
    pub fn generate_split(
        &self,
        classes: &[usize],
        per_class: usize,
        stream: u64,
    ) -> Result<Dataset> {
        let size = self.config.image_size;
        let mut dataset = Dataset::new(&[3, size, size]);
        for &class in classes {
            for sample_id in 0..per_class {
                dataset.push(Sample { image: self.render(class, sample_id, stream)?, label: class })?;
            }
        }
        Ok(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::cosine_similarity;

    #[test]
    fn deterministic_rendering() {
        let gen_a = SyntheticCifar::new(SyntheticConfig::tiny(), 9);
        let gen_b = SyntheticCifar::new(SyntheticConfig::tiny(), 9);
        let a = gen_a.render(3, 0, 0).unwrap();
        let b = gen_b.render(3, 0, 0).unwrap();
        assert_eq!(a, b);
        // Different seed => different image.
        let gen_c = SyntheticCifar::new(SyntheticConfig::tiny(), 10);
        let c = gen_c.render(3, 0, 0).unwrap();
        assert!(a.max_abs_diff(&c).unwrap() > 1e-3);
    }

    #[test]
    fn pixel_range_is_valid() {
        let generator = SyntheticCifar::new(SyntheticConfig::tiny(), 0);
        let img = generator.render(0, 0, 0).unwrap();
        assert_eq!(img.dims(), &[3, 16, 16]);
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn intra_class_more_similar_than_inter_class() {
        // The whole point of the generator: two samples of one class correlate
        // more than samples of different classes, on average.
        let generator = SyntheticCifar::new(SyntheticConfig::tiny(), 4);
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut n = 0;
        for class in 0..8usize {
            let a = generator.render(class, 0, 0).unwrap();
            let b = generator.render(class, 1, 0).unwrap();
            let other = generator.render((class + 1) % 8, 1, 0).unwrap();
            let center = |t: &Tensor| t.add_scalar(-t.mean());
            intra += cosine_similarity(center(&a).as_slice(), center(&b).as_slice()).unwrap();
            inter += cosine_similarity(center(&a).as_slice(), center(&other).as_slice()).unwrap();
            n += 1;
        }
        intra /= n as f32;
        inter /= n as f32;
        assert!(
            intra > inter + 0.1,
            "intra-class similarity {intra} should exceed inter-class {inter}"
        );
    }

    #[test]
    fn split_generation_counts() {
        let generator = SyntheticCifar::new(SyntheticConfig::tiny(), 0);
        let ds = generator.generate_split(&[0, 3, 7], 4, 0).unwrap();
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.classes(), vec![0, 3, 7]);
        assert!(generator.generate_split(&[99], 1, 0).is_err());
        assert!(generator.render(50, 0, 0).is_err());
    }

    #[test]
    fn different_streams_produce_different_samples() {
        let generator = SyntheticCifar::new(SyntheticConfig::tiny(), 0);
        let train = generator.render(2, 0, 0).unwrap();
        let test = generator.render(2, 0, 1).unwrap();
        assert!(train.max_abs_diff(&test).unwrap() > 1e-3);
    }
}
