//! The consistent-hash ring that places deployments on shards.
//!
//! Classic consistent hashing with virtual nodes: every shard owns
//! `replicas` points on a 64-bit ring, a deployment name hashes to a point,
//! and the first shard point at or clockwise of it owns the deployment.
//! Virtual nodes smooth the load split (a shard's share of the keyspace
//! concentrates around `1/n` as replicas grow), and adding or removing one
//! shard only remaps the keys that fall into that shard's arcs — the
//! property that makes rebalancing a *migration of few deployments* instead
//! of a full reshuffle.
//!
//! The hash is the same dependency-free FNV-1a family the wire frame and
//! snapshot codecs use, widened to 64 bits for ring resolution. Placement is
//! a pure function of the shard set and the name: every router instance with
//! the same configuration computes the same placement, no coordination
//! needed.

use std::collections::BTreeSet;

/// FNV-1a 64-bit hash — placement must be deterministic across processes,
/// so the hash is pinned here rather than borrowed from `std` (whose
/// `DefaultHasher` is explicitly unstable across releases).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The 64-bit avalanche finalizer (the murmur3 `fmix64` constants). Raw
/// FNV-1a of short, similar strings ("shard-0/vnode-1", "shard-0/vnode-2",
/// …) differs mostly in its low bits, but ring position is ordered by the
/// *high* bits — without this mix the virtual nodes clump and one shard
/// owns far more than its share.
fn mix64(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// Position of a byte string on the ring.
pub(crate) fn ring_point(bytes: &[u8]) -> u64 {
    mix64(fnv1a64(bytes))
}

/// A consistent-hash ring over shard ids with virtual nodes.
///
/// Shard ids are stable small integers (indices into the router's shard
/// address table): removing a shard retires its id, adding a shard allocates
/// the next one. The ring itself carries no addresses — the
/// [`ShardPool`](crate::ShardPool) owns those.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// `(point, shard)` pairs sorted by point; lookup is a binary search
    /// with wraparound.
    points: Vec<(u64, usize)>,
    shards: BTreeSet<usize>,
    next_id: usize,
}

impl HashRing {
    /// A ring of shards `0..shards`, each with `replicas` virtual nodes
    /// (minimum 1).
    pub fn new(shards: usize, replicas: usize) -> Self {
        let mut ring = HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
            shards: (0..shards).collect(),
            next_id: shards,
        };
        ring.rebuild();
        ring
    }

    /// Virtual nodes per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Active shard ids, ascending.
    pub fn shard_ids(&self) -> Vec<usize> {
        self.shards.iter().copied().collect()
    }

    /// Number of active shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Returns `true` when no shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Returns `true` when `shard` is on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.contains(&shard)
    }

    /// The shard owning `name`: the first shard point at or clockwise of the
    /// name's hash. `None` on an empty ring.
    pub fn shard_for(&self, name: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let key = ring_point(name.as_bytes());
        let idx = self.points.partition_point(|&(point, _)| point < key);
        let (_, shard) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(shard)
    }

    /// Adds a shard, returning its new id.
    pub fn add_shard(&mut self) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.shards.insert(id);
        self.rebuild();
        id
    }

    /// Removes a shard from the ring; its keys fall to their clockwise
    /// neighbours. Returns `false` when the id was not on the ring.
    pub fn remove_shard(&mut self, shard: usize) -> bool {
        if !self.shards.remove(&shard) {
            return false;
        }
        self.rebuild();
        true
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for &shard in &self.shards {
            for replica in 0..self.replicas {
                let point = ring_point(format!("shard-{shard}/vnode-{replica}").as_bytes());
                self.points.push((point, shard));
            }
        }
        // Ties (astronomically unlikely 64-bit collisions) resolve to the
        // lowest shard id, deterministically.
        self.points.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("tenant-{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = HashRing::new(3, 64);
        let again = HashRing::new(3, 64);
        for name in names(200) {
            let shard = ring.shard_for(&name).unwrap();
            assert!(shard < 3);
            assert_eq!(again.shard_for(&name), Some(shard));
        }
        assert!(HashRing::new(0, 64).shard_for("anything").is_none());
    }

    #[test]
    fn virtual_nodes_balance_the_split() {
        let ring = HashRing::new(3, 64);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        let total = 3000;
        for name in names(total) {
            *counts.entry(ring.shard_for(&name).unwrap()).or_insert(0) += 1;
        }
        for shard in 0..3 {
            let share = counts[&shard] as f64 / total as f64;
            assert!(
                (0.15..=0.55).contains(&share),
                "shard {shard} owns {share:.2} of the keyspace"
            );
        }
    }

    #[test]
    fn adding_a_shard_remaps_only_a_fraction() {
        let before = HashRing::new(3, 64);
        let mut after = before.clone();
        let id = after.add_shard();
        assert_eq!(id, 3);
        let total = 2000;
        let moved = names(total)
            .iter()
            .filter(|name| before.shard_for(name) != after.shard_for(name))
            .count();
        // Ideal is 1/4 of keys moving to the new shard; anything well under a
        // full reshuffle proves consistency. Every moved key must land on the
        // new shard — consistent hashing never shuffles keys between
        // surviving shards.
        assert!(moved > 0, "a new shard must take some keys");
        assert!(
            (moved as f64) < 0.5 * total as f64,
            "adding one shard moved {moved}/{total} keys"
        );
        for name in names(total) {
            if before.shard_for(&name) != after.shard_for(&name) {
                assert_eq!(after.shard_for(&name), Some(3));
            }
        }
    }

    #[test]
    fn removing_a_shard_retires_its_id_and_respreads_its_keys() {
        let mut ring = HashRing::new(3, 64);
        assert!(ring.remove_shard(1));
        assert!(!ring.remove_shard(1));
        assert_eq!(ring.shard_ids(), vec![0, 2]);
        for name in names(500) {
            let shard = ring.shard_for(&name).unwrap();
            assert_ne!(shard, 1);
        }
        // A later add allocates a fresh id, never recycling the retired one.
        assert_eq!(ring.add_shard(), 3);
        assert_eq!(ring.shard_ids(), vec![0, 2, 3]);
    }

    #[test]
    fn last_shard_owns_everything() {
        let mut ring = HashRing::new(2, 8);
        assert!(ring.remove_shard(0));
        for name in names(50) {
            assert_eq!(ring.shard_for(&name), Some(1));
        }
        assert!(ring.remove_shard(1));
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for("anyone"), None);
    }
}
