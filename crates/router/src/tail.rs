//! Cluster-wide live tails: one subscription, many legs.
//!
//! A [`ClusterTail`] multiplexes a single observability subscription across
//! the whole cluster — one wire leg per ring shard, one per advertised
//! follower, plus an in-process leg on the router's own store — and merges
//! the legs into a single stream of [`TailBatch`]es. It is the streaming
//! sibling of the scatter-gather `ObsQuery` path: same legs, pushed instead
//! of polled.
//!
//! Every leg keeps its **own resume cursor**. When a shard dies, restarts,
//! or is re-pointed at a promoted follower
//! ([`RouterHandle::replace_shard`](crate::RouterHandle::replace_shard)),
//! the leg reconnects — re-resolving the shard's current address from the
//! pool — and resubscribes from the last row it consumed, so the merged
//! stream survives kill/restart with no gaps; the server back-fills
//! strictly after the cursor, so a leg retry re-delivers nothing. Rows that
//! live on two legs at once (a primary and the follower replicating it)
//! are removed by the wire proxy with the same bit-exact row identity
//! [`ObsResult::merge`](ofscil_obs::ObsResult::merge) dedups with — the
//! splice invariant.
//!
//! Legs **block** on the bounded merge channel: the router is lossless for
//! every row that reached it. The shard-side per-subscriber channel stays
//! the bounded drop-and-count stage, so a slow cluster tail sheds at the
//! edge — never on a shard's append path — and the sheds surface as
//! `SinkOverflow` markers inside the very stream being tailed.

use crate::server::{Shared, POLL};
use ofscil_obs::{sort_dedup_events, Obs, ObsCursor, ObsQuery, Rollup, TailBatch};
use ofscil_serve::ServeError;
use ofscil_wire::codec::{decode_request, encode_response, WireRequest};
use ofscil_wire::{BoundAddr, VerbatimFrame, WireClient, WireResponse, WireStream};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Leg batches buffered between the legs and the consumer.
const MERGE_DEPTH: usize = 64;
/// Per-subscriber channel depth the local leg asks the router's own store
/// for — matches the wire server's tail queue depth.
const LOCAL_TAIL_DEPTH: usize = 1024;
/// Most events the local leg accumulates into one live batch.
const LOCAL_BATCH_EVENTS: usize = 1024;
/// Pause between a broken leg's reconnect attempts.
const LEG_RETRY: Duration = Duration::from_millis(50);
/// Most leg batches the wire proxy merges into a single client frame.
const PROXY_MERGE_BATCHES: usize = 16;

/// Counters and the stop flag shared by every leg of one cluster tail.
#[derive(Debug, Default)]
struct TailState {
    stop: AtomicBool,
    resumed: AtomicU64,
    dropped: AtomicU64,
}

/// The consumer end of a cluster-wide live tail
/// (see [`RouterHandle::cluster_tail`](crate::RouterHandle::cluster_tail)).
///
/// Batches arrive per leg (each internally `(time_us, seq)`-ordered, not
/// globally ordered across legs); the wire proxy re-orders per poll window
/// before framing, and an in-process consumer folding batches into its own
/// window does the same. Dropping the tail stops every leg within the
/// router's poll interval.
#[derive(Debug)]
pub struct ClusterTail {
    rx: mpsc::Receiver<TailBatch>,
    state: Arc<TailState>,
    legs: usize,
}

impl ClusterTail {
    /// Blocks up to `timeout` for the next leg batch.
    ///
    /// # Errors
    ///
    /// [`mpsc::RecvTimeoutError::Timeout`] when nothing arrived, and
    /// [`mpsc::RecvTimeoutError::Disconnected`] once every leg has exited.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<TailBatch, mpsc::RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// The next leg batch if one is already buffered; never blocks.
    pub fn try_next(&self) -> Option<TailBatch> {
        self.rx.try_recv().ok()
    }

    /// Non-blocking receive that distinguishes "nothing buffered right now"
    /// from "every leg has exited" — what a consumer with a polled fallback
    /// (the control plane's rate feed) needs in order to know when to stop
    /// trusting the stream.
    ///
    /// # Errors
    ///
    /// [`mpsc::TryRecvError::Empty`] when nothing is buffered, and
    /// [`mpsc::TryRecvError::Disconnected`] once every leg has exited.
    pub fn try_recv(&self) -> Result<TailBatch, mpsc::TryRecvError> {
        self.rx.try_recv()
    }

    /// Legs this tail multiplexes (shards + advertised followers + the
    /// router's own store), snapshotted at subscribe time.
    pub fn legs(&self) -> usize {
        self.legs
    }

    /// Successful leg **re**-subscriptions so far — how many times a broken
    /// leg (killed shard, replaced primary) spliced back onto the stream.
    pub fn resumed(&self) -> u64 {
        self.state.resumed.load(Ordering::Acquire)
    }

    /// Events shed cluster-wide by the legs' shard-side subscriber channels
    /// (drop-and-count; deltas folded across reconnects).
    pub fn dropped(&self) -> u64 {
        self.state.dropped.load(Ordering::Acquire)
    }
}

impl Drop for ClusterTail {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Release);
    }
}

/// Where one wire leg points.
enum LegTarget {
    /// A ring shard. The address is re-resolved from the pool on every
    /// attempt, so the leg follows a `replace_shard` re-point to a promoted
    /// follower instead of redialing the corpse forever.
    Shard(usize),
    /// An advertised follower, dialed by its display string (followers
    /// have no pooled slot — same as the scatter-gather follower legs).
    Follower(String),
}

/// Spawns every leg of a cluster tail and hands back the consumer end.
///
/// The leg set is snapshotted at subscribe time: shards currently on the
/// ring plus currently-advertised followers. Legs are detached threads
/// holding their own `Arc<Shared>`; they exit when the tail is dropped or
/// the router shuts down, whichever comes first.
pub(crate) fn spawn_cluster_tail(
    shared: Arc<Shared>,
    query: ObsQuery,
    cursor: Option<ObsCursor>,
) -> ClusterTail {
    let shard_ids = {
        let placement = shared.placement.read().expect("placement lock poisoned");
        placement.ring.shard_ids()
    };
    let follower_addrs: Vec<String> = {
        let followers = shared.followers.lock().expect("follower registry poisoned");
        let mut list: Vec<String> = followers.values().flatten().cloned().collect();
        list.sort_unstable();
        list.dedup();
        list
    };
    let (tx, rx) = mpsc::sync_channel(MERGE_DEPTH);
    let state = Arc::new(TailState::default());
    let mut legs = 0;
    for shard in shard_ids {
        legs += 1;
        let shared = Arc::clone(&shared);
        let query = query.clone();
        let tx = tx.clone();
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            run_wire_leg(&shared, &LegTarget::Shard(shard), &query, cursor, &tx, &state);
        });
    }
    for advertised in follower_addrs {
        legs += 1;
        let shared = Arc::clone(&shared);
        let query = query.clone();
        let tx = tx.clone();
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            run_wire_leg(&shared, &LegTarget::Follower(advertised), &query, cursor, &tx, &state);
        });
    }
    if let Some(obs) = shared.obs.clone() {
        legs += 1;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            run_local_leg(&obs, query, cursor, &tx, &state);
        });
    }
    ClusterTail { rx, state, legs }
}

/// One wire leg: connect, subscribe from the leg's cursor, pump batches —
/// and on any break, reconnect and resubscribe from the last consumed row.
fn run_wire_leg(
    shared: &Shared,
    target: &LegTarget,
    query: &ObsQuery,
    mut cursor: Option<ObsCursor>,
    tx: &mpsc::SyncSender<TailBatch>,
    state: &TailState,
) {
    let mut sessions: u64 = 0;
    loop {
        if state.stop.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let addr = match target {
            LegTarget::Shard(shard) => shared.pool.addr(*shard).ok(),
            LegTarget::Follower(advertised) => BoundAddr::parse(advertised),
        };
        let stream = addr.and_then(|addr| {
            WireClient::connect(&addr)
                .and_then(|client| {
                    // The read timeout is what lets `next_batch` poll the
                    // stop flag while the leg idles.
                    client.set_read_timeout(Some(POLL))?;
                    client.obs_subscribe(query, cursor)
                })
                .ok()
        });
        let Some(mut stream) = stream else {
            std::thread::sleep(LEG_RETRY);
            continue;
        };
        sessions += 1;
        if sessions > 1 {
            state.resumed.fetch_add(1, Ordering::Release);
        }
        // The server's shed counter is cumulative per subscription; fold
        // deltas into the cluster-wide total across reconnects.
        let mut session_dropped: u64 = 0;
        // On a server death, a stop raised mid-wait, or a broken transport
        // the stream ends and the outer loop decides between exit and
        // resubscribe.
        while let Ok(Some(batch)) = stream.next_batch(Some(&state.stop)) {
            let mut next = cursor.unwrap_or_default();
            batch.advance_cursor(&mut next);
            cursor = Some(next);
            let delta = batch.dropped.saturating_sub(session_dropped);
            session_dropped = batch.dropped;
            if delta > 0 {
                state.dropped.fetch_add(delta, Ordering::Release);
            }
            // Blocking send: the merge channel backpressures the
            // leg instead of dropping — shedding stays shard-side.
            if tx.send(batch).is_err() {
                return;
            }
        }
        std::thread::sleep(LEG_RETRY);
    }
}

/// The in-process leg on the router's own store: migrations, breaker
/// transitions and control-plane actions belong in the merged stream just
/// as they belong in a scatter-gathered query.
fn run_local_leg(
    obs: &Obs,
    query: ObsQuery,
    cursor: Option<ObsCursor>,
    tx: &mpsc::SyncSender<TailBatch>,
    state: &TailState,
) {
    // Drain the sink's channel first so the back-fill covers everything
    // emitted before the subscription — the wire server's contract.
    obs.flush(Duration::from_millis(250));
    let mut tail = obs.store().subscribe(query, cursor, LOCAL_TAIL_DEPTH);
    let mut high = tail.cursor;
    let events = std::mem::take(&mut tail.backfill.events);
    let rollups = std::mem::take(&mut tail.backfill.rollups);
    if !events.is_empty() || !rollups.is_empty() {
        let batch = TailBatch {
            events,
            rollups,
            cursor: high,
            backfill: true,
            truncated: tail.backfill.truncated,
            dropped: 0,
        };
        if tx.send(batch).is_err() {
            return;
        }
    }
    let mut reported_dropped: u64 = 0;
    loop {
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let first = match tail.recv_timeout(POLL) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut events = vec![first];
        while events.len() < LOCAL_BATCH_EVENTS {
            match tail.try_next() {
                Some(event) => events.push(event),
                None => break,
            }
        }
        for event in &events {
            high.advance(event.order_key());
        }
        let dropped = tail.dropped();
        let delta = dropped.saturating_sub(reported_dropped);
        reported_dropped = dropped;
        if delta > 0 {
            state.dropped.fetch_add(delta, Ordering::Release);
        }
        let batch = TailBatch {
            events,
            rollups: Vec::new(),
            cursor: high,
            backfill: false,
            truncated: false,
            dropped,
        };
        if tx.send(batch).is_err() {
            return;
        }
    }
}

/// Serves one proxied `ObsSubscribe` connection: opens a [`ClusterTail`]
/// over the whole cluster and re-frames the merged stream to the client.
///
/// Leg batches available in the same poll window are merged into one
/// frame: events re-sorted into `(time_us, seq)` order and cross-leg
/// duplicates removed with the bit-exact identity of
/// [`ObsResult::merge`](ofscil_obs::ObsResult::merge). Every frame carries
/// the high-water cursor across all merged rows — the position a client
/// resubscribes from after a broken connection, upon which every leg
/// back-fills strictly after it.
pub(crate) fn stream_cluster_tail(
    mut stream: WireStream,
    shared: &Arc<Shared>,
    frame: &VerbatimFrame,
) {
    let (query, cursor) = match decode_request(frame.kind, frame.payload()) {
        Ok(WireRequest::ObsSubscribe { query, cursor }) => (query, cursor),
        _ => {
            let _ = stream.write_all(&encode_response(&WireResponse::Error(
                ServeError::InvalidRequest("undecodable tail subscription".into()),
            )));
            return;
        }
    };
    let tail = spawn_cluster_tail(Arc::clone(shared), query, cursor);
    let mut merged_cursor = cursor.unwrap_or_default();
    loop {
        let first = match tail.recv_timeout(POLL) {
            Ok(batch) => batch,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut batches = vec![first];
        while batches.len() < PROXY_MERGE_BATCHES {
            match tail.try_next() {
                Some(batch) => batches.push(batch),
                None => break,
            }
        }
        let mut events = Vec::new();
        let mut rollups: Vec<Rollup> = Vec::new();
        let mut backfill = true;
        let mut truncated = false;
        for batch in &batches {
            batch.advance_cursor(&mut merged_cursor);
            backfill &= batch.backfill;
            truncated |= batch.truncated;
        }
        for batch in batches {
            events.extend(batch.events);
            rollups.extend(batch.rollups);
        }
        sort_dedup_events(&mut events, |_| {});
        let out = TailBatch {
            events,
            rollups,
            cursor: merged_cursor,
            backfill,
            truncated,
            dropped: tail.dropped(),
        };
        if stream.write_all(&encode_response(&WireResponse::Tail(out))).is_err() {
            return;
        }
    }
}
