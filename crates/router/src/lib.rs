//! `ofscil_router` — consistent-hash sharding for multi-process O-FSCIL
//! serving.
//!
//! The wire layer (`ofscil_wire`) made multi-process tenancy possible but
//! left every client pinned to a single backend process. This crate puts a
//! **router** in front of N backend [`WireServer`](ofscil_wire::WireServer)
//! processes: one client-facing address speaking the existing wire frame
//! protocol, placing every deployment on a shard by consistent hashing of
//! its name. The paper's core asset — tiny per-deployment explicit-memory
//! state with a bit-exact snapshot codec — is what makes the sharded
//! topology cheap to operate: moving a deployment between shards moves a
//! few kilobytes of prototypes, not a model.
//!
//! * [`HashRing`] — consistent hashing with virtual nodes (in-tree FNV-1a,
//!   no dependencies); adding or draining a shard remaps only the keys on
//!   the affected arcs,
//! * [`ShardPool`] — per-shard [`WireClient`](ofscil_wire::WireClient)
//!   pooling with reconnect, exponential backoff and a failure cooldown;
//!   dead shards yield a typed
//!   [`ShardUnavailable`](ofscil_serve::ServeError::ShardUnavailable)
//!   end to end instead of a hang,
//! * [`RouterServer`] — the frame-forwarding frontend: requests are peeked
//!   for their deployment name and forwarded verbatim, so the routing hop
//!   never deserializes a tensor and bit-exactness across the hop is
//!   structural,
//! * [`RouterHandle`] — cluster administration: scatter-gather
//!   [`cluster_stats`](RouterHandle::cluster_stats), active shard
//!   [`probe`](RouterHandle::probe)s, and live
//!   [`migrate`](RouterHandle::migrate) /
//!   [`add_shard`](RouterHandle::add_shard) /
//!   [`drain_shard`](RouterHandle::drain_shard) that move explicit memory
//!   with the snapshot codec and atomically remap the ring,
//! * [`ClusterTail`] — a cluster-wide live tail
//!   ([`cluster_tail`](RouterHandle::cluster_tail), or a proxied
//!   `ObsSubscribe` frame): one observability subscription multiplexed
//!   into per-shard, follower and router-local legs, each resubscribing
//!   from its own resume cursor through shard kill/restart so the merged
//!   stream stays gap-free,
//! * [`harness`] — spin backend "processes" (thread + own registry + real
//!   socket) up and down inside one binary, for tests, benches and examples
//!   of the sharded topology.
//!
//! # Example
//!
//! ```no_run
//! use ofscil_core::OFscilModel;
//! use ofscil_nn::models::BackboneKind;
//! use ofscil_router::{harness::ShardProcess, RouterConfig, RouterServer};
//! use ofscil_serve::{DeploymentSpec, LearnerRegistry, ServeRequest};
//! use ofscil_tensor::{SeedRng, Tensor};
//! use ofscil_wire::{WireClient, WireConfig};
//! use std::sync::Arc;
//!
//! // Every shard loads the same pretrained weights; the router decides who
//! // serves which deployment.
//! let shards: Vec<ShardProcess> = (0..3)
//!     .map(|_| {
//!         let registry = Arc::new(LearnerRegistry::new());
//!         registry
//!             .register(
//!                 DeploymentSpec::new("tenant-a", (32, 32)),
//!                 OFscilModel::new(BackboneKind::Micro, 32, &mut SeedRng::new(7)),
//!             )
//!             .unwrap();
//!         ShardProcess::spawn(registry, WireConfig::tcp_loopback()).unwrap()
//!     })
//!     .collect();
//! let config = RouterConfig::tcp_loopback(
//!     shards.iter().map(|s| s.addr().clone()).collect(),
//! )
//! .with_deployments(&["tenant-a"]);
//! RouterServer::run(&config, |router| {
//!     // Clients speak to the router exactly as they would to one server.
//!     let mut client = WireClient::connect(router.addr()).unwrap();
//!     let response = client.call(ServeRequest::Infer {
//!         deployment: "tenant-a".into(),
//!         image: Tensor::zeros(&[3, 32, 32]),
//!     });
//!     println!("{response:?} served by shard {:?}", router.shard_for("tenant-a"));
//! })
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod harness;
mod pool;
mod ring;
mod server;
mod tail;

pub use error::RouterError;
pub use pool::{PoolConfig, ShardHealth, ShardPool};
pub use ring::HashRing;
pub use server::{MigrationReport, RouterConfig, RouterHandle, RouterServer, ShardStats};
pub use tail::ClusterTail;
