//! Per-shard connection pooling with reconnect, backoff and health state.
//!
//! The router keeps a small pool of idle [`WireClient`] connections per
//! backend shard. A request checks a connection out, rides it, and returns
//! it on success; a connection that errors is dropped (its stream can no
//! longer be trusted) and — for **idempotent** requests only — retried once
//! on a fresh connection, which transparently heals the stale-pool case
//! where a shard restarted between two requests. Writes are never replayed
//! after an ambiguous failure: the shard may have applied them even though
//! the response never arrived. Connecting retries with exponential backoff,
//! and a shard whose connections keep failing is marked **down** for a
//! cooldown window during which requests fail fast with a typed
//! [`RouterError::ShardUnavailable`] instead of re-paying the connect
//! timeout — the classic circuit-breaker shape, sized for a handful of
//! shards.

use crate::error::RouterError;
use ofscil_obs::{Event, EventKind, EventSink};
use ofscil_wire::{BoundAddr, WireClient, WireError};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// Connection-management knobs of the shard pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Connect attempts per checkout before the shard is declared
    /// unavailable (minimum 1).
    pub connect_attempts: usize,
    /// Sleep before the second connect attempt; doubles per further attempt.
    pub backoff: Duration,
    /// How long a shard stays marked down after a failed checkout. Requests
    /// inside the window fail fast; a health probe or the window expiring
    /// lets traffic try again.
    pub cooldown: Duration,
    /// Idle connections kept per shard; further returns are closed.
    pub max_idle: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            connect_attempts: 3,
            backoff: Duration::from_millis(10),
            cooldown: Duration::from_millis(500),
            max_idle: 8,
        }
    }
}

/// Point-in-time health of one shard, as reported by [`ShardPool::probe`].
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Shard id.
    pub shard: usize,
    /// The shard's wire address.
    pub addr: BoundAddr,
    /// `true` when the probe's connection attempt succeeded.
    pub healthy: bool,
    /// Checkout failures since the last success.
    pub consecutive_failures: u32,
    /// The most recent failure, if any.
    pub last_error: Option<String>,
}

#[derive(Debug, Default)]
struct SlotState {
    consecutive_failures: u32,
    down_until: Option<Instant>,
    last_error: Option<String>,
    /// When the breaker last transitioned closed → open; `None` while
    /// closed. Repeat failures extend `down_until` but keep this anchor, so
    /// its age is the breaker's total open **dwell** — what a control plane
    /// compares against its promotion threshold.
    opened_at: Option<Instant>,
}

/// One shard's address, idle connections and failure state.
#[derive(Debug)]
struct ShardSlot {
    addr: BoundAddr,
    idle: Mutex<Vec<WireClient>>,
    state: Mutex<SlotState>,
}

impl ShardSlot {
    fn new(addr: BoundAddr) -> Self {
        ShardSlot {
            addr,
            idle: Mutex::new(Vec::new()),
            state: Mutex::new(SlotState::default()),
        }
    }

    fn pop_idle(&self) -> Option<WireClient> {
        self.idle.lock().expect("pool lock poisoned").pop()
    }

    fn checkin(&self, conn: WireClient, max_idle: usize) {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        if idle.len() < max_idle {
            idle.push(conn);
        }
    }

    /// Clears the failure state. Returns `true` when this actually closed a
    /// breaker (the slot had failures or a cooldown on record) — the
    /// transition edge worth an observability event.
    fn mark_up(&self) -> bool {
        let mut state = self.state.lock().expect("pool state lock poisoned");
        let closed = state.down_until.is_some() || state.consecutive_failures > 0;
        state.consecutive_failures = 0;
        state.down_until = None;
        state.last_error = None;
        state.opened_at = None;
        closed
    }

    /// Records a failure and starts (or extends) the cooldown window.
    /// Returns `true` when the breaker was closed before this call — i.e.
    /// this failure is the open transition, not a repeat.
    fn mark_down(&self, error: &str, cooldown: Duration) -> bool {
        // Dead shards accept no connections, so the stale idle pool is junk.
        self.idle.lock().expect("pool lock poisoned").clear();
        let mut state = self.state.lock().expect("pool state lock poisoned");
        let opened = state.down_until.is_none();
        state.consecutive_failures += 1;
        state.down_until = Some(Instant::now() + cooldown);
        state.last_error = Some(error.to_string());
        if state.opened_at.is_none() {
            state.opened_at = Some(Instant::now());
        }
        opened
    }

    /// How long the breaker has been open; `None` while closed.
    fn open_dwell(&self) -> Option<Duration> {
        let state = self.state.lock().expect("pool state lock poisoned");
        state.opened_at.map(|at| at.elapsed())
    }

    /// The cached failure if the shard is still inside its cooldown window.
    fn cooling_down(&self) -> Option<String> {
        let state = self.state.lock().expect("pool state lock poisoned");
        match state.down_until {
            Some(until) if Instant::now() < until => Some(
                state
                    .last_error
                    .clone()
                    .unwrap_or_else(|| "marked down".to_string()),
            ),
            _ => None,
        }
    }
}

/// The router's per-shard connection pools. Shard ids index the slot table
/// and match the ids on the [`HashRing`](crate::HashRing).
#[derive(Debug)]
pub struct ShardPool {
    slots: RwLock<Vec<std::sync::Arc<ShardSlot>>>,
    config: PoolConfig,
    /// When attached, circuit-breaker **transitions** (closed → open, open →
    /// closed) are emitted as `BreakerOpen`/`BreakerClose` events under the
    /// pseudo-deployment `shard:N`. Repeated failures inside an open window
    /// are not re-emitted.
    obs: Option<EventSink>,
}

impl ShardPool {
    /// A pool over the given shard addresses (ids `0..addrs.len()`).
    pub fn new(addrs: Vec<BoundAddr>, config: PoolConfig) -> Self {
        ShardPool::new_observed(addrs, config, None)
    }

    /// Like [`ShardPool::new`], but emitting circuit-breaker transition
    /// events into `obs`.
    pub fn new_observed(
        addrs: Vec<BoundAddr>,
        config: PoolConfig,
        obs: Option<EventSink>,
    ) -> Self {
        ShardPool {
            slots: RwLock::new(addrs.into_iter().map(|a| ShardSlot::new(a).into()).collect()),
            config,
            obs,
        }
    }

    /// Emits one breaker-transition event for a shard, if a sink is attached.
    fn breaker_event(&self, shard: usize, kind: EventKind) {
        if let Some(obs) = &self.obs {
            obs.emit(Event::new(kind, &format!("shard:{shard}")));
        }
    }

    /// Applies a successful interaction with a shard: clears its failure
    /// state and emits `BreakerClose` when that closed an open breaker.
    fn on_up(&self, shard: usize, slot: &ShardSlot) {
        if slot.mark_up() {
            self.breaker_event(shard, EventKind::BreakerClose);
        }
    }

    /// Applies a failed interaction with a shard: starts its cooldown and
    /// emits `BreakerOpen` on the closed → open edge.
    fn on_down(&self, shard: usize, slot: &ShardSlot, detail: &str) {
        if slot.mark_down(detail, self.config.cooldown) {
            self.breaker_event(shard, EventKind::BreakerOpen);
        }
    }

    /// Number of shard slots (including drained ones — ids stay stable).
    pub fn len(&self) -> usize {
        self.slots.read().expect("pool lock poisoned").len()
    }

    /// Returns `true` when the pool has no shard slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a new shard address, returning its id.
    pub fn add_shard(&self, addr: BoundAddr) -> usize {
        let mut slots = self.slots.write().expect("pool lock poisoned");
        slots.push(ShardSlot::new(addr).into());
        slots.len() - 1
    }

    /// How long a shard's circuit breaker has been **open** — the time since
    /// its closed → open transition, not since the latest repeat failure.
    /// `None` while the breaker is closed. The dwell a control plane
    /// compares against its promotion threshold: a flap that recovers resets
    /// it, only a persistently dead shard grows it.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn breaker_dwell(&self, shard: usize) -> Result<Option<Duration>, RouterError> {
        Ok(self.slot(shard)?.open_dwell())
    }

    /// Re-points a shard id at a new address — the failover edge after a
    /// follower promotion. The slot is replaced wholesale: idle connections
    /// to the dead primary are dropped and the failure state (breaker,
    /// dwell) starts fresh, so traffic tries the new address immediately.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn replace_addr(&self, shard: usize, addr: BoundAddr) -> Result<(), RouterError> {
        let mut slots = self.slots.write().expect("pool lock poisoned");
        let slot = slots.get_mut(shard).ok_or(RouterError::UnknownShard(shard))?;
        *slot = ShardSlot::new(addr).into();
        Ok(())
    }

    /// The address of a shard.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn addr(&self, shard: usize) -> Result<BoundAddr, RouterError> {
        Ok(self.slot(shard)?.addr.clone())
    }

    fn slot(&self, shard: usize) -> Result<std::sync::Arc<ShardSlot>, RouterError> {
        self.slots
            .read()
            .expect("pool lock poisoned")
            .get(shard)
            .cloned()
            .ok_or(RouterError::UnknownShard(shard))
    }

    fn unavailable(&self, shard: usize, slot: &ShardSlot, detail: String) -> RouterError {
        RouterError::ShardUnavailable { shard, addr: slot.addr.to_string(), detail }
    }

    /// Connects to a shard with bounded retries and exponential backoff.
    fn connect(&self, shard: usize, slot: &ShardSlot) -> Result<WireClient, RouterError> {
        let mut backoff = self.config.backoff;
        let mut last: Option<WireError> = None;
        for attempt in 0..self.config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match WireClient::connect(&slot.addr) {
                Ok(conn) => return Ok(conn),
                Err(e) => last = Some(e),
            }
        }
        let detail = format!(
            "connect failed after {} attempts: {}",
            self.config.connect_attempts.max(1),
            last.expect("at least one attempt ran")
        );
        self.on_down(shard, slot, &detail);
        Err(self.unavailable(shard, slot, detail))
    }

    /// Runs `f` on a connection to `shard`: pooled if available, freshly
    /// connected otherwise. A fresh connection that fails marks the shard
    /// down for the cooldown window.
    ///
    /// `retry_stale` controls what happens when a *pooled* connection fails
    /// mid-request (typically because the shard restarted while the
    /// connection sat idle): with `true`, `f` is retried once on a fresh
    /// connection — only safe for **idempotent** requests, because the
    /// shard may have applied the first attempt even though its response
    /// never arrived. With `false` the ambiguous failure is surfaced as
    /// [`RouterError::ShardUnavailable`] without replaying the request (and
    /// without entering the cooldown — one torn connection proves nothing
    /// about the shard's health).
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::ShardUnavailable`] for transport failures,
    /// [`RouterError::Remote`] when the shard itself refused, and
    /// [`RouterError::UnknownShard`] for bad ids.
    pub fn with_conn<T>(
        &self,
        shard: usize,
        retry_stale: bool,
        mut f: impl FnMut(&mut WireClient) -> Result<T, WireError>,
    ) -> Result<T, RouterError> {
        let slot = self.slot(shard)?;
        if let Some(detail) = slot.cooling_down() {
            return Err(self.unavailable(shard, &slot, detail));
        }
        if let Some(mut conn) = slot.pop_idle() {
            match f(&mut conn) {
                Ok(value) => {
                    self.on_up(shard, &slot);
                    slot.checkin(conn, self.config.max_idle);
                    return Ok(value);
                }
                Err(WireError::Remote(error)) => {
                    // The shard answered — connection and shard are fine,
                    // the request itself was refused.
                    self.on_up(shard, &slot);
                    slot.checkin(conn, self.config.max_idle);
                    return Err(RouterError::Remote(error));
                }
                // The pooled connection went stale; drop it. Idempotent
                // requests fall through to one fresh attempt; writes must
                // not be replayed after an ambiguous failure.
                Err(error) => {
                    if !retry_stale {
                        return Err(self.unavailable(
                            shard,
                            &slot,
                            format!(
                                "pooled connection failed mid-request ({error}); not \
                                 replayed — the request mutates state and may already \
                                 have been applied"
                            ),
                        ));
                    }
                }
            }
        }
        let mut conn = self.connect(shard, &slot)?;
        match f(&mut conn) {
            Ok(value) => {
                self.on_up(shard, &slot);
                slot.checkin(conn, self.config.max_idle);
                Ok(value)
            }
            Err(WireError::Remote(error)) => {
                self.on_up(shard, &slot);
                slot.checkin(conn, self.config.max_idle);
                Err(RouterError::Remote(error))
            }
            Err(error) => {
                let detail = format!("request failed on a fresh connection: {error}");
                self.on_down(shard, &slot, &detail);
                Err(self.unavailable(shard, &slot, detail))
            }
        }
    }

    /// Actively probes one shard: a single fresh connection attempt, no
    /// retries. A success clears the shard's down state early; a failure
    /// (re)marks it down.
    pub fn probe(&self, shard: usize) -> Result<ShardHealth, RouterError> {
        let slot = self.slot(shard)?;
        let healthy = match WireClient::connect(&slot.addr) {
            Ok(conn) => {
                self.on_up(shard, &slot);
                slot.checkin(conn, self.config.max_idle);
                true
            }
            Err(e) => {
                self.on_down(shard, &slot, &format!("probe failed: {e}"));
                false
            }
        };
        let state = slot.state.lock().expect("pool state lock poisoned");
        Ok(ShardHealth {
            shard,
            addr: slot.addr.clone(),
            healthy,
            consecutive_failures: state.consecutive_failures,
            last_error: state.last_error.clone(),
        })
    }

    /// Probes every shard in id order.
    pub fn probe_all(&self) -> Vec<ShardHealth> {
        (0..self.len())
            .map(|shard| self.probe(shard).expect("id in range"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An address nothing listens on: bind an ephemeral port, then drop it.
    fn dead_addr() -> BoundAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        BoundAddr::Tcp(addr)
    }

    #[test]
    fn unreachable_shard_is_typed_and_fast_fails_during_cooldown() {
        let pool = ShardPool::new(
            vec![dead_addr()],
            PoolConfig {
                connect_attempts: 2,
                backoff: Duration::from_millis(1),
                cooldown: Duration::from_secs(30),
                max_idle: 4,
            },
        );
        let err = pool.with_conn(0, true, |_conn| Ok::<(), WireError>(())).unwrap_err();
        assert!(matches!(err, RouterError::ShardUnavailable { shard: 0, .. }), "{err}");

        // Inside the cooldown the failure is served from cache: no further
        // connect attempts, so this returns immediately.
        let start = Instant::now();
        let err = pool.with_conn(0, true, |_conn| Ok::<(), WireError>(())).unwrap_err();
        assert!(matches!(err, RouterError::ShardUnavailable { .. }));
        assert!(start.elapsed() < Duration::from_millis(50));

        let health = pool.probe(0).unwrap();
        assert!(!health.healthy);
        assert!(health.consecutive_failures >= 2);
        assert!(health.last_error.is_some());
    }

    #[test]
    fn unknown_shard_ids_are_rejected() {
        let pool = ShardPool::new(vec![], PoolConfig::default());
        assert!(pool.is_empty());
        assert!(matches!(
            pool.with_conn(0, true, |_c| Ok::<(), WireError>(())).unwrap_err(),
            RouterError::UnknownShard(0)
        ));
        assert!(matches!(pool.addr(3).unwrap_err(), RouterError::UnknownShard(3)));
    }

    #[test]
    fn add_shard_allocates_sequential_ids() {
        let pool = ShardPool::new(vec![dead_addr()], PoolConfig::default());
        assert_eq!(pool.add_shard(dead_addr()), 1);
        assert_eq!(pool.add_shard(dead_addr()), 2);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn breaker_dwell_anchors_at_the_open_transition_and_replace_resets() {
        let config = PoolConfig {
            connect_attempts: 1,
            backoff: Duration::from_millis(1),
            cooldown: Duration::from_millis(1),
            max_idle: 4,
        };
        let pool = ShardPool::new(vec![dead_addr()], config);
        assert_eq!(pool.breaker_dwell(0).unwrap(), None);

        let _ = pool.probe(0);
        let first = pool.breaker_dwell(0).unwrap().expect("breaker open");
        // A repeat failure after the 1ms cooldown elapsed must NOT re-anchor
        // the dwell: it keeps growing from the first open.
        std::thread::sleep(Duration::from_millis(10));
        let _ = pool.probe(0);
        let second = pool.breaker_dwell(0).unwrap().expect("still open");
        assert!(second >= first + Duration::from_millis(10), "{second:?} vs {first:?}");

        // Re-pointing the shard at a live address clears the failure state…
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = BoundAddr::Tcp(listener.local_addr().unwrap());
        pool.replace_addr(0, live.clone()).unwrap();
        assert_eq!(pool.breaker_dwell(0).unwrap(), None);
        assert_eq!(pool.addr(0).unwrap(), live);
        // …and out-of-range ids stay typed.
        assert!(matches!(
            pool.replace_addr(7, dead_addr()).unwrap_err(),
            RouterError::UnknownShard(7)
        ));
        assert!(matches!(
            pool.breaker_dwell(7).unwrap_err(),
            RouterError::UnknownShard(7)
        ));
    }
}
