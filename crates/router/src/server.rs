//! The client-facing router frontend and its admin handle.
//!
//! ```text
//!  clients ──wire frames──▶ RouterServer ──peek deployment──▶ hash ring
//!                               │                                │
//!                               │   forward frame verbatim       ▼
//!                               └──────▶ ShardPool ───▶ owning WireServer
//!
//!  RouterHandle: cluster_stats (scatter-gather), migrate / add_shard /
//!  drain_shard (live explicit-memory migration + atomic ring remap), probe
//! ```
//!
//! The router speaks the existing wire frame protocol on its own address, so
//! every [`WireClient`] works against it unchanged. Requests are **peeked**,
//! not decoded: the leading deployment string selects the owning shard and
//! the frame bytes are forwarded untouched, which keeps the routing hop free
//! of tensor deserialization and makes bit-exactness across the hop trivial.
//!
//! Placement = the consistent-hash ring plus a per-deployment location map.
//! The map starts as the pure ring assignment and is updated by migrations;
//! a migration exports the deployment's explicit memory from the source
//! shard (the PR 2 snapshot codec, bit-exact), imports it on the target, and
//! remaps the deployment — all under the placement write lock, so no request
//! can route against a half-moved deployment.

use crate::error::RouterError;
use crate::pool::{PoolConfig, ShardHealth, ShardPool};
use crate::ring::HashRing;
use crate::tail::{spawn_cluster_tail, stream_cluster_tail, ClusterTail};
use ofscil_obs::{Event, EventKind, EventSink, Obs, ObsCursor, ObsQuery, ObsResult};
use ofscil_serve::{DeploymentStats, ServeError, ServeRequest, ServeResponse};
use ofscil_store::OpLog;
use ofscil_wire::codec::{decode_request, encode_response, WireRequest};
use ofscil_wire::{
    peek_request, read_frame_verbatim, BoundAddr, ShutdownOnDrop, VerbatimEvent, VerbatimFrame,
    WireBind, WireListener, WireResponse, WireStream, DEFAULT_MAX_PAYLOAD,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How often blocked router loops wake to poll the shutdown flag.
pub(crate) const POLL: Duration = Duration::from_millis(20);

/// Configuration of a [`RouterServer`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Where the router listens for clients.
    pub bind: WireBind,
    /// Backend shard addresses; index = shard id on the ring.
    pub shards: Vec<BoundAddr>,
    /// Deployments the router places and manages. Routing itself hashes any
    /// name, but migration, rebalancing and cluster statistics operate on
    /// this known set.
    pub deployments: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Maximum accepted frame payload in bytes.
    pub max_payload: usize,
    /// Connection-pool knobs (retries, backoff, cooldown).
    pub pool: PoolConfig,
    /// Path of the persistent placement journal. When set, every migration's
    /// placement override is appended as a checksummed record (the
    /// `ofscil_store` record codec), and a restarting router replays the
    /// journal to recover where migrated deployments live — the ring itself
    /// is deterministic from `shards`, so overrides are the only placement
    /// state worth persisting. `None` keeps placement in memory only.
    pub placement_log: Option<PathBuf>,
    /// Observability handle of the router itself. When set, migrations and
    /// circuit-breaker transitions are recorded as cluster events
    /// (`Migration`, `BreakerOpen`/`BreakerClose` under `shard:N`), and a
    /// scatter-gathered `ObsQuery` merges the router's own timeline into the
    /// per-shard results.
    pub obs: Option<Obs>,
}

impl RouterConfig {
    /// A router on an ephemeral loopback TCP port in front of `shards`.
    pub fn tcp_loopback(shards: Vec<BoundAddr>) -> Self {
        RouterConfig {
            bind: WireBind::Tcp("127.0.0.1:0".into()),
            shards,
            deployments: Vec::new(),
            vnodes: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
            pool: PoolConfig::default(),
            placement_log: None,
            obs: None,
        }
    }

    /// Sets the managed deployment set (builder style).
    #[must_use]
    pub fn with_deployments(mut self, deployments: &[&str]) -> Self {
        self.deployments = deployments.iter().map(|d| d.to_string()).collect();
        self
    }

    /// Sets the virtual-node count per shard (builder style).
    #[must_use]
    pub fn with_vnodes(mut self, vnodes: usize) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Sets the pool configuration (builder style).
    #[must_use]
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Persists the placement override map to a journal at `path` (builder
    /// style): migrations are appended as records, and a restarted router
    /// replays them so migrated deployments keep routing to their current
    /// shard.
    #[must_use]
    pub fn with_placement_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.placement_log = Some(path.into());
        self
    }

    /// Attaches an observability handle (builder style). Handles are cheap
    /// clones sharing one store, so the caller keeps its own copy to query.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::InvalidConfig`] when no shards are given or a
    /// knob is zero.
    pub fn validate(&self) -> Result<(), RouterError> {
        if self.shards.is_empty() {
            return Err(RouterError::InvalidConfig(
                "a router needs at least one backend shard".into(),
            ));
        }
        if self.vnodes == 0 {
            return Err(RouterError::InvalidConfig("vnodes must be at least 1".into()));
        }
        if self.max_payload == 0 {
            return Err(RouterError::InvalidConfig("max_payload must be positive".into()));
        }
        Ok(())
    }
}

/// Where every deployment currently lives: the pure ring assignment,
/// overridden by migrations.
#[derive(Debug)]
pub(crate) struct Placement {
    pub(crate) ring: HashRing,
    /// Current shard of every *known* deployment. Starts as the ring
    /// assignment; migrations update it. Names outside the map fall back to
    /// the ring hash.
    pub(crate) location: HashMap<String, usize>,
}

impl Placement {
    fn shard_for(&self, deployment: &str) -> Result<usize, RouterError> {
        if let Some(&shard) = self.location.get(deployment) {
            return Ok(shard);
        }
        self.ring.shard_for(deployment).ok_or(RouterError::EmptyRing)
    }
}

/// State shared between the accept loop, the admin handle and the detached
/// legs of a [`ClusterTail`] — hence behind an `Arc`, so tail legs can
/// outlive the connection thread that spawned them (they exit on their own
/// stop flag or on [`Shared::shutdown`]).
pub(crate) struct Shared {
    pub(crate) pool: ShardPool,
    pub(crate) placement: RwLock<Placement>,
    /// The persistent placement journal, when configured: one override
    /// record per migration, replayed at startup.
    pub(crate) placement_log: Option<Mutex<OpLog>>,
    /// The router's own observability handle, when configured.
    pub(crate) obs: Option<Obs>,
    /// Follower addresses advertised per shard id — the promotion
    /// candidates a control plane reads. Populated by `AdvertiseFollower`
    /// frames; cleared for a shard when its id is re-pointed at a new
    /// primary.
    pub(crate) followers: Mutex<HashMap<usize, Vec<String>>>,
    /// Raised when the routing session ends; every blocked loop (accept,
    /// connection reads, tail legs) polls it within [`POLL`].
    pub(crate) shutdown: AtomicBool,
}

/// Record kind of a placement override in the journal.
const PLACEMENT_KIND_OVERRIDE: u8 = 0x01;

/// Body of an override record: deployment string (u32 LE length + UTF-8
/// bytes) followed by the owning shard id (u64 LE).
fn encode_override(deployment: &str, shard: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(12 + deployment.len());
    body.extend_from_slice(&(deployment.len() as u32).to_le_bytes());
    body.extend_from_slice(deployment.as_bytes());
    body.extend_from_slice(&(shard as u64).to_le_bytes());
    body
}

/// Inverse of [`encode_override`]; `None` for malformed bodies (skipped on
/// replay — the journal's per-record checksum already filtered corruption,
/// so this only guards against foreign records).
fn decode_override(body: &[u8]) -> Option<(String, usize)> {
    if body.len() < 12 {
        return None;
    }
    let len = u32::from_le_bytes(body[0..4].try_into().ok()?) as usize;
    if body.len() != 12 + len {
        return None;
    }
    let name = std::str::from_utf8(&body[4..4 + len]).ok()?.to_string();
    let shard =
        usize::try_from(u64::from_le_bytes(body[4 + len..].try_into().ok()?)).ok()?;
    Some((name, shard))
}

/// Appends one override record to the journal, if one is configured.
fn journal_override(
    placement_log: Option<&Mutex<OpLog>>,
    deployment: &str,
    shard: usize,
) -> Result<(), RouterError> {
    if let Some(log) = placement_log {
        log.lock()
            .expect("placement log poisoned")
            .append(PLACEMENT_KIND_OVERRIDE, &encode_override(deployment, shard))
            .map_err(|e| RouterError::PlacementLog(e.to_string()))?;
    }
    Ok(())
}

/// One shard's slice of a scatter-gathered cluster statistics read.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// The shard's wire address.
    pub addr: BoundAddr,
    /// Statistics of every managed deployment this shard currently owns.
    pub deployments: Vec<DeploymentStats>,
    /// `false` when the shard could not be reached at all (dead process,
    /// open circuit breaker) — the gather then carries whatever the live
    /// shards returned, with this one explicitly marked instead of the
    /// whole read failing. A shard that answered but *refused* a request
    /// stays `true` (see [`ShardStats::error`]).
    pub reachable: bool,
    /// Set when the shard could not be queried; `deployments` is then
    /// whatever was gathered before the failure.
    pub error: Option<String>,
    /// Events ever appended to the shard's observability store. Zero when
    /// the shard has observability disabled (or could not be asked).
    pub obs_events: u64,
    /// Events the shard's bounded observability sink shed under overload —
    /// the load-shedding honesty counter, surfaced per shard so a control
    /// plane can see *which* member is dropping its own telemetry. Zero when
    /// observability is disabled.
    pub obs_dropped: u64,
    /// Median inference latency in microseconds, read from the shard's
    /// store-lifetime log-bucketed histogram (reported at the bucket's
    /// upper bound). Zero when observability is disabled or no inference
    /// was ever recorded.
    pub infer_p50_us: u64,
    /// 99th-percentile inference latency, from the same histogram.
    pub infer_p99_us: u64,
}

/// What one live migration did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated deployment.
    pub deployment: String,
    /// Shard the state was exported from.
    pub from: usize,
    /// Shard the state now lives on.
    pub to: usize,
    /// Replication sequence number the moved snapshot was taken at.
    pub seq: u64,
    /// Classes restored on the target.
    pub classes: u64,
}

/// Handle the body of [`RouterServer::run`] receives: the bound address plus
/// the cluster-admin operations (probing, scatter-gather statistics, live
/// migration, ring membership).
pub struct RouterHandle<'a> {
    addr: BoundAddr,
    shared: &'a Arc<Shared>,
}

impl RouterHandle<'_> {
    /// The router's client-facing address — point any
    /// [`WireClient`](ofscil_wire::WireClient) here.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// The shard currently serving `deployment`.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::EmptyRing`] when every shard was drained.
    pub fn shard_for(&self, deployment: &str) -> Result<usize, RouterError> {
        self.shared
            .placement
            .read()
            .expect("placement lock poisoned")
            .shard_for(deployment)
    }

    /// Actively probes every shard (one fresh connection each). A healthy
    /// probe clears a shard's failure cooldown early.
    pub fn probe(&self) -> Vec<ShardHealth> {
        self.shared.pool.probe_all()
    }

    /// How long a shard's circuit breaker has been open (`None` while
    /// closed) — see [`ShardPool::breaker_dwell`]. The hysteresis input a
    /// control plane compares against its promotion threshold.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn breaker_dwell(&self, shard: usize) -> Result<Option<Duration>, RouterError> {
        self.shared.pool.breaker_dwell(shard)
    }

    /// The wire address a shard id currently points at.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn shard_addr(&self, shard: usize) -> Result<BoundAddr, RouterError> {
        self.shared.pool.addr(shard)
    }

    /// Sorted names of the deployments the router manages (the placement
    /// map's keys — routing itself hashes any name).
    pub fn deployments(&self) -> Vec<String> {
        let placement = self.shared.placement.read().expect("placement lock poisoned");
        let mut names: Vec<String> = placement.location.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Follower addresses advertised for a shard (sorted), as received via
    /// `AdvertiseFollower` frames — the promotion candidates a control plane
    /// picks from when the shard's breaker stays open.
    pub fn followers(&self, shard: usize) -> Vec<String> {
        let followers = self.shared.followers.lock().expect("follower registry poisoned");
        let mut list = followers.get(&shard).cloned().unwrap_or_default();
        list.sort_unstable();
        list
    }

    /// Re-points a shard id at a new primary address — the failover edge
    /// after a follower promotion. The pool slot is replaced (idle
    /// connections to the dead primary dropped, breaker state reset so
    /// traffic tries the new address immediately) and the shard's advertised
    /// followers are cleared: the promoted one is the primary now and any
    /// siblings were tailing a corpse.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for out-of-range ids.
    pub fn replace_shard(&self, shard: usize, addr: BoundAddr) -> Result<(), RouterError> {
        self.shared.pool.replace_addr(shard, addr)?;
        self.shared
            .followers
            .lock()
            .expect("follower registry poisoned")
            .remove(&shard);
        Ok(())
    }

    /// Runs an observability query through the router's scatter-gather path
    /// in process — every ring shard plus the router's own store, merged
    /// time-ordered — without a socket round trip. What a co-located control
    /// plane watches the cluster through.
    pub fn obs_query(&self, query: &ofscil_obs::ObsQuery) -> ObsResult {
        obs_scatter_query(self.shared, query)
    }

    /// Opens a **cluster-wide live tail** in process: one subscription
    /// multiplexed into per-shard legs, advertised-follower legs and the
    /// router's own store, merged into a single stream of batches. Each leg
    /// keeps its own resume cursor and resubscribes when its shard dies or
    /// is re-pointed ([`RouterHandle::replace_shard`]), so the stream
    /// survives kill/restart gap-free. Pass `cursor` to resume a previous
    /// cluster tail; back-fill then starts strictly after it on every leg.
    ///
    /// This is the push path a co-located control plane maintains its
    /// trailing rates from, instead of issuing a windowed query every tick.
    pub fn cluster_tail(&self, query: &ObsQuery, cursor: Option<ObsCursor>) -> ClusterTail {
        spawn_cluster_tail(Arc::clone(self.shared), query.clone(), cursor)
    }

    /// Emits one event into the router's own observability store, if one is
    /// attached (no-op otherwise) — how a control plane stamps the actions
    /// it takes into the same timeline a routed `ObsQuery` reconstructs.
    pub fn observe(&self, event: Event) {
        if let Some(obs) = &self.shared.obs {
            obs.sink().emit(event);
        }
    }

    /// Scatter-gather statistics: every shard is queried concurrently for
    /// the managed deployments it currently owns, and the per-shard slices
    /// are gathered in shard order. An unreachable shard yields its error in
    /// [`ShardStats::error`] instead of failing the whole read.
    pub fn cluster_stats(&self) -> Vec<ShardStats> {
        // Snapshot the placement, then release the lock before any network
        // work: the scatter must not block routing.
        let mut by_shard: HashMap<usize, Vec<String>> = HashMap::new();
        let shard_ids = {
            let placement = self.shared.placement.read().expect("placement lock poisoned");
            for name in placement.location.keys() {
                if let Ok(shard) = placement.shard_for(name) {
                    by_shard.entry(shard).or_default().push(name.clone());
                }
            }
            placement.ring.shard_ids()
        };
        let pool = &self.shared.pool;
        let mut slices: Vec<ShardStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_ids
                .iter()
                .map(|&shard| {
                    let mut names = by_shard.remove(&shard).unwrap_or_default();
                    names.sort_unstable();
                    scope.spawn(move || gather_shard_stats(pool, shard, &names))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("stats gather thread panicked"))
                .collect()
        });
        slices.sort_by_key(|slice| slice.shard);
        slices
    }

    /// Live-migrates one deployment to `target`: exports the explicit memory
    /// from the current owner (bit-exact snapshot codec), imports it on the
    /// target, and atomically remaps the deployment — all under the
    /// placement write lock, so no request routes against a half-moved
    /// deployment.
    ///
    /// Holding the lock across the export/import round trips deliberately
    /// pauses **all** routing for the duration of the move (normally
    /// single-digit milliseconds — the explicit memory is kilobytes). This
    /// is what shrinks the lost-write window to requests already in flight
    /// when the export snapshot is cut; a hung target can stretch the pause,
    /// so migrate onto shards a [`probe`](RouterHandle::probe) reports
    /// healthy.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] for bad targets,
    /// [`RouterError::InvalidConfig`] when the deployment already lives on
    /// `target`, [`RouterError::ShardUnavailable`] when either side cannot
    /// be reached, and [`RouterError::Remote`] when a shard refused (e.g.
    /// the deployment is not registered on the target).
    pub fn migrate(
        &self,
        deployment: &str,
        target: usize,
    ) -> Result<MigrationReport, RouterError> {
        let mut placement =
            self.shared.placement.write().expect("placement lock poisoned");
        if target >= self.shared.pool.len() {
            return Err(RouterError::UnknownShard(target));
        }
        let from = placement.shard_for(deployment)?;
        if from == target {
            return Err(RouterError::InvalidConfig(format!(
                "deployment {deployment:?} already lives on shard {target}"
            )));
        }
        let report = migrate_locked(
            &self.shared.pool,
            &mut placement,
            self.shared.placement_log.as_ref(),
            self.shared.obs.as_ref().map(|o| o.sink()),
            deployment,
            from,
            target,
        )?;
        Ok(report)
    }

    /// Adds a backend shard and rebalances: every managed deployment whose
    /// ring assignment moved onto the new shard is live-migrated there.
    /// Returns the new shard id and the migrations performed.
    ///
    /// # Errors
    ///
    /// Returns a pool or shard error when a migration fails; deployments
    /// already moved stay moved (placement remains consistent), the rest
    /// keep their old shard.
    pub fn add_shard(
        &self,
        addr: BoundAddr,
    ) -> Result<(usize, Vec<MigrationReport>), RouterError> {
        let mut placement =
            self.shared.placement.write().expect("placement lock poisoned");
        let pool_id = self.shared.pool.add_shard(addr);
        let ring_id = placement.ring.add_shard();
        debug_assert_eq!(pool_id, ring_id, "pool and ring ids must stay aligned");
        let moves = rebalance_locked(
            &self.shared.pool,
            &mut placement,
            self.shared.placement_log.as_ref(),
            self.shared.obs.as_ref().map(|o| o.sink()),
        )?;
        Ok((ring_id, moves))
    }

    /// Drains a shard: removes it from the ring and live-migrates every
    /// managed deployment it owned to the deployment's new ring assignment.
    /// The drained shard keeps its id (never recycled) but receives no
    /// further traffic. Returns the migrations performed.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::UnknownShard`] when the id is neither on the
    /// ring nor hosting stranded deployments, [`RouterError::InvalidConfig`]
    /// when it is the last ring shard, and a pool or shard error when a
    /// migration fails. A partial failure leaves the ring removal standing
    /// and the unmigrated deployments routing to the drained shard;
    /// **retrying** `drain_shard` on the same id resumes moving whatever is
    /// still stranded.
    pub fn drain_shard(&self, shard: usize) -> Result<Vec<MigrationReport>, RouterError> {
        let mut placement =
            self.shared.placement.write().expect("placement lock poisoned");
        if placement.ring.contains(shard) {
            if placement.ring.len() <= 1 {
                return Err(RouterError::InvalidConfig(
                    "cannot drain the last shard on the ring".into(),
                ));
            }
            placement.ring.remove_shard(shard);
        } else if !placement.location.values().any(|&s| s == shard) {
            return Err(RouterError::UnknownShard(shard));
        }
        // A re-drain after a partially-failed attempt lands here with the
        // ring already updated; the rebalance moves what is still stranded.
        rebalance_locked(
            &self.shared.pool,
            &mut placement,
            self.shared.placement_log.as_ref(),
            self.shared.obs.as_ref().map(|o| o.sink()),
        )
    }
}

/// Queries one shard for the statistics of the given deployments.
///
/// A transport failure marks the slice `reachable: false` and returns the
/// partial gather instead of failing the whole cluster read; a shard that
/// answered with a refusal keeps `reachable: true` with the refusal in
/// `error`. A shard owning no managed deployments is actively probed —
/// otherwise a dead but empty shard would report as healthy purely because
/// nothing asked it anything.
fn gather_shard_stats(pool: &ShardPool, shard: usize, names: &[String]) -> ShardStats {
    let addr = pool.addr(shard).expect("shard id from the ring");
    let mut stats = ShardStats {
        shard,
        addr,
        deployments: Vec::new(),
        reachable: true,
        error: None,
        obs_events: 0,
        obs_dropped: 0,
        infer_p50_us: 0,
        infer_p99_us: 0,
    };
    if names.is_empty() {
        if let Ok(health) = pool.probe(shard) {
            if !health.healthy {
                stats.reachable = false;
                stats.error =
                    Some(health.last_error.unwrap_or_else(|| "probe failed".to_string()));
            }
        }
        gather_obs_counters(pool, shard, &mut stats);
        return stats;
    }
    for name in names {
        let result = pool.with_conn(shard, true, |conn| {
            conn.call(ServeRequest::Stats { deployment: name.clone() })
        });
        match result {
            Ok(ServeResponse::Stats(s)) => stats.deployments.push(s),
            Ok(other) => {
                stats.error = Some(format!("unexpected stats response: {other:?}"));
                break;
            }
            Err(RouterError::Remote(e)) => {
                stats.error = Some(e.to_string());
                break;
            }
            Err(e) => {
                stats.reachable = false;
                stats.error = Some(e.to_string());
                break;
            }
        }
    }
    if stats.reachable {
        gather_obs_counters(pool, shard, &mut stats);
    }
    stats
}

/// Fills a slice's observability counters with one cheap probe query: zero
/// event limit and an empty time window, so the shard answers only its
/// `appended`/`dropped` totals — plus the store-lifetime inference latency
/// histogram riding on every result (the kind filter scopes it to `Infer`)
/// — without scanning a single chunk. A shard without observability (typed
/// refusal) or out of reach keeps the zeros — the counters are telemetry
/// about telemetry, never worth failing a cluster read over.
fn gather_obs_counters(pool: &ShardPool, shard: usize, stats: &mut ShardStats) {
    let probe = ofscil_obs::ObsQuery::all()
        .with_kinds(&[EventKind::Infer])
        .with_limit(0)
        .with_time_range(u64::MAX, u64::MAX);
    if let Ok(result) = pool.with_conn(shard, true, |conn| conn.obs_query(&probe)) {
        stats.obs_events = result.appended;
        stats.obs_dropped = result.dropped;
        if result.latency_hist.total() > 0 {
            stats.infer_p50_us = result.latency_hist.p50_us();
            stats.infer_p99_us = result.latency_hist.p99_us();
        }
    }
}

/// Export → import → remap, with the placement write lock already held. The
/// remap is journaled before it is applied, so a router restarted after the
/// append routes the deployment to its new shard (an append that lands
/// without the in-memory remap is re-applied identically on replay).
fn migrate_locked(
    pool: &ShardPool,
    placement: &mut Placement,
    placement_log: Option<&Mutex<OpLog>>,
    obs: Option<&EventSink>,
    deployment: &str,
    from: usize,
    to: usize,
) -> Result<MigrationReport, RouterError> {
    let started = obs.map(|_| std::time::Instant::now());
    let export = pool.with_conn(from, true, |conn| conn.export(deployment))?;
    // Import mutates the target: never replayed on an ambiguous failure.
    let classes = pool.with_conn(to, false, |conn| conn.import(&export))?;
    journal_override(placement_log, deployment, to)?;
    placement.location.insert(deployment.to_string(), to);
    if let (Some(obs), Some(started)) = (obs, started) {
        // The cluster event that later explains a tenant's timeline split:
        // its seq is the snapshot the move was cut at, its latency the
        // routing pause the migration imposed.
        obs.emit(
            Event::new(EventKind::Migration, deployment)
                .with_seq(export.seq)
                .with_latency_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64),
        );
    }
    Ok(MigrationReport {
        deployment: deployment.to_string(),
        from,
        to,
        seq: export.seq,
        classes,
    })
}

/// Moves every managed deployment whose current location disagrees with its
/// ring assignment. Used by both shard addition (keys move *onto* the new
/// shard) and draining (keys move *off* the removed shard).
fn rebalance_locked(
    pool: &ShardPool,
    placement: &mut Placement,
    placement_log: Option<&Mutex<OpLog>>,
    obs: Option<&EventSink>,
) -> Result<Vec<MigrationReport>, RouterError> {
    let mut names: Vec<String> = placement.location.keys().cloned().collect();
    names.sort_unstable();
    let mut moves = Vec::new();
    for name in names {
        let current = placement.location[&name];
        let target = placement.ring.shard_for(&name).ok_or(RouterError::EmptyRing)?;
        if target != current {
            moves.push(migrate_locked(
                pool, placement, placement_log, obs, &name, current, target,
            )?);
        }
    }
    Ok(moves)
}

/// The client-facing sharding router: binds a wire-frame listener, routes
/// for exactly the duration of the body, then tears down deterministically.
#[derive(Debug)]
pub struct RouterServer;

impl RouterServer {
    /// Runs a routing session. The listener, the shard pools and every
    /// connection thread live for exactly the duration of `body`, which
    /// receives the [`RouterHandle`] carrying the bound address and the
    /// admin operations.
    ///
    /// # Errors
    ///
    /// Returns [`RouterError::InvalidConfig`] for bad configurations and a
    /// wire error when binding fails.
    pub fn run<T, F>(config: &RouterConfig, body: F) -> Result<T, RouterError>
    where
        F: for<'a> FnOnce(&RouterHandle<'a>) -> T,
    {
        config.validate()?;
        let ring = HashRing::new(config.shards.len(), config.vnodes);
        let mut location: HashMap<String, usize> = config
            .deployments
            .iter()
            .map(|name| {
                let shard = ring.shard_for(name).expect("validated non-empty ring");
                (name.clone(), shard)
            })
            .collect();
        // Replay the placement journal over the pure ring assignment: each
        // surviving override record re-points a migrated deployment at the
        // shard that actually holds its explicit memory. Overrides naming
        // shards outside the configured set are stale and skipped.
        let placement_log = match &config.placement_log {
            Some(path) => {
                let (log, records) =
                    OpLog::open(path).map_err(|e| RouterError::PlacementLog(e.to_string()))?;
                for (kind, body) in records {
                    if kind != PLACEMENT_KIND_OVERRIDE {
                        continue;
                    }
                    if let Some((name, shard)) = decode_override(&body) {
                        if shard < config.shards.len() {
                            location.insert(name, shard);
                        }
                    }
                }
                Some(Mutex::new(log))
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            pool: ShardPool::new_observed(
                config.shards.clone(),
                config.pool.clone(),
                config.obs.as_ref().map(|o| o.sink().clone()),
            ),
            placement: RwLock::new(Placement { ring, location }),
            placement_log,
            obs: config.obs.clone(),
            followers: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });

        let (listener, addr) = WireListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;

        let value = std::thread::scope(|scope| {
            let shared_ref = &shared;
            let max_payload = config.max_payload;
            scope.spawn(move || {
                accept_loop(scope, &listener, shared_ref, max_payload);
            });

            let handle = RouterHandle { addr: addr.clone(), shared: &shared };
            let _shutdown_on_exit = ShutdownOnDrop::new(&shared.shutdown);
            body(&handle)
            // The guard raises the flag on return *and* on panic; the scope
            // then joins the accept loop and every connection thread, all of
            // which poll the flag within `POLL`. Detached cluster-tail legs
            // also poll it, but hold their own `Arc` and need no join.
        });

        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(value)
    }
}

/// Accepts client connections until shutdown, one scoped thread each.
fn accept_loop<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    listener: &WireListener,
    shared: &'scope Arc<Shared>,
    max_payload: usize,
) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                if stream.configure_for_server(POLL).is_err() {
                    continue;
                }
                let shared = Arc::clone(shared);
                scope.spawn(move || {
                    serve_connection(stream, &shared, max_payload);
                });
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept failures must not kill the listener.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one client connection: read a frame, pick the shard, forward the
/// frame verbatim, relay the answer. A cluster-tail subscription instead
/// hands the connection off into an open-ended merged stream.
fn serve_connection(mut stream: WireStream, shared: &Arc<Shared>, max_payload: usize) {
    loop {
        let frame =
            match read_frame_verbatim(&mut stream, max_payload, Some(&shared.shutdown)) {
                Ok(VerbatimEvent::Frame(frame)) => frame,
                Ok(VerbatimEvent::Eof | VerbatimEvent::Shutdown) | Err(_) => return,
            };
        // An observability subscription turns the connection into a stream
        // of merged tail batches — it never comes back to the one-reply
        // routing cycle, so it is dispatched before `route_one`.
        if let Ok(peek) = peek_request(frame.kind, frame.payload()) {
            if peek.obs_tail {
                stream_cluster_tail(stream, shared, &frame);
                return;
            }
        }
        let reply = route_one(shared, &frame);
        if stream.write_all(&reply).is_err() {
            return;
        }
    }
}

/// Routes a single request frame and returns the reply frame bytes. Both
/// directions relay the already-validated frame bytes untouched — no
/// payload copy, no checksum recomputation on the hot path.
fn route_one(shared: &Shared, frame: &VerbatimFrame) -> Vec<u8> {
    let peek = match peek_request(frame.kind, frame.payload()) {
        Ok(peek) => peek,
        Err(e) => {
            return encode_response(&WireResponse::Error(ServeError::InvalidRequest(
                format!("unroutable request: {e}"),
            )));
        }
    };
    if peek.scatter {
        // An observability query is the one request that is *not* owned by a
        // single shard: a deployment's timeline may span several after a
        // migration. Fan it out and stitch the answers back together.
        return obs_scatter(shared, frame);
    }
    if peek.advertise {
        // A follower announcing itself is addressed to the router, not to
        // any shard: record the candidate and answer directly.
        return register_follower(shared, frame);
    }
    let shard = {
        let placement = shared.placement.read().expect("placement lock poisoned");
        match placement.shard_for(&peek.deployment) {
            Ok(shard) => shard,
            Err(e) => return encode_response(&WireResponse::Error(e.to_serve_error())),
        }
    };
    if peek.streaming {
        // A subscription turns the connection into an open-ended stream; the
        // router's pooled request/response connections cannot carry that.
        // Point the subscriber at the owning shard instead.
        let addr = shared
            .pool
            .addr(shard)
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        return encode_response(&WireResponse::Error(ServeError::InvalidRequest(format!(
            "replication subscriptions are not proxied; subscribe to the owning shard \
             {shard} directly at {addr}"
        ))));
    }
    // Reads may retry once on a fresh connection when a pooled one went
    // stale; writes must not be replayed (the shard may have applied them).
    match shared.pool.with_conn(shard, !peek.write, |conn| conn.forward_frame(&frame.bytes)) {
        Ok(reply) => reply,
        Err(e) => encode_response(&WireResponse::Error(e.to_serve_error())),
    }
}

/// Records a follower advertisement in the router's follower registry: the
/// advertised upstream address is matched against the shard table (by its
/// canonical `BoundAddr` display form) and the follower's address stored
/// under that shard id, deduplicated. An upstream the router does not front
/// is a typed refusal — the follower was pointed at the wrong cluster.
fn register_follower(shared: &Shared, frame: &VerbatimFrame) -> Vec<u8> {
    let (upstream, follower) = match decode_request(frame.kind, frame.payload()) {
        Ok(WireRequest::AdvertiseFollower { upstream, follower }) => (upstream, follower),
        _ => {
            return encode_response(&WireResponse::Error(ServeError::InvalidRequest(
                "undecodable follower advertisement".into(),
            )));
        }
    };
    let shard = (0..shared.pool.len()).find(|&shard| {
        shared
            .pool
            .addr(shard)
            .map(|addr| addr.to_string() == upstream)
            .unwrap_or(false)
    });
    let Some(shard) = shard else {
        return encode_response(&WireResponse::Error(ServeError::InvalidRequest(format!(
            "advertised upstream {upstream:?} is not a shard of this router"
        ))));
    };
    let mut followers = shared.followers.lock().expect("follower registry poisoned");
    let entry = followers.entry(shard).or_default();
    if !entry.contains(&follower) {
        entry.push(follower);
    }
    encode_response(&WireResponse::Advertised { registered: entry.len() as u64 })
}

/// Scatter-gathers one observability query across every ring shard and the
/// router's own event store, merging the slices into a single time-ordered
/// timeline. Shards that cannot be reached (or have observability disabled)
/// are counted in [`ObsResult::shards_err`] instead of failing the query —
/// a partially-observable cluster still answers with what it has.
fn obs_scatter(shared: &Shared, frame: &VerbatimFrame) -> Vec<u8> {
    let query = match decode_request(frame.kind, frame.payload()) {
        Ok(WireRequest::ObsQuery(query)) => query,
        _ => {
            return encode_response(&WireResponse::Error(ServeError::InvalidRequest(
                "undecodable observability query".into(),
            )));
        }
    };
    encode_response(&WireResponse::Obs(Box::new(obs_scatter_query(shared, &query))))
}

/// The scatter itself, on a decoded query — shared between the wire path
/// above and [`RouterHandle::obs_query`] (the in-process path a co-located
/// control plane reads the cluster through without a socket round trip).
///
/// Beyond the ring shards, every *advertised follower* gets its own leg: a
/// replica runs its own event store (replication applies, resyncs), and
/// those rows belong in the same merged timeline — replication lag is
/// invisible if only primaries are asked. Follower addresses arrive as
/// display strings over `AdvertiseFollower`, so each leg re-parses with
/// [`BoundAddr::parse`] and dials a fresh connection (followers are not
/// ring members and have no pooled slot); an unparsable or unreachable
/// follower counts in [`ObsResult::shards_err`] like a dead shard.
fn obs_scatter_query(shared: &Shared, query: &ofscil_obs::ObsQuery) -> ObsResult {
    let shard_ids = {
        let placement = shared.placement.read().expect("placement lock poisoned");
        placement.ring.shard_ids()
    };
    let follower_addrs: Vec<String> = {
        let followers = shared.followers.lock().expect("follower registry poisoned");
        let mut list: Vec<String> = followers.values().flatten().cloned().collect();
        list.sort_unstable();
        list.dedup();
        list
    };
    let pool = &shared.pool;
    let results: Vec<Result<ObsResult, RouterError>> = std::thread::scope(|scope| {
        let shard_handles: Vec<_> = shard_ids
            .iter()
            .map(|&shard| {
                scope.spawn(move || {
                    pool.with_conn(shard, true, |conn| conn.obs_query(query))
                })
            })
            .collect();
        let follower_handles: Vec<_> = follower_addrs
            .iter()
            .map(|advertised| {
                scope.spawn(move || query_follower_obs(advertised, query))
            })
            .collect();
        shard_handles
            .into_iter()
            .chain(follower_handles)
            .map(|handle| handle.join().expect("obs scatter thread panicked"))
            .collect()
    });
    let mut shards_ok: u32 = 0;
    let mut shards_err: u32 = 0;
    let mut parts = Vec::new();
    for result in results {
        match result {
            Ok(part) => {
                shards_ok += 1;
                parts.push(part);
            }
            Err(_) => shards_err += 1,
        }
    }
    if let Some(obs) = &shared.obs {
        // The router's own timeline carries the cluster events (migrations,
        // breaker transitions, control-plane decisions) that explain the
        // per-shard slices. Its source counters are zeroed so only real
        // shards count in the totals below.
        let mut local = obs.query(query);
        local.shards_ok = 0;
        local.shards_err = 0;
        parts.push(local);
    }
    let mut merged = ObsResult::merge(parts, query.limit as usize);
    merged.shards_ok = shards_ok;
    merged.shards_err = shards_err;
    merged
}

/// One follower leg of the observability scatter: re-parse the advertised
/// display string, dial a fresh connection (followers have no pooled slot),
/// and run the query.
fn query_follower_obs(
    advertised: &str,
    query: &ofscil_obs::ObsQuery,
) -> Result<ObsResult, RouterError> {
    let addr = BoundAddr::parse(advertised).ok_or_else(|| {
        RouterError::InvalidConfig(format!("unparsable follower address {advertised:?}"))
    })?;
    let mut client = ofscil_wire::WireClient::connect(&addr)?;
    Ok(client.obs_query(query)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_zero_knobs() {
        assert!(matches!(
            RouterConfig::tcp_loopback(vec![]).validate().unwrap_err(),
            RouterError::InvalidConfig(_)
        ));
        let addr = BoundAddr::Tcp("127.0.0.1:1".parse().unwrap());
        let config = RouterConfig::tcp_loopback(vec![addr.clone()]).with_vnodes(0);
        assert!(config.validate().is_err());
        let mut config = RouterConfig::tcp_loopback(vec![addr]);
        config.max_payload = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn placement_override_records_roundtrip() {
        let body = encode_override("tenant-a", 3);
        assert_eq!(decode_override(&body), Some(("tenant-a".into(), 3)));
        assert!(decode_override(&body[..body.len() - 1]).is_none());
        assert!(decode_override(&[]).is_none());
        let empty = encode_override("", 0);
        assert_eq!(decode_override(&empty), Some((String::new(), 0)));
    }

    #[test]
    fn placement_journal_replays_overrides_across_restarts() {
        let mut path = std::env::temp_dir();
        path.push(format!("ofscil-placement-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let (mut log, _) = OpLog::open(&path).unwrap();
            log.append(PLACEMENT_KIND_OVERRIDE, &encode_override("tenant-a", 2)).unwrap();
            log.append(PLACEMENT_KIND_OVERRIDE, &encode_override("tenant-a", 1)).unwrap();
            // Stale override pointing past the configured shard set.
            log.append(PLACEMENT_KIND_OVERRIDE, &encode_override("tenant-b", 99)).unwrap();
        }
        // Replay exactly as RouterServer::run does.
        let (_, records) = OpLog::open(&path).unwrap();
        let shards = 3usize;
        let mut location: HashMap<String, usize> = HashMap::new();
        for (kind, body) in records {
            if kind != PLACEMENT_KIND_OVERRIDE {
                continue;
            }
            if let Some((name, shard)) = decode_override(&body) {
                if shard < shards {
                    location.insert(name, shard);
                }
            }
        }
        // Last override wins; out-of-range shards are skipped.
        assert_eq!(location.get("tenant-a"), Some(&1));
        assert_eq!(location.get("tenant-b"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn placement_prefers_migrated_locations_over_the_ring() {
        let ring = HashRing::new(3, 64);
        let home = ring.shard_for("tenant-a").unwrap();
        let elsewhere = (home + 1) % 3;
        let mut placement = Placement { ring, location: HashMap::new() };
        assert_eq!(placement.shard_for("tenant-a").unwrap(), home);
        placement.location.insert("tenant-a".into(), elsewhere);
        assert_eq!(placement.shard_for("tenant-a").unwrap(), elsewhere);
        // Unknown names still hash onto the ring.
        assert!(placement.shard_for("never-registered").is_ok());
    }
}
