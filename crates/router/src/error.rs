//! Error type of the routing layer.

use ofscil_serve::ServeError;
use ofscil_wire::WireError;
use std::error::Error;
use std::fmt;

/// Error returned by the router: placement, pool and shard-side failures.
#[derive(Debug)]
pub enum RouterError {
    /// The shard owning the request cannot be reached (connect refused after
    /// bounded retries, connection died mid-request, or the shard is inside
    /// its failure cooldown). This is the router-local form of the typed
    /// [`ServeError::ShardUnavailable`] a wire client receives.
    ShardUnavailable {
        /// Shard id on the ring.
        shard: usize,
        /// The shard's address, for operators.
        addr: String,
        /// What failed.
        detail: String,
    },
    /// No shard with the given id exists.
    UnknownShard(usize),
    /// The ring has no shards left to place deployments on.
    EmptyRing,
    /// The router configuration is inconsistent.
    InvalidConfig(String),
    /// A shard answered an admin operation (export, import, stats) with a
    /// serve-side refusal.
    Remote(ServeError),
    /// A wire-level failure outside the per-shard pool (e.g. binding the
    /// client-facing listener).
    Wire(WireError),
    /// Reading or appending the persistent placement journal failed. The
    /// in-memory placement stays consistent; only its durability is at risk
    /// until the journal recovers.
    PlacementLog(String),
}

impl RouterError {
    /// The typed serve error a wire client should receive for this failure —
    /// `ShardUnavailable` survives structurally, everything else folds into
    /// its display form.
    pub fn to_serve_error(&self) -> ServeError {
        match self {
            RouterError::ShardUnavailable { shard, addr, detail } => {
                ServeError::ShardUnavailable {
                    shard: format!("{shard} ({addr})"),
                    detail: detail.clone(),
                }
            }
            RouterError::Remote(error) => ServeError::Execution(error.to_string()),
            other => ServeError::Execution(other.to_string()),
        }
    }
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::ShardUnavailable { shard, addr, detail } => {
                write!(f, "shard {shard} ({addr}) is unavailable: {detail}")
            }
            RouterError::UnknownShard(shard) => write!(f, "no shard with id {shard}"),
            RouterError::EmptyRing => write!(f, "the hash ring has no shards"),
            RouterError::InvalidConfig(msg) => {
                write!(f, "invalid router configuration: {msg}")
            }
            RouterError::Remote(e) => write!(f, "shard-side error: {e}"),
            RouterError::Wire(e) => write!(f, "wire error: {e}"),
            RouterError::PlacementLog(msg) => {
                write!(f, "placement journal error: {msg}")
            }
        }
    }
}

impl Error for RouterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouterError::Remote(e) => Some(e),
            RouterError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for RouterError {
    fn from(e: WireError) -> Self {
        RouterError::Wire(e)
    }
}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Wire(WireError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_sources_and_serve_mapping() {
        let e = RouterError::ShardUnavailable {
            shard: 2,
            addr: "tcp://127.0.0.1:9".into(),
            detail: "connection refused".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.source().is_none());
        match e.to_serve_error() {
            ServeError::ShardUnavailable { shard, detail } => {
                assert!(shard.contains("tcp://127.0.0.1:9"));
                assert_eq!(detail, "connection refused");
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = RouterError::Remote(ServeError::UnknownDeployment("t".into()));
        assert!(e.source().is_some());
        assert!(matches!(e.to_serve_error(), ServeError::Execution(_)));
        let e: RouterError = std::io::Error::from(std::io::ErrorKind::TimedOut).into();
        assert!(matches!(e, RouterError::Wire(_)));
        assert!(RouterError::EmptyRing.to_string().contains("no shards"));
        assert!(RouterError::UnknownShard(7).to_string().contains('7'));
    }
}
