//! Backend-shard harness: run a [`WireServer`] on its own thread with a
//! stop switch.
//!
//! The wire and router layers are process-agnostic — everything crosses real
//! sockets — so tests, benches and examples stand a "backend process" up as
//! a dedicated thread owning its own [`LearnerRegistry`] and socket. The
//! same topology runs with actual OS processes by starting one
//! `WireServer` per process; this harness exists so a single binary can
//! spin a whole sharded cluster up and tear members down (including
//! mid-run, to exercise failover).

use ofscil_obs::Obs;
use ofscil_serve::LearnerRegistry;
use ofscil_store::Store;
use ofscil_wire::{BoundAddr, WireConfig, WireError, WireServer};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// One backend shard: a [`WireServer`] over its own registry, running on a
/// dedicated thread until stopped (or dropped).
#[derive(Debug)]
pub struct ShardProcess {
    addr: BoundAddr,
    stop: Option<mpsc::Sender<()>>,
    join: Option<JoinHandle<Result<(), WireError>>>,
}

impl ShardProcess {
    /// Boots a shard: binds the server, reports readiness, and keeps serving
    /// until [`ShardProcess::stop`] (or drop). The registry is shared —
    /// callers keep their own `Arc` clone to inspect or pre-load state.
    ///
    /// # Errors
    ///
    /// Returns the server's bind error when the shard never came up.
    pub fn spawn(
        registry: Arc<LearnerRegistry>,
        config: WireConfig,
    ) -> Result<Self, WireError> {
        ShardProcess::spawn_observed(registry, config, None)
    }

    /// Like [`ShardProcess::spawn`], but with an observability handle: the
    /// shard's server records its serving events into the handle's store and
    /// answers `ObsQuery` requests from it. Handles are cheap clones over
    /// one shared store — the caller keeps its own to query directly.
    ///
    /// # Errors
    ///
    /// Returns the server's bind error when the shard never came up.
    pub fn spawn_observed(
        registry: Arc<LearnerRegistry>,
        config: WireConfig,
        obs: Option<Obs>,
    ) -> Result<Self, WireError> {
        ShardProcess::spawn_durable_observed(registry, config, None, obs)
    }

    /// Like [`ShardProcess::spawn_observed`], but additionally backed by a
    /// durable [`Store`]: commits are journaled, and with an observability
    /// handle attached the server also opens the store's obs spill log —
    /// rehydrating any previously spilled timeline before serving, writing
    /// sealed chunks through while serving. Kill this shard (drop or
    /// [`ShardProcess::stop`]) and respawn it over the same store directory
    /// with a *fresh* obs handle, and its timeline picks up where it left
    /// off — the restart-survival path `examples/timeline.rs` demonstrates.
    ///
    /// The store is owned by the shard's thread for the server's lifetime,
    /// mirroring a real process owning its data directory. Call
    /// [`Store::bootstrap`](ofscil_store::Store::bootstrap) before handing
    /// the store in, exactly as with `WireServer::run_with_store`.
    ///
    /// # Errors
    ///
    /// Returns the server's bind (or spill-open) error when the shard never
    /// came up.
    pub fn spawn_durable_observed(
        registry: Arc<LearnerRegistry>,
        config: WireConfig,
        store: Option<Store>,
        obs: Option<Obs>,
    ) -> Result<Self, WireError> {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let join = std::thread::spawn(move || {
            WireServer::run_observed(&registry, &config, store.as_ref(), obs.as_ref(), |handle| {
                let _ = addr_tx.send(handle.addr().clone());
                // Blocks until `stop` fires or the ShardProcess is dropped
                // (sender gone ⇒ recv errors ⇒ the server tears down).
                let _ = stop_rx.recv();
            })
        });
        match addr_rx.recv() {
            Ok(addr) => Ok(ShardProcess { addr, stop: Some(stop_tx), join: Some(join) }),
            // The server never reached its body; join it for the bind error.
            Err(_) => match join.join() {
                Ok(Err(error)) => Err(error),
                Ok(Ok(())) => Err(WireError::Protocol(
                    "shard server exited before reporting its address".into(),
                )),
                Err(_) => Err(WireError::Protocol("shard server thread panicked".into())),
            },
        }
    }

    /// The shard's bound wire address.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Shuts the shard down and waits for its server to finish draining.
    /// After this returns, the address refuses connections — the way a test
    /// "kills" a shard to exercise `ShardUnavailable` failover.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // Either the explicit signal or dropping the sender unblocks the
        // server body.
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
            drop(stop);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_wire::WireClient;

    #[test]
    fn shard_boots_serves_and_stops() {
        let registry = Arc::new(LearnerRegistry::new());
        let shard =
            ShardProcess::spawn(Arc::clone(&registry), WireConfig::tcp_loopback()).unwrap();
        let addr = shard.addr().clone();
        // Reachable while up...
        let mut client = WireClient::connect(&addr).unwrap();
        let err = client
            .call(ofscil_serve::ServeRequest::Stats { deployment: "ghost".into() })
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::Remote(ofscil_serve::ServeError::UnknownDeployment(_))
        ));
        shard.stop();
        // ...and refusing connections after stop.
        assert!(WireClient::connect(&addr).is_err());
    }
}
