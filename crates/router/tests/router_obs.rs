//! Observability through the router: partial cluster statistics when a
//! shard is killed mid-run, and a scatter-gathered `ObsQuery` stitching one
//! deployment's timeline back together across a live migration.

use ofscil_core::OFscilModel;
use ofscil_nn::models::BackboneKind;
use ofscil_obs::{EventKind, Obs, ObsConfig, ObsQuery};
use ofscil_router::{harness::ShardProcess, PoolConfig, RouterConfig, RouterServer};
use ofscil_serve::{DeploymentSpec, LearnerRegistry, ServeRequest};
use ofscil_tensor::SeedRng;
use ofscil_wire::{WireClient, WireConfig};
use std::sync::Arc;
use std::time::Duration;

/// A registry with the given deployments registered over the micro backbone.
fn registry_with(names: &[&str], seed: u64) -> Arc<LearnerRegistry> {
    let registry = Arc::new(LearnerRegistry::new());
    let mut rng = SeedRng::new(seed);
    for name in names {
        registry
            .register(
                DeploymentSpec::new(name, (8, 8)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
    }
    registry
}

/// A pool that fails fast, so the killed-shard path stays quick.
fn fast_pool() -> PoolConfig {
    PoolConfig {
        connect_attempts: 1,
        backoff: Duration::from_millis(1),
        cooldown: Duration::from_millis(200),
        max_idle: 4,
    }
}

#[test]
fn cluster_stats_marks_a_killed_shard_instead_of_failing() {
    let names: Vec<String> = (0..6).map(|i| format!("tenant-{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let shard0 =
        ShardProcess::spawn(registry_with(&name_refs, 1), WireConfig::tcp_loopback()).unwrap();
    let shard1 =
        ShardProcess::spawn(registry_with(&name_refs, 2), WireConfig::tcp_loopback()).unwrap();
    let config =
        RouterConfig::tcp_loopback(vec![shard0.addr().clone(), shard1.addr().clone()])
            .with_deployments(&name_refs)
            .with_pool(fast_pool());
    RouterServer::run(&config, move |router| {
        // Both shards up: every slice is reachable and error-free.
        let healthy = router.cluster_stats();
        assert_eq!(healthy.len(), 2);
        for slice in &healthy {
            assert!(slice.reachable, "shard {} unexpectedly unreachable", slice.shard);
            assert!(slice.error.is_none(), "{:?}", slice.error);
        }
        assert_eq!(
            healthy.iter().map(|s| s.deployments.len()).sum::<usize>(),
            names.len(),
            "every managed deployment reports stats from its owning shard"
        );

        // Kill shard 1. The gather must degrade to partial results — the
        // dead shard explicitly marked, the live shard still answering —
        // instead of the whole read collapsing into ShardUnavailable.
        shard1.stop();
        let partial = router.cluster_stats();
        assert_eq!(partial.len(), 2);
        let dead = &partial[1];
        assert!(!dead.reachable, "killed shard must be marked unreachable");
        assert!(dead.error.is_some());
        let live = &partial[0];
        assert!(live.reachable);
        assert!(live.error.is_none(), "{:?}", live.error);
        assert_eq!(
            live.deployments.len(),
            healthy[0].deployments.len(),
            "the live shard's slice is unaffected by its neighbour dying"
        );
        drop(shard0);
    })
    .unwrap();
}

#[test]
fn routed_obs_query_stitches_a_timeline_across_a_migration() {
    let obs0 = Obs::new(ObsConfig::default());
    let obs1 = Obs::new(ObsConfig::default());
    let shard0 = ShardProcess::spawn_observed(
        registry_with(&["t"], 1),
        WireConfig::tcp_loopback(),
        Some(obs0.clone()),
    )
    .unwrap();
    let shard1 = ShardProcess::spawn_observed(
        registry_with(&["t"], 2),
        WireConfig::tcp_loopback(),
        Some(obs1.clone()),
    )
    .unwrap();
    let router_obs = Obs::new(ObsConfig::default());
    let config =
        RouterConfig::tcp_loopback(vec![shard0.addr().clone(), shard1.addr().clone()])
            .with_deployments(&["t"])
            .with_obs(router_obs.clone());
    RouterServer::run(&config, |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        let traffic = |client: &mut WireClient, step: usize| {
            client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: ofscil_serve::traffic::support_batch(
                        8,
                        &[2 * step, 2 * step + 1],
                        3,
                    ),
                })
                .unwrap();
            client
                .call(ServeRequest::Infer {
                    deployment: "t".into(),
                    image: ofscil_serve::traffic::class_image(8, 0, 0.01),
                })
                .unwrap();
        };
        traffic(&mut client, 0);
        traffic(&mut client, 1);

        let home = router.shard_for("t").unwrap();
        let report = router.migrate("t", 1 - home).unwrap();
        traffic(&mut client, 2);
        traffic(&mut client, 3);

        // One routed query reconstructs the whole trajectory: the serving
        // events live on two different shards, the migration marker on the
        // router, and the merge re-orders them into a single timeline.
        let result = client.obs_query(&ObsQuery::deployment("t")).unwrap();
        assert_eq!((result.shards_ok, result.shards_err), (2, 0));
        assert_eq!(result.dropped, 0);
        let count =
            |kind: EventKind| result.events.iter().filter(|e| e.kind == kind).count();
        assert_eq!(count(EventKind::Learn), 4);
        assert_eq!(count(EventKind::Infer), 4);
        assert_eq!(count(EventKind::Migration), 1);
        let migration = result
            .events
            .iter()
            .find(|e| e.kind == EventKind::Migration)
            .expect("migration event present");
        assert_eq!(migration.seq, report.seq);
        assert!(
            result.events.windows(2).all(|w| w[0].order_key() <= w[1].order_key()),
            "merged timeline is time-ordered"
        );
        // The learns really are split across the two shard stores.
        let learns_on = |obs: &Obs| {
            obs.query(&ObsQuery::deployment("t").with_kinds(&[EventKind::Learn]))
                .aggregates
                .matched
        };
        assert_eq!(learns_on(&obs0) + learns_on(&obs1), 4);
        assert!(learns_on(&obs0) >= 1 && learns_on(&obs1) >= 1);
    })
    .unwrap();
}
