//! Minimal router loopback: one shard, one deployment, stats + learn +
//! infer through the router — the smallest end-to-end routing path.

use ofscil_core::OFscilModel;
use ofscil_nn::models::BackboneKind;
use ofscil_router::{harness::ShardProcess, RouterConfig, RouterServer};
use ofscil_serve::{DeploymentSpec, LearnerRegistry, ServeRequest, ServeResponse};
use ofscil_tensor::SeedRng;
use ofscil_wire::{WireClient, WireConfig};
use std::sync::Arc;

#[test]
fn single_shard_roundtrip() {
    let registry = Arc::new(LearnerRegistry::new());
    let mut rng = SeedRng::new(3);
    registry
        .register(
            DeploymentSpec::new("t", (8, 8)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )
        .unwrap();
    let shard = ShardProcess::spawn(Arc::clone(&registry), WireConfig::tcp_loopback()).unwrap();
    let config = RouterConfig::tcp_loopback(vec![shard.addr().clone()]).with_deployments(&["t"]);
    RouterServer::run(&config, |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        match client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap() {
            ServeResponse::Stats(stats) => assert_eq!(stats.classes, 0),
            other => panic!("unexpected {other:?}"),
        }
        client
            .call(ServeRequest::LearnOnline {
                deployment: "t".into(),
                batch: ofscil_serve::traffic::support_batch(8, &[0, 1], 3),
            })
            .unwrap();
        client
            .call(ServeRequest::Infer {
                deployment: "t".into(),
                image: ofscil_serve::traffic::class_image(8, 0, 0.01),
            })
            .unwrap();
    })
    .unwrap();
}
