//! End-to-end self-healing: kill a shard under a live router and watch the
//! controller promote its advertised follower with **zero manual calls** —
//! then reconstruct the whole recovery from one routed observability query.

use ofscil_core::OFscilModel;
use ofscil_ctrl::{ControlAction, Controller, CtrlConfig, FollowerProcess, StandbyFleet};
use ofscil_nn::models::BackboneKind;
use ofscil_obs::{EventKind, Obs, ObsConfig, ObsQuery};
use ofscil_router::{harness::ShardProcess, RouterConfig, RouterServer};
use ofscil_serve::{DeploymentSpec, LearnerRegistry, ServeRequest, ServeResponse};
use ofscil_tensor::SeedRng;
use ofscil_wire::{FollowerConfig, WireClient, WireConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const DIM: usize = 16;
const TENANTS: [&str; 2] = ["alpha", "beta"];

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-ctrl-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Every process loads the same pretrained weights; replication and
/// promotion then only move the explicit memory.
fn registry() -> Arc<LearnerRegistry> {
    let registry = LearnerRegistry::new();
    for tenant in TENANTS {
        let mut rng = SeedRng::new(42);
        registry
            .register(
                DeploymentSpec::new(tenant, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, DIM, &mut rng),
            )
            .unwrap();
    }
    Arc::new(registry)
}

#[test]
fn killed_shard_recovers_through_follower_promotion_without_operator_calls() {
    let obs = Obs::new(ObsConfig::default());
    let shard_a =
        ShardProcess::spawn_observed(registry(), WireConfig::tcp_loopback(), Some(obs.clone()))
            .unwrap();
    let shard_b =
        ShardProcess::spawn_observed(registry(), WireConfig::tcp_loopback(), Some(obs.clone()))
            .unwrap();
    let old_addrs = [shard_a.addr().to_string(), shard_b.addr().to_string()];
    let config = RouterConfig::tcp_loopback(vec![shard_a.addr().clone(), shard_b.addr().clone()])
        .with_deployments(&TENANTS)
        .with_obs(obs.clone());

    RouterServer::run(&config, |router| {
        // Pick the victim: whichever shard serves "alpha".
        let victim = router.shard_for("alpha").unwrap();
        let victim_addr = router.shard_addr(victim).unwrap();

        // A replica tails the victim and advertises itself to the router.
        let replica_registry = registry();
        let follower = FollowerProcess::spawn(
            Arc::clone(&replica_registry),
            FollowerConfig::new(victim_addr, &TENANTS)
                .with_advertise(router.addr().clone()),
        )
        .unwrap();
        assert_eq!(router.followers(victim), vec![follower.addr().to_string()]);

        // State lands on the victim through the router...
        let mut client = WireClient::connect(router.addr()).unwrap();
        client
            .call(ServeRequest::LearnOnline {
                deployment: "alpha".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[0, 1], 5),
            })
            .unwrap();
        // ...and replicates to the follower before the murder.
        let caught_up = Instant::now();
        while replica_registry.replication_seq("alpha").unwrap_or(0) < 1 {
            assert!(caught_up.elapsed() < Duration::from_secs(30), "replica never caught up");
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut fleet = StandbyFleet::new(Some(obs.clone()));
        fleet.add_follower(victim, follower);
        fleet.add_store(victim, temp_dir("promote"));
        let ctrl_config = CtrlConfig::default()
            .with_dwell_threshold(Duration::from_millis(50))
            .with_cooldown_ticks(2)
            .with_rebalance_floor(u64::MAX) // this test is about recovery only
            .with_retries(3, Duration::from_millis(5));
        let mut controller = Controller::new(router, fleet, ctrl_config);

        // Kill the victim mid-flight. Nobody calls migrate/promote below —
        // the controller has to notice and act on its own.
        if victim == 0 {
            shard_a.stop();
        } else {
            shard_b.stop();
        }

        let deadline = Instant::now() + Duration::from_secs(30);
        let mut promoted = false;
        loop {
            let report = controller.tick();
            for action in &report.executed {
                match action {
                    ControlAction::PromoteFollower { shard, .. } => {
                        assert_eq!(*shard, victim);
                        promoted = true;
                    }
                    other => panic!("unexpected action {other}"),
                }
            }
            assert!(report.failures.is_empty(), "executor failed: {:?}", report.failures);
            if promoted && report.quiescent() {
                break;
            }
            assert!(Instant::now() < deadline, "cluster never converged to serving");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(controller.driver().recovered(), 1, "exactly one promotion");

        // The ring slot now points at the promoted primary and the learned
        // state survived the failover: inference routes and answers.
        let promoted_addr = router.shard_addr(victim).unwrap();
        assert_ne!(promoted_addr.to_string(), old_addrs[victim]);
        let mut client = WireClient::connect(router.addr()).unwrap();
        match client
            .call(ServeRequest::Infer {
                deployment: "alpha".into(),
                image: ofscil_serve::traffic::class_image(IMAGE, 0, 0.01),
            })
            .unwrap()
        {
            ServeResponse::Prediction { class, .. } => assert!(class <= 1),
            other => panic!("unexpected response {other:?}"),
        }
        // The promoted primary is writable again.
        client
            .call(ServeRequest::LearnOnline {
                deployment: "alpha".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[2], 5),
            })
            .unwrap();

        // One routed query reconstructs the recovery: the shard's breaker
        // opened, then the controller stamped its promotion, and the
        // per-deployment promotion rows carry the adopted sequence numbers.
        let timeline = router.obs_query(&ObsQuery::deployment(&format!("shard:{victim}")));
        let open_at = timeline
            .events
            .iter()
            .find(|e| e.kind == EventKind::BreakerOpen)
            .expect("breaker-open event in the timeline")
            .time_us;
        let promo_at = timeline
            .events
            .iter()
            .find(|e| e.kind == EventKind::Promotion)
            .expect("controller-stamped promotion in the timeline")
            .time_us;
        assert!(open_at <= promo_at, "timeline out of order: {open_at} > {promo_at}");
        let alpha_promo = router
            .obs_query(&ObsQuery::deployment("alpha").with_kinds(&[EventKind::Promotion]));
        assert!(
            alpha_promo.events.iter().any(|e| e.seq >= 1),
            "promoted primary never emitted alpha's promotion row: {:?}",
            alpha_promo.events
        );
    })
    .unwrap();
}
