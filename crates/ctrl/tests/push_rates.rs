//! The push-driven observation path end to end: a controller's trailing
//! rates must converge — through the streaming [`RateFeed`] alone — to
//! exactly what the polled capture would have seen, with zero sheds and
//! zero fallback ticks.

use ofscil_core::OFscilModel;
use ofscil_ctrl::{Controller, CtrlConfig, StandbyFleet};
use ofscil_nn::models::BackboneKind;
use ofscil_obs::{Obs, ObsConfig};
use ofscil_router::{harness::ShardProcess, RouterConfig, RouterServer};
use ofscil_serve::{traffic, DeploymentSpec, LearnerRegistry, ServeRequest};
use ofscil_tensor::SeedRng;
use ofscil_wire::{WireClient, WireConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const TENANT: &str = "alpha";

fn registry() -> Arc<LearnerRegistry> {
    let registry = LearnerRegistry::new();
    let mut rng = SeedRng::new(11);
    registry
        .register(
            DeploymentSpec::new(TENANT, (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )
        .unwrap();
    Arc::new(registry)
}

#[test]
fn controller_rates_converge_through_the_stream_alone() {
    let obs = Obs::new(ObsConfig::default());
    let shard =
        ShardProcess::spawn_observed(registry(), WireConfig::tcp_loopback(), Some(obs.clone()))
            .unwrap();
    let config = RouterConfig::tcp_loopback(vec![shard.addr().clone()])
        .with_deployments(&[TENANT])
        .with_obs(obs.clone());
    RouterServer::run(&config, |router| {
        // A window far wider than the test keeps every request countable,
        // and an unreachable rebalance floor keeps the planner quiet — the
        // subject here is observation, not policy.
        let ctrl_config = CtrlConfig::default()
            .with_rate_window_us(60_000_000)
            .with_rebalance_floor(u64::MAX);
        let mut controller =
            Controller::new(router, StandbyFleet::new(Some(obs.clone())), ctrl_config.clone());

        let mut client = WireClient::connect(router.addr()).unwrap();
        client
            .call(ServeRequest::LearnOnline {
                deployment: TENANT.into(),
                batch: traffic::support_batch(IMAGE, &[0, 1], 3),
            })
            .unwrap();
        for _ in 0..5 {
            client
                .call(ServeRequest::Infer {
                    deployment: TENANT.into(),
                    image: traffic::class_image(IMAGE, 0, 0.01),
                })
                .unwrap();
        }
        let expected = 6u64; // 1 learn + 5 infers

        // Tick until the streamed window has absorbed every request. The
        // shard's tail flushes on its own cadence, so this converges within
        // a few hundred milliseconds — the deadline is pure paranoia.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let report = controller.tick();
            assert!(report.pushed, "the stream is up; no tick may fall back to polling");
            let seen = report
                .snapshot
                .shards
                .iter()
                .flat_map(|s| &s.deployments)
                .find(|d| d.name == TENANT)
                .map_or(0, |d| d.requests);
            assert!(seen <= expected, "over-counted: {seen} > {expected} (duplicate rows?)");
            if seen == expected {
                break;
            }
            assert!(Instant::now() < deadline, "rates never converged: {seen}/{expected}");
            std::thread::sleep(Duration::from_millis(20));
        }

        assert!(controller.feed().batches() > 0, "convergence must have consumed leg batches");
        assert_eq!(controller.feed().resubscribed(), 0, "the tail never died");
        assert_eq!(controller.feed().tail().dropped(), 0, "nothing shed at this load");
        assert!(controller.feed().is_live());
        assert_eq!(controller.feed().window_len() as u64, expected);
    })
    .unwrap();
    shard.stop();
}
