//! `ofscil_ctrl` — the self-driving cluster control plane.
//!
//! The layers below this crate already expose every mechanism an operator
//! needs: the router migrates deployments live, followers replicate and
//! promote, stores recover from WAL + checkpoints, and the obs store holds
//! the cluster's timeline. What was missing is the *operator* — something
//! that watches those signals and pulls the levers itself. This crate is
//! that operator, as a deterministic, tick-driven loop:
//!
//! * [`ClusterSnapshot`] — one tick's observation, fused from the router's
//!   scatter-gathered stats, per-shard breaker dwell times, the advertised
//!   follower registry and per-deployment trailing request rates,
//! * [`RateFeed`] — where those rates come from: one streaming cluster
//!   tail opened at controller construction, folded incrementally — drain
//!   the deltas, dedup cross-leg overlap, prune the window — so a tick
//!   costs what happened since the last one, not a windowed
//!   [`ObsQuery`](ofscil_obs::ObsQuery) re-reduced from scratch (the
//!   polled query survives as the fallback when the stream is down),
//! * [`Planner`] — the pure policy core: snapshot in, typed
//!   [`ControlAction`]s out. Breaker-dwell hysteresis keeps flaps from
//!   triggering failovers, per-key cooldowns keep the loop from flapping
//!   itself, and every tie is broken deterministically — the same state
//!   always produces the same plan,
//! * [`Executor`] — carries actions out through two narrow traits
//!   ([`ClusterOps`], [`RecoveryDriver`]) with bounded, backoff-spaced
//!   retries and typed failures; tests drive it entirely with mocks,
//! * [`Controller`] — observe → plan → execute, stamping every planner
//!   decision back into the observability timeline as a typed audit event
//!   (`CtrlPromote`/`CtrlRestart`/`CtrlRebalance`) carrying the snapshot
//!   evidence — breaker dwell, trailing energy and request rates — that
//!   justified it,
//! * [`harness`] — thread-per-process stand-ins ([`FollowerProcess`],
//!   [`PrimaryProcess`]) and the [`StandbyFleet`] recovery driver that
//!   turns planner decisions into running replacements.
//!
//! # Example: the planner is just a function
//!
//! ```
//! use ofscil_ctrl::{ClusterSnapshot, ControlAction, CtrlConfig, Planner, ShardState};
//! use std::time::Duration;
//!
//! let mut planner = Planner::new(CtrlConfig::default());
//! let snapshot = ClusterSnapshot {
//!     tick: 1,
//!     shards: vec![
//!         ShardState {
//!             shard: 0,
//!             reachable: true,
//!             breaker_dwell: None,
//!             followers: vec![],
//!             deployments: vec![],
//!         },
//!         ShardState {
//!             shard: 1,
//!             reachable: false,
//!             // Continuously open for 2 s — well past the threshold.
//!             breaker_dwell: Some(Duration::from_secs(2)),
//!             followers: vec!["tcp://127.0.0.1:9001".into()],
//!             deployments: vec![],
//!         },
//!     ],
//! };
//! assert_eq!(
//!     planner.plan(&snapshot),
//!     vec![ControlAction::PromoteFollower {
//!         shard: 1,
//!         follower_addr: "tcp://127.0.0.1:9001".into(),
//!     }]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod config;
mod controller;
mod executor;
pub mod harness;
mod health;
mod planner;
mod rates;

pub use action::{ControlAction, CtrlError};
pub use config::CtrlConfig;
pub use controller::{Controller, TickReport};
pub use executor::{ClusterOps, Executor, RecoveryDriver};
pub use harness::{FollowerProcess, PrimaryProcess, StandbyFleet};
pub use health::{ClusterSnapshot, DeploymentLoad, ShardState};
pub use planner::Planner;
pub use rates::RateFeed;
