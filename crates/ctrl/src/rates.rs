//! The push-driven rate feed: trailing request rates from a live cluster
//! tail instead of a windowed query per tick.
//!
//! [`ClusterSnapshot::capture`](crate::ClusterSnapshot::capture) polls: every
//! tick it routes an [`ObsQuery`] to every shard and re-reduces the whole
//! trailing window from scratch. A [`RateFeed`] subscribes once — a
//! [`ClusterTail`] multiplexed over every shard, advertised follower and the
//! router's own store — and folds the **deltas** each tick: drain whatever
//! leg batches arrived, dedup cross-leg overlap with the bit-exact splice
//! identity, prune rows that fell out of the trailing window, recompute. The
//! per-tick cost scales with what happened since the last tick, not with the
//! window size, and shards spend no query CPU on an idle control plane.
//!
//! The feed is deliberately pessimistic about its own health: the moment the
//! tail reports every leg gone ([`RateFeed::rates`] returns `None`), the
//! controller falls back to the polled capture path for that tick and
//! [`RateFeed::resubscribe`]s from the feed's high-water cursor — the legs
//! back-fill strictly after it, so the healed stream splices on with no gaps
//! and no duplicates.

use crate::config::CtrlConfig;
use ofscil_obs::{
    sort_dedup_events, trailing_rates_of, DeploymentRate, Event, EventKind, ObsCursor, ObsQuery,
};
use ofscil_router::{ClusterTail, RouterHandle};
use std::sync::mpsc::TryRecvError;

/// An incrementally maintained trailing-rate window over a cluster-wide
/// live tail.
#[derive(Debug)]
pub struct RateFeed {
    tail: ClusterTail,
    /// The trailing window: request events, `(time_us, seq)`-sorted and
    /// cross-leg deduplicated.
    window: Vec<Event>,
    /// High-water mark across everything consumed — where a resubscription
    /// splices back onto the stream.
    cursor: ObsCursor,
    window_us: u64,
    event_limit: usize,
    live: bool,
    batches: u64,
    resubscribed: u64,
}

impl RateFeed {
    /// The subscription filter: request events only, back-fill capped the
    /// same way the polled query is.
    fn query(config: &CtrlConfig) -> ObsQuery {
        ObsQuery::all()
            .with_kinds(&[EventKind::Infer, EventKind::Learn])
            .with_limit(config.rate_event_limit)
    }

    /// Opens the cluster tail and starts an empty window. The leg set is
    /// snapshotted at subscribe time; a controller that reshapes the ring
    /// mid-flight keeps working through the polled fallback until the next
    /// [`resubscribe`](RateFeed::resubscribe).
    pub fn subscribe(router: &RouterHandle<'_>, config: &CtrlConfig) -> RateFeed {
        RateFeed {
            tail: router.cluster_tail(&Self::query(config), None),
            window: Vec::new(),
            cursor: ObsCursor::start(),
            window_us: config.rate_window_us,
            event_limit: (config.rate_event_limit as usize).max(1),
            live: true,
            batches: 0,
            resubscribed: 0,
        }
    }

    /// Drains every buffered leg batch into the window and returns the
    /// trailing rates, or `None` once every leg has exited — the signal to
    /// fall back to a polled [`ObsQuery`] for this tick.
    pub fn rates(&mut self) -> Option<Vec<DeploymentRate>> {
        loop {
            match self.tail.try_recv() {
                Ok(batch) => {
                    self.batches += 1;
                    batch.advance_cursor(&mut self.cursor);
                    // The subscription filter already restricts kinds; the
                    // retain is belt-and-braces against a future filter
                    // widening quietly inflating request counts.
                    self.window.extend(
                        batch
                            .events
                            .into_iter()
                            .filter(|e| matches!(e.kind, EventKind::Infer | EventKind::Learn)),
                    );
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.live = false;
                    return None;
                }
            }
        }
        // A primary and the follower replicating it both deliver the same
        // rows; the splice identity removes the overlap (and anything a leg
        // redelivered across a resubscription).
        sort_dedup_events(&mut self.window, |_| {});
        if let Some(latest) = self.window.last().map(|event| event.time_us) {
            let cutoff = latest.saturating_sub(self.window_us);
            self.window.retain(|event| event.time_us >= cutoff);
        }
        if self.window.len() > self.event_limit {
            let excess = self.window.len() - self.event_limit;
            self.window.drain(..excess);
        }
        Some(trailing_rates_of(&self.window, self.window_us))
    }

    /// Replaces a dead tail with a fresh subscription from the feed's
    /// high-water cursor. The retained window stays valid: every leg
    /// back-fills strictly after the cursor, so nothing is redelivered and
    /// nothing is skipped.
    pub fn resubscribe(&mut self, router: &RouterHandle<'_>, config: &CtrlConfig) {
        self.tail = router.cluster_tail(&Self::query(config), Some(self.cursor));
        self.live = true;
        self.resubscribed += 1;
    }

    /// Whether the tail was still delivering at the last
    /// [`rates`](RateFeed::rates) call.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Leg batches consumed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Times the feed replaced a dead tail with a fresh subscription.
    pub fn resubscribed(&self) -> u64 {
        self.resubscribed
    }

    /// Request events currently inside the trailing window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The underlying cluster tail (legs, resumed and shed counters).
    pub fn tail(&self) -> &ClusterTail {
        &self.tail
    }
}
