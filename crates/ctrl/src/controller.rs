//! The control loop: observe → plan → execute, one tick at a time.
//!
//! [`Controller::tick`] is synchronous and deterministic in its decision
//! making (the planner sees only the captured snapshot); calling it on a
//! timer from the process that owns the
//! [`RouterHandle`](ofscil_router::RouterHandle) is the whole deployment
//! story. Every action the executor carries out is stamped back into the
//! router's observability store, so the recovery timeline — breaker-open,
//! promotion, migrations — reconstructs from one routed
//! [`ObsQuery`](ofscil_obs::ObsQuery).
//!
//! Observation is **push-driven**: the controller opens one streaming
//! [`RateFeed`] at construction and folds its deltas into the trailing
//! rates each tick, instead of issuing a windowed observability query per
//! tick. If the stream dies the tick falls back to the polled
//! [`ClusterSnapshot::capture`] and the feed resubscribes from its
//! high-water cursor — the control loop keeps observing either way.

use crate::action::{ControlAction, CtrlError};
use crate::config::CtrlConfig;
use crate::executor::{ClusterOps, Executor, RecoveryDriver};
use crate::health::{ClusterSnapshot, ShardState};
use crate::planner::Planner;
use crate::rates::RateFeed;
use ofscil_obs::{Event, EventKind};
use ofscil_router::RouterHandle;
use ofscil_wire::BoundAddr;

impl ClusterOps for RouterHandle<'_> {
    fn migrate(&self, deployment: &str, target: usize) -> Result<(), String> {
        RouterHandle::migrate(self, deployment, target)
            .map(|_| ())
            .map_err(|error| error.to_string())
    }

    fn replace_shard(&self, shard: usize, addr: BoundAddr) -> Result<(), String> {
        RouterHandle::replace_shard(self, shard, addr).map_err(|error| error.to_string())
    }
}

/// What one [`Controller::tick`] did.
#[derive(Debug)]
pub struct TickReport {
    /// The tick number (monotonic from 1).
    pub tick: u64,
    /// The cluster state the decisions were made from.
    pub snapshot: ClusterSnapshot,
    /// Everything the planner asked for this tick.
    pub planned: Vec<ControlAction>,
    /// The subset that executed successfully.
    pub executed: Vec<ControlAction>,
    /// Typed failures for the rest (retries already exhausted).
    pub failures: Vec<CtrlError>,
    /// Whether this tick's trailing rates came from the streaming
    /// [`RateFeed`] (`true`) or the polled fallback query (`false`).
    pub pushed: bool,
}

impl TickReport {
    /// `true` when every shard answered and nothing needed doing — the
    /// steady state a recovery loop waits for.
    pub fn quiescent(&self) -> bool {
        self.planned.is_empty()
            && self.snapshot.shards.iter().all(|s| s.reachable && s.breaker_dwell.is_none())
    }
}

/// The self-driving loop: watches the cluster through a
/// [`RouterHandle`], plans with a [`Planner`], executes with an
/// [`Executor`] against a caller-supplied [`RecoveryDriver`].
pub struct Controller<'a, D: RecoveryDriver> {
    router: &'a RouterHandle<'a>,
    driver: D,
    planner: Planner,
    executor: Executor,
    feed: RateFeed,
    config: CtrlConfig,
    tick: u64,
}

impl<'a, D: RecoveryDriver> Controller<'a, D> {
    /// A controller at tick zero, subscribed to the cluster's live tail for
    /// its trailing rates. The driver supplies the process-side recovery
    /// operations (e.g. a [`StandbyFleet`](crate::harness::StandbyFleet)).
    pub fn new(router: &'a RouterHandle<'a>, driver: D, config: CtrlConfig) -> Self {
        Controller {
            router,
            driver,
            planner: Planner::new(config.clone()),
            executor: Executor::new(&config),
            feed: RateFeed::subscribe(router, &config),
            config,
            tick: 0,
        }
    }

    /// The recovery driver, for inspecting what it holds after a run.
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// The streaming rate feed, for inspecting its counters after a run.
    pub fn feed(&self) -> &RateFeed {
        &self.feed
    }

    /// Runs one control tick: fold the rate feed's deltas (or poll if the
    /// stream is down) into a [`ClusterSnapshot`], plan, execute each action
    /// (with retries), and stamp the successful ones into the observability
    /// timeline.
    pub fn tick(&mut self) -> TickReport {
        self.tick += 1;
        let (snapshot, pushed) = match self.feed.rates() {
            Some(rates) => {
                (ClusterSnapshot::assemble(self.router, self.tick, &rates), true)
            }
            None => {
                // Every leg exited (router shutting down, or the tail was
                // opened before the ring had live shards): poll this tick,
                // and splice a fresh subscription from the feed's cursor so
                // the next tick can stream again.
                let snapshot = ClusterSnapshot::capture(self.router, &self.config, self.tick);
                self.feed.resubscribe(self.router, &self.config);
                (snapshot, false)
            }
        };
        let planned = self.planner.plan(&snapshot);
        let mut executed = Vec::new();
        let mut failures = Vec::new();
        for action in &planned {
            match self.executor.execute(action, self.router, &mut self.driver) {
                Ok(()) => {
                    self.stamp(action, &snapshot);
                    executed.push(action.clone());
                }
                Err(error) => failures.push(error),
            }
        }
        TickReport { tick: self.tick, snapshot, planned, executed, failures, pushed }
    }

    /// Stamps an executed action into the router's obs store — the
    /// control-plane audit trail. Every planner decision gets a dedicated
    /// `Ctrl*` row carrying the evidence it was made from, so a
    /// `chaos_recovery`-style incident reconstructs from one routed query:
    ///
    /// * [`PromoteFollower`](ControlAction::PromoteFollower) →
    ///   [`CtrlPromote`](EventKind::CtrlPromote) and
    ///   [`RestartFromStore`](ControlAction::RestartFromStore) →
    ///   [`CtrlRestart`](EventKind::CtrlRestart), both on deployment
    ///   `shard:N` with seq = tick, latency = the breaker dwell that
    ///   triggered recovery (µs), energy = the shard's trailing-window
    ///   energy and wal_bytes = its trailing-window request count,
    /// * [`RebalanceHot`](ControlAction::RebalanceHot) →
    ///   [`CtrlRebalance`](EventKind::CtrlRebalance) on the moved tenant,
    ///   seq = tick, latency = source shard id, wal_bytes = target shard
    ///   id, energy = the tenant's trailing-window energy.
    ///
    /// The recovery actions additionally keep the legacy shard-level
    /// `Promotion` row (deployment `shard:N`, seq = tick) that recovery
    /// loops and the failover scenarios key on, next to the per-deployment
    /// `Promotion` rows the promoted server emits itself. Migrations the
    /// rebalance performs also still emit their own `Migration` event
    /// inside the router's `migrate`.
    fn stamp(&self, action: &ControlAction, snapshot: &ClusterSnapshot) {
        match action {
            ControlAction::RebalanceHot { deployment, from, to } => {
                let energy_mj = snapshot
                    .shards
                    .iter()
                    .flat_map(|s| &s.deployments)
                    .find(|d| &d.name == deployment)
                    .map_or(0.0, |d| d.energy_mj);
                self.router.observe(
                    Event::new(EventKind::CtrlRebalance, deployment)
                        .with_seq(self.tick)
                        .with_latency_us(*from as u64)
                        .with_wal_bytes(*to as u64)
                        .with_energy_mj(energy_mj),
                );
            }
            ControlAction::PromoteFollower { shard, .. }
            | ControlAction::RestartFromStore { shard } => {
                let kind = match action {
                    ControlAction::PromoteFollower { .. } => EventKind::CtrlPromote,
                    _ => EventKind::CtrlRestart,
                };
                let state = snapshot.shards.iter().find(|s| s.shard == *shard);
                let dwell_us = state
                    .and_then(|s| s.breaker_dwell)
                    .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64);
                let energy_mj =
                    state.map_or(0.0, |s| s.deployments.iter().map(|d| d.energy_mj).sum());
                let requests = state.map_or(0, ShardState::load);
                self.router.observe(
                    Event::new(kind, &format!("shard:{shard}"))
                        .with_seq(self.tick)
                        .with_latency_us(dwell_us)
                        .with_energy_mj(energy_mj)
                        .with_wal_bytes(requests),
                );
                self.router.observe(
                    Event::new(EventKind::Promotion, &format!("shard:{shard}"))
                        .with_seq(self.tick),
                );
            }
        }
    }
}
