//! The cluster health model: what one control tick sees.
//!
//! A [`ClusterSnapshot`] is plain data — the planner consumes nothing else,
//! which is what makes every policy decision unit-testable without sockets.
//! [`ClusterSnapshot::assemble`] is the one function that talks to a live
//! cluster, fusing three signals the router already exposes:
//!
//! * scatter-gathered [`cluster_stats`](RouterHandle::cluster_stats) — which
//!   shard owns which deployment, and who answered at all,
//! * per-shard [`breaker_dwell`](RouterHandle::breaker_dwell) — how long a
//!   breaker has been continuously open (the debounced death signal),
//! * per-deployment trailing [`DeploymentRate`]s — who is actually hot
//!   *right now*, rather than since process start. The controller normally
//!   maintains these incrementally from a streamed cluster tail
//!   ([`RateFeed`](crate::RateFeed)); [`ClusterSnapshot::capture`] is the
//!   polled form that re-reduces a routed [`ObsQuery`] instead, kept as the
//!   fallback for when the stream is down.

use crate::config::CtrlConfig;
use ofscil_obs::{DeploymentRate, EventKind, ObsQuery};
use ofscil_router::RouterHandle;
use std::time::Duration;

/// One deployment's trailing-window load, attributed to the shard that
/// currently serves it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentLoad {
    /// Deployment name.
    pub name: String,
    /// `Infer` + `Learn` events observed inside the trailing window.
    pub requests: u64,
    /// Energy those events spent, in millijoules.
    pub energy_mj: f64,
}

/// One shard's slice of a control tick's observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard id.
    pub shard: usize,
    /// Whether the scatter-gather could reach the shard at all.
    pub reachable: bool,
    /// How long the shard's circuit breaker has been continuously open
    /// (`None` while closed). The planner's recovery trigger — `reachable`
    /// alone flaps on a single lost request, the dwell does not.
    pub breaker_dwell: Option<Duration>,
    /// Follower addresses advertised for this shard (promotion candidates).
    pub followers: Vec<String>,
    /// The managed deployments this shard currently owns, with their
    /// trailing-window load (zero for deployments the window saw nothing
    /// from).
    pub deployments: Vec<DeploymentLoad>,
}

impl ShardState {
    /// Total trailing-window requests across the shard's deployments — the
    /// load number the rebalance policy compares.
    pub fn load(&self) -> u64 {
        self.deployments.iter().map(|d| d.requests).sum()
    }
}

/// Everything the planner sees for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// The controller tick this snapshot was taken on (the planner's clock
    /// for cooldown accounting).
    pub tick: u64,
    /// Per-shard state, in shard-id order.
    pub shards: Vec<ShardState>,
}

impl ClusterSnapshot {
    /// Observes a live cluster through its router handle, the polled way:
    /// one routed observability query (kinds `Infer|Learn`, reduced over
    /// [`rate_window_us`](CtrlConfig::rate_window_us)) supplies the trailing
    /// rates, then [`assemble`](ClusterSnapshot::assemble) does the rest.
    /// The controller prefers its streamed [`RateFeed`](crate::RateFeed) and
    /// uses this as the fallback when the feed is down.
    pub fn capture(router: &RouterHandle<'_>, config: &CtrlConfig, tick: u64) -> ClusterSnapshot {
        let query = ObsQuery::all()
            .with_kinds(&[EventKind::Infer, EventKind::Learn])
            .with_limit(config.rate_event_limit);
        let rates = router.obs_query(&query).trailing_rates(config.rate_window_us);
        ClusterSnapshot::assemble(router, tick, &rates)
    }

    /// Fuses already-computed trailing rates with a live stats read: one
    /// scatter-gathered stats pass and a breaker/follower-registry read per
    /// shard. An unreachable shard contributes an empty deployment list —
    /// recovery planning needs only its dwell. The shared back half of both
    /// observation paths (polled [`capture`](ClusterSnapshot::capture),
    /// streamed [`RateFeed`](crate::RateFeed)).
    pub fn assemble(
        router: &RouterHandle<'_>,
        tick: u64,
        rates: &[DeploymentRate],
    ) -> ClusterSnapshot {
        let shards = router
            .cluster_stats()
            .into_iter()
            .map(|slice| {
                let deployments = slice
                    .deployments
                    .iter()
                    .map(|stats| {
                        let rate = rates.iter().find(|r| r.deployment == stats.name);
                        DeploymentLoad {
                            name: stats.name.clone(),
                            requests: rate.map_or(0, |r| r.requests),
                            energy_mj: rate.map_or(0.0, |r| r.energy_mj),
                        }
                    })
                    .collect();
                ShardState {
                    shard: slice.shard,
                    reachable: slice.reachable,
                    breaker_dwell: router.breaker_dwell(slice.shard).ok().flatten(),
                    followers: router.followers(slice.shard),
                    deployments,
                }
            })
            .collect();
        ClusterSnapshot { tick, shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_load_sums_deployment_requests() {
        let shard = ShardState {
            shard: 0,
            reachable: true,
            breaker_dwell: None,
            followers: Vec::new(),
            deployments: vec![
                DeploymentLoad { name: "a".into(), requests: 7, energy_mj: 0.5 },
                DeploymentLoad { name: "b".into(), requests: 5, energy_mj: 0.25 },
            ],
        };
        assert_eq!(shard.load(), 12);
    }
}
