//! Process harness for the recovery side: follower replicas and the
//! store-backed primaries they turn into, each on its own thread with a
//! stop switch — the same shape as the router crate's `ShardProcess`, so a
//! single binary can stand a whole self-healing cluster up and kill
//! members mid-run.

use crate::executor::RecoveryDriver;
use ofscil_obs::Obs;
use ofscil_serve::LearnerRegistry;
use ofscil_store::Store;
use ofscil_wire::{
    BoundAddr, Follower, FollowerConfig, WireConfig, WireError, WireServer,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Joins a harness thread's bind failure out of it.
fn bind_error(join: JoinHandle<Result<(), WireError>>, what: &str) -> WireError {
    match join.join() {
        Ok(Err(error)) => error,
        Ok(Ok(())) => {
            WireError::Protocol(format!("{what} exited before reporting its address"))
        }
        Err(_) => WireError::Protocol(format!("{what} thread panicked")),
    }
}

/// A follower replica on its own thread: tails a primary, serves read-only
/// traffic, and (when configured with
/// [`FollowerConfig::with_advertise`]) announces itself to the router as a
/// promotion candidate.
#[derive(Debug)]
pub struct FollowerProcess {
    registry: Arc<LearnerRegistry>,
    addr: BoundAddr,
    stop: Option<mpsc::Sender<()>>,
    join: Option<JoinHandle<Result<(), WireError>>>,
}

impl FollowerProcess {
    /// Boots the replica: binds its read-only server, starts the tails, and
    /// keeps serving until [`FollowerProcess::promote`], `stop`, or drop.
    /// The registry is shared — the caller keeps an `Arc` clone to inspect
    /// replicated state.
    ///
    /// # Errors
    ///
    /// Returns the server's bind error when the replica never came up.
    pub fn spawn(
        registry: Arc<LearnerRegistry>,
        config: FollowerConfig,
    ) -> Result<Self, WireError> {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let thread_registry = Arc::clone(&registry);
        let join = std::thread::spawn(move || {
            Follower::run(&thread_registry, &config, |handle| {
                let _ = addr_tx.send(handle.addr().clone());
                let _ = stop_rx.recv();
            })
        });
        match addr_rx.recv() {
            Ok(addr) => {
                Ok(FollowerProcess { registry, addr, stop: Some(stop_tx), join: Some(join) })
            }
            Err(_) => Err(bind_error(join, "follower server")),
        }
    }

    /// The replica's own bound address — what it advertised to the router.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Stops the replica's tails and server.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Promotes the replica: stops the tail (the primary it followed is
    /// presumed dead), then boots a **writable** store-backed primary over
    /// the replicated registry via
    /// [`Follower::promote_observed`] — bootstrapping `store_dir` so the
    /// new primary adopts the replica's sequence numbers and emits one
    /// `Promotion` event per deployment into `obs`.
    ///
    /// # Errors
    ///
    /// Returns the promoted server's bind or bootstrap error.
    pub fn promote(
        mut self,
        store_dir: &Path,
        obs: Option<Obs>,
    ) -> Result<PrimaryProcess, WireError> {
        self.shutdown();
        let registry = Arc::clone(&self.registry);
        PrimaryProcess::spawn(registry, store_dir.to_path_buf(), obs, true)
    }

    fn shutdown(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
            drop(stop);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for FollowerProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A writable, store-backed primary on its own thread — what a promotion
/// or a store restart produces. Serves on an ephemeral loopback TCP port
/// until stopped or dropped.
#[derive(Debug)]
pub struct PrimaryProcess {
    addr: BoundAddr,
    stop: Option<mpsc::Sender<()>>,
    join: Option<JoinHandle<Result<(), WireError>>>,
}

impl PrimaryProcess {
    /// Restarts a shard from its durable store: recovers `store_dir` into
    /// `registry` (which must have the shard's deployments registered) and
    /// serves it writable and journaled.
    ///
    /// # Errors
    ///
    /// Returns the server's bind error or the store's recovery error.
    pub fn restart(
        registry: Arc<LearnerRegistry>,
        store_dir: &Path,
        obs: Option<Obs>,
    ) -> Result<Self, WireError> {
        PrimaryProcess::spawn(registry, store_dir.to_path_buf(), obs, false)
    }

    /// Common spawn path; `promoting` picks between
    /// [`Follower::promote_observed`] (emits per-deployment `Promotion`
    /// events) and a plain bootstrap + observed serve (restart).
    fn spawn(
        registry: Arc<LearnerRegistry>,
        store_dir: PathBuf,
        obs: Option<Obs>,
        promoting: bool,
    ) -> Result<Self, WireError> {
        let (addr_tx, addr_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let join = std::thread::spawn(move || {
            let store = Store::open(&store_dir).map_err(|error| {
                WireError::Protocol(format!("store open failed: {error}"))
            })?;
            let wire = WireConfig::tcp_loopback();
            let body = |addr: &BoundAddr| {
                let _ = addr_tx.send(addr.clone());
                let _ = stop_rx.recv();
            };
            if promoting {
                Follower::promote_observed(&registry, &store, &wire, obs.as_ref(), |handle| {
                    body(handle.addr())
                })
            } else {
                store.bootstrap(&registry).map_err(|error| {
                    WireError::Protocol(format!("restart bootstrap failed: {error}"))
                })?;
                WireServer::run_observed(&registry, &wire, Some(&store), obs.as_ref(), |handle| {
                    body(handle.addr())
                })
            }
        });
        match addr_rx.recv() {
            Ok(addr) => Ok(PrimaryProcess { addr, stop: Some(stop_tx), join: Some(join) }),
            Err(_) => Err(bind_error(join, "promoted primary")),
        }
    }

    /// The primary's bound address — what the ring slot gets re-pointed at.
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Shuts the primary down and waits for it to drain.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
            drop(stop);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for PrimaryProcess {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-shard standby resources.
#[derive(Debug, Default)]
struct Standby {
    follower: Option<FollowerProcess>,
    store_dir: Option<PathBuf>,
    /// Standby registry for the restart path (same deployments registered
    /// as the dead shard, state recovered from the store).
    registry: Option<Arc<LearnerRegistry>>,
}

/// The environment half of the control plane: owns each shard's standby
/// resources (an advertised follower replica, a durable store directory, a
/// standby registry) and turns [`Planner`](crate::Planner) decisions into
/// processes. Implements [`RecoveryDriver`], idempotently — a shard
/// promoted or restarted once hands the same address back on retries.
#[derive(Debug, Default)]
pub struct StandbyFleet {
    shards: HashMap<usize, Standby>,
    obs: Option<Obs>,
    /// The primaries brought up so far; kept alive here (dropping the fleet
    /// stops them).
    primaries: Vec<PrimaryProcess>,
    /// Idempotency map: shard → the address its recovery already produced.
    recovered: HashMap<usize, BoundAddr>,
}

impl StandbyFleet {
    /// An empty fleet whose spawned primaries record into `obs`.
    pub fn new(obs: Option<Obs>) -> StandbyFleet {
        StandbyFleet { obs, ..StandbyFleet::default() }
    }

    /// Registers `shard`'s follower replica (the promotion candidate).
    pub fn add_follower(&mut self, shard: usize, follower: FollowerProcess) {
        self.shards.entry(shard).or_default().follower = Some(follower);
    }

    /// Registers `shard`'s durable store directory — used to bootstrap a
    /// promotion and to recover a restart.
    pub fn add_store(&mut self, shard: usize, dir: impl Into<PathBuf>) {
        self.shards.entry(shard).or_default().store_dir = Some(dir.into());
    }

    /// Registers `shard`'s standby registry for the restart path.
    pub fn add_standby_registry(&mut self, shard: usize, registry: Arc<LearnerRegistry>) {
        self.shards.entry(shard).or_default().registry = Some(registry);
    }

    /// How many primaries this fleet has brought up.
    pub fn recovered(&self) -> usize {
        self.primaries.len()
    }
}

impl RecoveryDriver for StandbyFleet {
    fn promote(&mut self, shard: usize, follower_addr: &str) -> Result<BoundAddr, String> {
        if let Some(addr) = self.recovered.get(&shard) {
            return Ok(addr.clone());
        }
        let standby = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| format!("no standby resources for shard {shard}"))?;
        let dir = standby
            .store_dir
            .clone()
            .ok_or_else(|| format!("no store directory for shard {shard}"))?;
        let follower = standby
            .follower
            .take()
            .ok_or_else(|| format!("no follower registered for shard {shard}"))?;
        if follower.addr().to_string() != follower_addr {
            let actual = follower.addr().clone();
            standby.follower = Some(follower);
            return Err(format!(
                "shard {shard}'s registered follower is {actual}, not {follower_addr}"
            ));
        }
        let primary = follower
            .promote(&dir, self.obs.clone())
            .map_err(|error| format!("promotion failed: {error}"))?;
        let addr = primary.addr().clone();
        self.primaries.push(primary);
        self.recovered.insert(shard, addr.clone());
        Ok(addr)
    }

    fn restart(&mut self, shard: usize) -> Result<BoundAddr, String> {
        if let Some(addr) = self.recovered.get(&shard) {
            return Ok(addr.clone());
        }
        let standby = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| format!("no standby resources for shard {shard}"))?;
        let dir = standby
            .store_dir
            .clone()
            .ok_or_else(|| format!("no store directory for shard {shard}"))?;
        let registry = standby
            .registry
            .clone()
            .ok_or_else(|| format!("no standby registry for shard {shard}"))?;
        let primary = PrimaryProcess::restart(registry, &dir, self.obs.clone())
            .map_err(|error| format!("restart failed: {error}"))?;
        let addr = primary.addr().clone();
        self.primaries.push(primary);
        self.recovered.insert(shard, addr.clone());
        Ok(addr)
    }
}
