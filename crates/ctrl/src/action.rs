//! The control plane's output vocabulary: typed actions and typed failures.

use std::fmt;

/// One decision the planner emitted for the executor to carry out.
///
/// Actions are plain data — comparing, logging and replaying them needs no
/// cluster — and each maps onto exactly one recovery or rebalance edge the
/// router already exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlAction {
    /// Live-migrate one hot deployment off an overloaded shard onto the
    /// least-loaded one (the router's `migrate`, so billing state and the
    /// obs `Migration` event ride along).
    RebalanceHot {
        /// The deployment to move.
        deployment: String,
        /// Shard it currently lives on (the overloaded one).
        from: usize,
        /// Shard it should live on (the coldest reachable one).
        to: usize,
    },
    /// A shard's breaker stayed open past the dwell threshold and a replica
    /// advertised itself: promote that follower to a durable primary and
    /// re-point the ring slot at it.
    PromoteFollower {
        /// The dead shard's id.
        shard: usize,
        /// The advertised follower address (its `BoundAddr` display form,
        /// e.g. `tcp://127.0.0.1:9001`) to promote.
        follower_addr: String,
    },
    /// A shard's breaker stayed open past the dwell threshold and **no**
    /// follower advertised itself: restart the shard from its durable store
    /// (WAL + checkpoints) and re-point the ring slot at the new process.
    RestartFromStore {
        /// The dead shard's id.
        shard: usize,
    },
}

impl ControlAction {
    /// A short human-readable label (for timelines and logs).
    pub fn label(&self) -> &'static str {
        match self {
            ControlAction::RebalanceHot { .. } => "rebalance-hot",
            ControlAction::PromoteFollower { .. } => "promote-follower",
            ControlAction::RestartFromStore { .. } => "restart-from-store",
        }
    }
}

impl fmt::Display for ControlAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlAction::RebalanceHot { deployment, from, to } => {
                write!(f, "rebalance-hot {deployment:?} shard {from} -> {to}")
            }
            ControlAction::PromoteFollower { shard, follower_addr } => {
                write!(f, "promote-follower {follower_addr} for shard {shard}")
            }
            ControlAction::RestartFromStore { shard } => {
                write!(f, "restart-from-store shard {shard}")
            }
        }
    }
}

/// What went wrong while carrying a [`ControlAction`] out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// The executor retried the action to exhaustion; `error` is the last
    /// attempt's failure.
    ActionFailed {
        /// The action that could not be carried out.
        action: ControlAction,
        /// How many attempts were made (always ≥ 1).
        attempts: u32,
        /// The final attempt's error message.
        error: String,
    },
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::ActionFailed { action, attempts, error } => {
                write!(f, "{action} failed after {attempts} attempt(s): {error}")
            }
        }
    }
}

impl std::error::Error for CtrlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_display_and_label() {
        let actions = [
            ControlAction::RebalanceHot { deployment: "t".into(), from: 0, to: 1 },
            ControlAction::PromoteFollower {
                shard: 2,
                follower_addr: "tcp://127.0.0.1:9001".into(),
            },
            ControlAction::RestartFromStore { shard: 1 },
        ];
        for action in &actions {
            assert!(action.to_string().contains(&action.label()[..9]));
        }
        let error = CtrlError::ActionFailed {
            action: actions[2].clone(),
            attempts: 3,
            error: "store missing".into(),
        };
        assert!(error.to_string().contains("3 attempt(s)"));
        assert!(error.to_string().contains("store missing"));
    }
}
