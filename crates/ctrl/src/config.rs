//! Control-loop tuning knobs.

use std::time::Duration;

/// Configuration of the control loop: hysteresis thresholds, cooldowns and
/// retry policy.
///
/// The defaults are sized for loopback test clusters (millisecond breakers);
/// a production deployment with second-scale probe intervals would raise
/// [`breaker_dwell_threshold`](CtrlConfig::breaker_dwell_threshold) and
/// [`rate_window_us`](CtrlConfig::rate_window_us) accordingly.
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlConfig {
    /// How long a shard's circuit breaker must have been **continuously**
    /// open before the planner reacts with a promotion or store restart.
    /// This is the hysteresis that keeps a brief flap (one failed request,
    /// breaker opens, probe closes it) from triggering a failover.
    pub breaker_dwell_threshold: Duration,
    /// Minimum ticks between two actions touching the same shard or the
    /// same deployment. An action planned at tick `t` suppresses further
    /// actions on its key until tick `t + cooldown_ticks` — the anti-flap
    /// window that gives an executed action time to take effect before the
    /// planner reconsiders.
    pub cooldown_ticks: u64,
    /// Rebalance trigger: the hottest shard's trailing request rate must
    /// exceed `rebalance_ratio ×` the coldest shard's before a migration is
    /// planned. Must be ≥ 1; higher values tolerate more skew.
    pub rebalance_ratio: f64,
    /// Rebalance floor: the hottest shard must additionally have served at
    /// least this many requests inside the trailing window. Keeps idle
    /// clusters (where 3 requests vs 1 trips any ratio) from churning.
    pub rebalance_floor: u64,
    /// Upper bound on actions planned per tick, recovery and rebalance
    /// combined. Keeps one bad observation from rewriting the whole
    /// cluster at once.
    pub max_actions_per_tick: usize,
    /// How many times the executor tries an action before surfacing
    /// [`CtrlError::ActionFailed`](crate::CtrlError::ActionFailed).
    pub retry_attempts: u32,
    /// Sleep before the second attempt; doubles per further attempt.
    pub retry_backoff: Duration,
    /// Trailing window (microseconds, anchored at the newest observed
    /// event) over which per-deployment request/energy rates are computed
    /// for the rebalance decision.
    pub rate_window_us: u64,
    /// Event cap for the observability scan feeding the rate computation.
    pub rate_event_limit: u32,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig {
            breaker_dwell_threshold: Duration::from_millis(250),
            cooldown_ticks: 3,
            rebalance_ratio: 3.0,
            rebalance_floor: 32,
            max_actions_per_tick: 2,
            retry_attempts: 3,
            retry_backoff: Duration::from_millis(25),
            rate_window_us: 2_000_000,
            rate_event_limit: 50_000,
        }
    }
}

impl CtrlConfig {
    /// Sets the breaker dwell threshold (builder style).
    #[must_use]
    pub fn with_dwell_threshold(mut self, threshold: Duration) -> Self {
        self.breaker_dwell_threshold = threshold;
        self
    }

    /// Sets the per-key action cooldown in ticks (builder style).
    #[must_use]
    pub fn with_cooldown_ticks(mut self, ticks: u64) -> Self {
        self.cooldown_ticks = ticks;
        self
    }

    /// Sets the rebalance skew trigger (builder style). Values below 1 are
    /// clamped to 1 at decision time.
    #[must_use]
    pub fn with_rebalance_ratio(mut self, ratio: f64) -> Self {
        self.rebalance_ratio = ratio;
        self
    }

    /// Sets the rebalance request floor (builder style).
    #[must_use]
    pub fn with_rebalance_floor(mut self, floor: u64) -> Self {
        self.rebalance_floor = floor;
        self
    }

    /// Sets the per-tick action cap (builder style). Zero is clamped to 1
    /// at decision time.
    #[must_use]
    pub fn with_max_actions_per_tick(mut self, max: usize) -> Self {
        self.max_actions_per_tick = max;
        self
    }

    /// Sets the executor retry policy (builder style). Zero attempts are
    /// clamped to 1 at execution time.
    #[must_use]
    pub fn with_retries(mut self, attempts: u32, backoff: Duration) -> Self {
        self.retry_attempts = attempts;
        self.retry_backoff = backoff;
        self
    }

    /// Sets the trailing rate window (builder style).
    #[must_use]
    pub fn with_rate_window_us(mut self, window_us: u64) -> Self {
        self.rate_window_us = window_us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_defaults() {
        let config = CtrlConfig::default()
            .with_dwell_threshold(Duration::from_millis(50))
            .with_cooldown_ticks(5)
            .with_rebalance_ratio(2.0)
            .with_rebalance_floor(8)
            .with_max_actions_per_tick(4)
            .with_retries(2, Duration::from_millis(1))
            .with_rate_window_us(1_000);
        assert_eq!(config.breaker_dwell_threshold, Duration::from_millis(50));
        assert_eq!(config.cooldown_ticks, 5);
        assert_eq!(config.rebalance_ratio, 2.0);
        assert_eq!(config.rebalance_floor, 8);
        assert_eq!(config.max_actions_per_tick, 4);
        assert_eq!(config.retry_attempts, 2);
        assert_eq!(config.retry_backoff, Duration::from_millis(1));
        assert_eq!(config.rate_window_us, 1_000);
    }
}
