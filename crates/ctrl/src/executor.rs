//! The action executor: carries a [`ControlAction`] out against trait
//! handles, with bounded retries and doubling backoff.
//!
//! The executor sees the cluster only through two small traits —
//! [`ClusterOps`] (what the router can do: migrate, re-point a ring slot)
//! and [`RecoveryDriver`] (what the environment can do: promote a follower
//! process, restart a shard from its store). Tests drive it with in-memory
//! mocks; production hands it a
//! [`RouterHandle`](ofscil_router::RouterHandle) and a
//! [`StandbyFleet`](crate::harness::StandbyFleet).

use crate::action::{ControlAction, CtrlError};
use crate::config::CtrlConfig;
use ofscil_wire::BoundAddr;
use std::time::Duration;

/// Ring-side operations an executed action needs — implemented for
/// [`RouterHandle`](ofscil_router::RouterHandle) next to
/// [`Controller`](crate::Controller), mocked in tests. Errors are plain
/// strings: the executor retries them, it does not branch on them.
pub trait ClusterOps {
    /// Live-migrates `deployment` to shard `target`.
    fn migrate(&self, deployment: &str, target: usize) -> Result<(), String>;
    /// Re-points shard `shard`'s ring slot at `addr` (the failover edge
    /// after a promotion or restart).
    fn replace_shard(&self, shard: usize, addr: BoundAddr) -> Result<(), String>;
}

/// Process-side recovery operations — how a dead shard's replacement
/// actually comes into existence. Returns the replacement's bound address.
///
/// Implementations should be **idempotent per shard**: the executor retries
/// a failed action whole, so a `promote` whose process came up but whose
/// ring re-point failed will be asked again and must hand back the same
/// address instead of consuming a second replica.
pub trait RecoveryDriver {
    /// Promotes the advertised follower at `follower_addr` into a durable,
    /// writable primary for `shard`.
    fn promote(&mut self, shard: usize, follower_addr: &str) -> Result<BoundAddr, String>;
    /// Restarts `shard` from its durable store (WAL + checkpoints).
    fn restart(&mut self, shard: usize) -> Result<BoundAddr, String>;
}

/// Retrying executor. See the module docs.
#[derive(Debug, Clone)]
pub struct Executor {
    attempts: u32,
    backoff: Duration,
}

impl Executor {
    /// An executor with the configuration's retry policy.
    pub fn new(config: &CtrlConfig) -> Executor {
        Executor { attempts: config.retry_attempts.max(1), backoff: config.retry_backoff }
    }

    /// Carries `action` out, retrying up to the configured attempt count
    /// with doubling backoff between tries.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlError::ActionFailed`] carrying the action, the attempt
    /// count and the final attempt's error once retries are exhausted.
    pub fn execute<O, D>(
        &self,
        action: &ControlAction,
        ops: &O,
        driver: &mut D,
    ) -> Result<(), CtrlError>
    where
        O: ClusterOps + ?Sized,
        D: RecoveryDriver + ?Sized,
    {
        let mut delay = self.backoff;
        let mut last = String::new();
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match attempt_once(action, ops, driver) {
                Ok(()) => return Ok(()),
                Err(error) => last = error,
            }
        }
        Err(CtrlError::ActionFailed {
            action: action.clone(),
            attempts: self.attempts,
            error: last,
        })
    }
}

fn attempt_once<O, D>(action: &ControlAction, ops: &O, driver: &mut D) -> Result<(), String>
where
    O: ClusterOps + ?Sized,
    D: RecoveryDriver + ?Sized,
{
    match action {
        ControlAction::RebalanceHot { deployment, to, .. } => ops.migrate(deployment, *to),
        ControlAction::PromoteFollower { shard, follower_addr } => {
            let addr = driver.promote(*shard, follower_addr)?;
            ops.replace_shard(*shard, addr)
        }
        ControlAction::RestartFromStore { shard } => {
            let addr = driver.restart(*shard)?;
            ops.replace_shard(*shard, addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::time::Instant;

    fn loopback(port: u16) -> BoundAddr {
        BoundAddr::Tcp(std::net::SocketAddr::from(([127, 0, 0, 1], port)))
    }

    /// Mock ops: records calls, fails the first `fail_first` of them.
    #[derive(Default)]
    struct MockOps {
        calls: RefCell<Vec<String>>,
        fail_first: RefCell<u32>,
    }

    impl ClusterOps for MockOps {
        fn migrate(&self, deployment: &str, target: usize) -> Result<(), String> {
            self.calls.borrow_mut().push(format!("migrate {deployment} -> {target}"));
            let mut budget = self.fail_first.borrow_mut();
            if *budget > 0 {
                *budget -= 1;
                return Err("shard unavailable".into());
            }
            Ok(())
        }

        fn replace_shard(&self, shard: usize, addr: BoundAddr) -> Result<(), String> {
            self.calls.borrow_mut().push(format!("replace {shard} -> {addr}"));
            Ok(())
        }
    }

    #[derive(Default)]
    struct MockDriver {
        promotions: Vec<(usize, String)>,
        restarts: Vec<usize>,
    }

    impl RecoveryDriver for MockDriver {
        fn promote(&mut self, shard: usize, follower_addr: &str) -> Result<BoundAddr, String> {
            self.promotions.push((shard, follower_addr.to_string()));
            Ok(loopback(9100))
        }

        fn restart(&mut self, shard: usize) -> Result<BoundAddr, String> {
            self.restarts.push(shard);
            Err("no store registered".into())
        }
    }

    fn executor(attempts: u32) -> Executor {
        Executor::new(
            &CtrlConfig::default().with_retries(attempts, Duration::from_millis(1)),
        )
    }

    #[test]
    fn transient_failures_are_retried_with_backoff_until_success() {
        let ops = MockOps { fail_first: RefCell::new(2), ..MockOps::default() };
        let mut driver = MockDriver::default();
        let action = ControlAction::RebalanceHot { deployment: "t".into(), from: 0, to: 1 };
        let started = Instant::now();
        executor(3).execute(&action, &ops, &mut driver).unwrap();
        assert_eq!(ops.calls.borrow().len(), 3, "two failures + one success");
        // Backoff slept 1ms + 2ms between the three attempts.
        assert!(started.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let ops = MockOps::default();
        let mut driver = MockDriver::default();
        let action = ControlAction::RestartFromStore { shard: 2 };
        let error = executor(3).execute(&action, &ops, &mut driver).unwrap_err();
        match &error {
            CtrlError::ActionFailed { action: failed, attempts, error } => {
                assert_eq!(failed, &action);
                assert_eq!(*attempts, 3);
                assert_eq!(error, "no store registered");
            }
        }
        assert_eq!(driver.restarts, vec![2, 2, 2], "every attempt reached the driver");
        assert!(ops.calls.borrow().is_empty(), "the ring was never touched");
    }

    #[test]
    fn promotion_re_points_the_ring_at_the_drivers_address() {
        let ops = MockOps::default();
        let mut driver = MockDriver::default();
        let action = ControlAction::PromoteFollower {
            shard: 1,
            follower_addr: "tcp://127.0.0.1:9001".into(),
        };
        executor(1).execute(&action, &ops, &mut driver).unwrap();
        assert_eq!(driver.promotions, vec![(1, "tcp://127.0.0.1:9001".to_string())]);
        assert_eq!(ops.calls.borrow().as_slice(), ["replace 1 -> tcp://127.0.0.1:9100"]);
    }

    #[test]
    fn zero_attempts_clamp_to_one() {
        let ops = MockOps::default();
        let mut driver = MockDriver::default();
        let action = ControlAction::RebalanceHot { deployment: "t".into(), from: 0, to: 1 };
        executor(0).execute(&action, &ops, &mut driver).unwrap();
        assert_eq!(ops.calls.borrow().len(), 1);
    }
}
