//! The policy engine: a pure, deterministic function from a
//! [`ClusterSnapshot`] to a list of [`ControlAction`]s.
//!
//! The planner holds **no cluster handles** — only its configuration and
//! the cooldown bookkeeping from earlier plans — so every decision path is
//! unit-testable by constructing snapshots by hand. Given the same state
//! and the same snapshot it always emits the same plan: shards are walked
//! in id order, followers are chosen by lexicographic minimum, and load
//! ties break on deployment name.
//!
//! Two policies run per tick, recovery first:
//!
//! 1. **Recovery.** A shard whose breaker has been continuously open for at
//!    least [`breaker_dwell_threshold`](CtrlConfig::breaker_dwell_threshold)
//!    gets a [`PromoteFollower`](ControlAction::PromoteFollower) if a
//!    replica advertised itself, else a
//!    [`RestartFromStore`](ControlAction::RestartFromStore). Shorter flaps
//!    plan nothing — that is the hysteresis.
//! 2. **Rebalance.** Among healthy shards (reachable, breaker closed), if
//!    the hottest shard's trailing request rate exceeds
//!    [`rebalance_ratio`](CtrlConfig::rebalance_ratio) × the coldest's
//!    *and* clears [`rebalance_floor`](CtrlConfig::rebalance_floor), the
//!    hottest deployment moves to the coldest shard. The loads are
//!    re-simulated after each planned move, so one plan can emit several
//!    migrations — but never the same deployment twice.
//!
//! Every planned action stamps a cooldown on its shard or deployment:
//! for [`cooldown_ticks`](CtrlConfig::cooldown_ticks) ticks that key is
//! off-limits, which is what keeps the loop from flapping while an executed
//! action propagates through breakers and stats.

use crate::action::ControlAction;
use crate::config::CtrlConfig;
use crate::health::ClusterSnapshot;
use std::collections::{HashMap, HashSet};

/// Cooldown key: recovery actions are keyed per shard, rebalance actions
/// per deployment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Shard(usize),
    Deployment(String),
}

/// The deterministic decision core of the control loop. See the module
/// docs for the policies.
#[derive(Debug, Clone)]
pub struct Planner {
    config: CtrlConfig,
    /// Tick each key last had an action planned on it.
    cooldowns: HashMap<Key, u64>,
}

impl Planner {
    /// A planner with no cooldown history.
    pub fn new(config: CtrlConfig) -> Planner {
        Planner { config, cooldowns: HashMap::new() }
    }

    /// Whether `key` may be acted on at `tick`.
    fn ready(&self, key: &Key, tick: u64) -> bool {
        match self.cooldowns.get(key) {
            Some(&last) => tick.saturating_sub(last) >= self.config.cooldown_ticks.max(1),
            None => true,
        }
    }

    /// Plans this tick's actions. Mutates only the cooldown bookkeeping.
    pub fn plan(&mut self, snapshot: &ClusterSnapshot) -> Vec<ControlAction> {
        let max_actions = self.config.max_actions_per_tick.max(1);
        let mut actions = Vec::new();

        // --- Recovery: dwell hysteresis, promotion over restart. ---
        for shard in &snapshot.shards {
            if actions.len() >= max_actions {
                break;
            }
            let Some(dwell) = shard.breaker_dwell else { continue };
            if dwell < self.config.breaker_dwell_threshold {
                continue; // a flap, not a death — wait it out
            }
            let key = Key::Shard(shard.shard);
            if !self.ready(&key, snapshot.tick) {
                continue;
            }
            let action = match shard.followers.iter().min() {
                Some(follower) => ControlAction::PromoteFollower {
                    shard: shard.shard,
                    follower_addr: follower.clone(),
                },
                None => ControlAction::RestartFromStore { shard: shard.shard },
            };
            self.cooldowns.insert(key, snapshot.tick);
            actions.push(action);
        }

        // --- Rebalance: only across shards that are provably healthy. ---
        let mut loads: Vec<(usize, u64)> = snapshot
            .shards
            .iter()
            .filter(|s| s.reachable && s.breaker_dwell.is_none())
            .map(|s| (s.shard, s.load()))
            .collect();
        let mut moved: HashSet<String> = HashSet::new();
        let mut targets: HashSet<usize> = HashSet::new();
        while actions.len() < max_actions && loads.len() >= 2 {
            // A shard that already received a migration this plan cannot
            // turn around and act as the hot source — without this, the
            // re-simulated loads would ping-pong work inside one tick.
            let Some(&(hot, hot_load)) = loads
                .iter()
                .filter(|(shard, _)| !targets.contains(shard))
                .max_by_key(|&&(shard, load)| (load, shard))
            else {
                break;
            };
            let &(cold, cold_load) =
                loads.iter().min_by_key(|&&(shard, load)| (load, shard)).expect("non-empty");
            let ratio = self.config.rebalance_ratio.max(1.0);
            if hot == cold
                || hot_load < self.config.rebalance_floor
                || (hot_load as f64) <= ratio * (cold_load as f64)
            {
                break; // balanced enough
            }
            let hot_state = snapshot
                .shards
                .iter()
                .find(|s| s.shard == hot)
                .expect("load entries come from the snapshot");
            // Hottest eligible deployment; load ties break on name so the
            // plan never depends on snapshot vector order.
            let candidate = hot_state
                .deployments
                .iter()
                .filter(|d| d.requests > 0 && !moved.contains(&d.name))
                .filter(|d| self.ready(&Key::Deployment(d.name.clone()), snapshot.tick))
                .max_by(|a, b| {
                    a.requests.cmp(&b.requests).then_with(|| b.name.cmp(&a.name))
                });
            let Some(candidate) = candidate else { break };
            // Re-simulate the loads so a second move this tick sees the
            // first one's effect instead of re-picking the same skew.
            for entry in &mut loads {
                if entry.0 == hot {
                    entry.1 = entry.1.saturating_sub(candidate.requests);
                } else if entry.0 == cold {
                    entry.1 += candidate.requests;
                }
            }
            moved.insert(candidate.name.clone());
            targets.insert(cold);
            self.cooldowns.insert(Key::Deployment(candidate.name.clone()), snapshot.tick);
            actions.push(ControlAction::RebalanceHot {
                deployment: candidate.name.clone(),
                from: hot,
                to: cold,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{DeploymentLoad, ShardState};
    use std::time::Duration;

    fn shard(id: usize, loads: &[(&str, u64)]) -> ShardState {
        ShardState {
            shard: id,
            reachable: true,
            breaker_dwell: None,
            followers: Vec::new(),
            deployments: loads
                .iter()
                .map(|&(name, requests)| DeploymentLoad {
                    name: name.into(),
                    requests,
                    energy_mj: requests as f64 * 0.1,
                })
                .collect(),
        }
    }

    fn config() -> CtrlConfig {
        CtrlConfig::default()
            .with_dwell_threshold(Duration::from_millis(100))
            .with_cooldown_ticks(3)
            .with_rebalance_ratio(2.0)
            .with_rebalance_floor(10)
    }

    #[test]
    fn breaker_flap_below_dwell_threshold_plans_nothing() {
        let mut planner = Planner::new(config());
        let mut dead = shard(1, &[]);
        dead.reachable = false;
        dead.breaker_dwell = Some(Duration::from_millis(40)); // below 100ms
        dead.followers = vec!["tcp://127.0.0.1:9001".into()];
        let snapshot =
            ClusterSnapshot { tick: 1, shards: vec![shard(0, &[("a", 5)]), dead.clone()] };
        assert!(planner.plan(&snapshot).is_empty());

        // Unreachable but breaker closed (single lost request, breaker
        // already probed shut again): still nothing.
        dead.breaker_dwell = None;
        let snapshot = ClusterSnapshot { tick: 2, shards: vec![shard(0, &[("a", 5)]), dead] };
        assert!(planner.plan(&snapshot).is_empty());
    }

    #[test]
    fn open_dwell_past_threshold_promotes_the_smallest_follower_once() {
        let mut planner = Planner::new(config());
        let mut dead = shard(1, &[]);
        dead.reachable = false;
        dead.breaker_dwell = Some(Duration::from_millis(150));
        dead.followers = vec!["tcp://127.0.0.1:9002".into(), "tcp://127.0.0.1:9001".into()];
        let make = |tick| ClusterSnapshot {
            tick,
            shards: vec![shard(0, &[("a", 5)]), dead.clone()],
        };

        assert_eq!(
            planner.plan(&make(1)),
            vec![ControlAction::PromoteFollower {
                shard: 1,
                follower_addr: "tcp://127.0.0.1:9001".into(),
            }]
        );
        // Cooldown: the very next ticks plan nothing for the same shard...
        assert!(planner.plan(&make(2)).is_empty());
        assert!(planner.plan(&make(3)).is_empty());
        // ...until the window passes and the (still-dead) shard is retried.
        assert_eq!(planner.plan(&make(4)).len(), 1);
    }

    #[test]
    fn no_followers_escalates_to_store_restart() {
        let mut planner = Planner::new(config());
        let mut dead = shard(2, &[]);
        dead.reachable = false;
        dead.breaker_dwell = Some(Duration::from_secs(1));
        let snapshot = ClusterSnapshot { tick: 1, shards: vec![shard(0, &[]), dead] };
        assert_eq!(planner.plan(&snapshot), vec![ControlAction::RestartFromStore { shard: 2 }]);
    }

    #[test]
    fn rebalance_moves_the_hottest_deployment_to_the_coldest_shard() {
        let mut planner = Planner::new(config());
        let snapshot = ClusterSnapshot {
            tick: 1,
            shards: vec![
                shard(0, &[("hot", 90), ("warm", 30)]),
                shard(1, &[("cool", 5)]),
                shard(2, &[("idle", 1)]),
            ],
        };
        let plan = planner.plan(&snapshot);
        assert_eq!(
            plan[0],
            ControlAction::RebalanceHot { deployment: "hot".into(), from: 0, to: 2 }
        );
        // Loads are re-simulated: after moving 90 requests to shard 2,
        // shard 0 (30) vs shard 1 (5) still exceeds ratio 2, so "warm"
        // moves too — to shard 1, the new coldest.
        assert_eq!(
            plan[1],
            ControlAction::RebalanceHot { deployment: "warm".into(), from: 0, to: 1 }
        );
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn two_overloaded_shards_never_migrate_the_same_deployment_twice() {
        let mut planner = Planner::new(config().with_max_actions_per_tick(8));
        let snapshot = ClusterSnapshot {
            tick: 1,
            shards: vec![
                shard(0, &[("alpha", 80)]),
                shard(1, &[("beta", 70)]),
                shard(2, &[]),
            ],
        };
        let plan = planner.plan(&snapshot);
        let mut names: Vec<&str> = plan
            .iter()
            .map(|a| match a {
                ControlAction::RebalanceHot { deployment, .. } => deployment.as_str(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "a deployment was planned twice: {plan:?}");
        // Across ticks the cooldown holds the line too: the deployments
        // just moved cannot bounce straight back.
        let follow_up = planner.plan(&ClusterSnapshot { tick: 2, ..snapshot });
        assert!(
            follow_up.iter().all(|a| match a {
                ControlAction::RebalanceHot { deployment, .. } =>
                    !names.contains(&deployment.as_str()),
                _ => true,
            }),
            "cooldown violated: {follow_up:?}"
        );
    }

    #[test]
    fn rebalance_respects_the_floor_and_the_ratio() {
        let mut planner = Planner::new(config());
        // Skewed but under the floor (9 < 10): idle clusters don't churn.
        let quiet = ClusterSnapshot {
            tick: 1,
            shards: vec![shard(0, &[("a", 9)]), shard(1, &[])],
        };
        assert!(planner.plan(&quiet).is_empty());
        // Over the floor but inside the ratio (20 ≤ 2×12): balanced enough.
        let balanced = ClusterSnapshot {
            tick: 2,
            shards: vec![shard(0, &[("a", 20)]), shard(1, &[("b", 12)])],
        };
        assert!(planner.plan(&balanced).is_empty());
    }

    #[test]
    fn unhealthy_shards_are_excluded_from_rebalance() {
        let mut planner = Planner::new(config());
        let mut sick = shard(1, &[]);
        sick.breaker_dwell = Some(Duration::from_millis(10)); // flapping
        let snapshot = ClusterSnapshot {
            tick: 1,
            shards: vec![shard(0, &[("a", 50)]), sick, shard(2, &[("b", 5)])],
        };
        // Shard 1 is neither a migration target nor a recovery case yet:
        // the hot deployment lands on shard 2, the healthy cold one.
        let plan = planner.plan(&snapshot);
        assert_eq!(
            plan,
            vec![ControlAction::RebalanceHot { deployment: "a".into(), from: 0, to: 2 }]
        );
    }

    /// Seeded pseudo-random snapshots: two planners with the same
    /// configuration walk the same sequence and must emit identical plans
    /// at every step — the determinism contract the chaos scenario leans on.
    #[test]
    fn seeded_plans_are_deterministic() {
        fn lcg(state: &mut u64) -> u64 {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *state >> 33
        }
        fn random_snapshot(tick: u64, seed: &mut u64) -> ClusterSnapshot {
            let shards = (0..4)
                .map(|id| {
                    let dead = lcg(seed) % 5 == 0;
                    ShardState {
                        shard: id,
                        reachable: !dead,
                        breaker_dwell: dead
                            .then(|| Duration::from_millis(lcg(seed) % 400)),
                        followers: if lcg(seed) % 2 == 0 {
                            vec![format!("tcp://10.0.0.{}:9000", lcg(seed) % 8)]
                        } else {
                            Vec::new()
                        },
                        deployments: (0..lcg(seed) % 4)
                            .map(|d| DeploymentLoad {
                                name: format!("t{}-{d}", lcg(seed) % 6),
                                requests: lcg(seed) % 120,
                                energy_mj: 0.0,
                            })
                            .collect(),
                    }
                })
                .collect();
            ClusterSnapshot { tick, shards }
        }

        let config = config().with_max_actions_per_tick(3);
        let mut left = Planner::new(config.clone());
        let mut right = Planner::new(config);
        for trial in 0..64u64 {
            let mut seed_l = 0x5eed ^ trial;
            let mut seed_r = 0x5eed ^ trial;
            let snap_l = random_snapshot(trial + 1, &mut seed_l);
            let snap_r = random_snapshot(trial + 1, &mut seed_r);
            assert_eq!(snap_l, snap_r, "snapshot generation must itself be deterministic");
            assert_eq!(left.plan(&snap_l), right.plan(&snap_r), "plans diverged at {trial}");
        }
    }
}
