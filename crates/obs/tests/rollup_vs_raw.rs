//! Property test pinning the rollup contract: on any seeded event stream,
//! a rollup-resolution query's aggregates equal a raw scan's **exactly** —
//! not approximately — and `Auto`'s bucket-aligned split never loses or
//! double-counts a row.
//!
//! Exactness with floating-point sums is engineered, not hoped for: every
//! generated energy is a multiple of 0.25 and every accuracy a multiple of
//! 1/64, so all partial sums are exact binary fractions and grouping rows
//! into per-minute cells cannot perturb a single bit.

use ofscil_obs::{
    Event, EventKind, ObsConfig, ObsQuery, ObsStore, Resolution, EVENT_BYTES, ROLLUP_BUCKET_US,
};

/// xorshift64* — the workspace has no RNG dependency, so it lives inline.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const DEPLOYMENTS: [&str; 3] = ["tenant-a", "tenant-b", "shard:0"];

fn random_event(rng: &mut Rng, seq: u64) -> Event {
    let kind = EventKind::from_code(rng.below(EventKind::ALL.len() as u64) as u8).unwrap();
    let deployment = DEPLOYMENTS[rng.below(3) as usize];
    Event::new(kind, deployment)
        .with_time_us(rng.below(30) * ROLLUP_BUCKET_US + rng.below(ROLLUP_BUCKET_US))
        .with_seq(seq)
        // Exact binary fractions: sums are order- and grouping-independent.
        .with_energy_mj(rng.below(256) as f64 * 0.25)
        .with_latency_us(rng.below(5_000))
        .with_accuracy(if rng.below(4) == 0 {
            f32::NAN
        } else {
            (rng.below(65) as f32) / 64.0
        })
        .with_wal_bytes(rng.below(1 << 20))
}

fn assert_resolutions_agree(store: &ObsStore, query: &ObsQuery, seed: u64) {
    let raw = store.query(&query.clone().with_resolution(Resolution::Raw));
    let rolled = store.query(&query.clone().with_resolution(Resolution::Rollup));
    assert_eq!(
        rolled.aggregates, raw.aggregates,
        "seed {seed}: rollup aggregates diverged from raw scan for {query:?}"
    );
    assert!(rolled.events.is_empty(), "seed {seed}: rollup resolution returned raw rows");
    assert!(raw.rollups.is_empty(), "seed {seed}: raw resolution returned cells");
    assert_eq!(
        rolled.rollups.iter().map(|r| r.count).sum::<u64>(),
        raw.aggregates.matched,
        "seed {seed}: cell counts disagree with matched rows"
    );
    // Cells come back sorted by (bucket, deployment, kind).
    assert!(
        rolled.rollups.windows(2).all(|w| w[0].key() < w[1].key()),
        "seed {seed}: rollup cells unsorted or duplicated"
    );

    let auto = store.query(&query.clone().with_resolution(Resolution::Auto));
    assert_eq!(
        auto.aggregates, raw.aggregates,
        "seed {seed}: auto split lost or double-counted rows for {query:?}"
    );
    // The split is a bucket boundary: every raw row at or past it, every
    // cell strictly before it.
    if let (Some(first_raw), Some(last_cell)) = (auto.events.first(), auto.rollups.last()) {
        assert!(
            last_cell.bucket_us + ROLLUP_BUCKET_US <= first_raw.time_us
                || last_cell.bucket_us <= first_raw.time_us,
            "seed {seed}: auto cells overlap the raw span"
        );
        assert!(
            auto.events.iter().all(|e| e.time_us >= last_cell.bucket_us + ROLLUP_BUCKET_US),
            "seed {seed}: raw row fell inside a rolled-up bucket"
        );
    }
}

#[test]
fn rollup_aggregates_equal_raw_scan_at_any_seed() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Small chunks so every run seals; a huge budget so nothing is GC'd
        // (GC is exactly the point where raw forgets and rollups remember —
        // covered separately below).
        let chunk_events = 4 + rng.below(12) as usize;
        let store = ObsStore::new(
            ObsConfig::default()
                .with_chunk_events(chunk_events)
                .with_byte_budget(usize::MAX >> 8),
        );
        let total = 50 + rng.below(300);
        for seq in 0..total {
            store.append(&random_event(&mut rng, seq));
        }

        // Bucket-aligned windows (the granularity rollups promise); the
        // sequence window stays full because it applies to raw rows only.
        let lo = rng.below(10) * ROLLUP_BUCKET_US;
        let hi = (15 + rng.below(15)) * ROLLUP_BUCKET_US - 1;
        let queries = [
            ObsQuery::all(),
            ObsQuery::deployment("tenant-a"),
            ObsQuery::deployment("absent"),
            ObsQuery::all().with_kinds(&[EventKind::Infer, EventKind::CtrlRebalance]),
            ObsQuery::deployment("shard:0").with_kinds(&[EventKind::Learn]),
            ObsQuery::all().with_time_range(lo, hi),
            ObsQuery::deployment("tenant-b").with_time_range(0, hi),
        ];
        for query in &queries {
            assert_resolutions_agree(&store, query, seed);
        }

        // Sealing the tail changes which cells are persistent vs folded on
        // the fly — the answers must not move.
        store.seal();
        for query in &queries {
            assert_resolutions_agree(&store, query, seed);
        }
    }
}

#[test]
fn rollups_remember_what_gc_forgot() {
    for seed in 1..=10u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        // A budget of a few rows: almost every sealed chunk is evicted.
        let store = ObsStore::new(
            ObsConfig::default().with_chunk_events(4).with_byte_budget(6 * EVENT_BYTES),
        );
        let total = 100 + rng.below(100);
        let mut expect_learn = 0u64;
        for seq in 0..total {
            let event = random_event(&mut rng, seq);
            if event.kind == EventKind::Learn {
                expect_learn += 1;
            }
            store.append(&event);
        }
        assert!(store.counters().gc_chunks > 0, "seed {seed}: GC never ran");

        // The raw scan has forgotten the evicted rows; the rollup answer
        // still accounts for every appended event.
        let rolled = store.query(
            &ObsQuery::all().with_kinds(&[EventKind::Learn]).with_resolution(Resolution::Rollup),
        );
        assert_eq!(
            rolled.aggregates.matched, expect_learn,
            "seed {seed}: rollups lost GC'd history"
        );
        let raw = store.query(&ObsQuery::all().with_kinds(&[EventKind::Learn]));
        assert!(
            raw.aggregates.matched <= expect_learn,
            "seed {seed}: raw scan overcounted"
        );
    }
}
