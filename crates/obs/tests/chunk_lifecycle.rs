//! Property test for the chunk lifecycle: append → seal → GC → range query
//! must return exactly the events inside the window, in time order, at any
//! seed.
//!
//! The test mirrors the store's documented retention rule with a naive
//! row-vector model and compares the real store's query output against the
//! model's across many randomized runs. No RNG dependency exists in the
//! workspace, so a small xorshift generator lives inline.

use ofscil_obs::{Event, EventKind, ObsConfig, ObsQuery, ObsStore, EVENT_BYTES};

/// xorshift64* — tiny, deterministic, good enough to shake out ordering and
/// boundary bugs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// The naive model: a flat list of rows plus a replay of the store's exact
/// seal/GC rule, so surviving rows can be predicted without peeking at the
/// store's internals.
struct Model {
    chunk_events: usize,
    byte_budget: usize,
    /// Sealed chunks as row lists, each sorted by `(time_us, seq)`.
    sealed: Vec<Vec<Event>>,
    active: Vec<Event>,
}

impl Model {
    fn new(chunk_events: usize, byte_budget: usize) -> Model {
        Model { chunk_events, byte_budget, sealed: Vec::new(), active: Vec::new() }
    }

    fn append(&mut self, event: Event) {
        self.active.push(event);
        if self.active.len() >= self.chunk_events {
            self.seal();
        }
    }

    fn seal(&mut self) {
        if !self.active.is_empty() {
            let mut chunk = std::mem::take(&mut self.active);
            chunk.sort_by_key(Event::order_key);
            self.sealed.push(chunk);
        }
        self.gc();
    }

    fn resident(&self) -> usize {
        self.active.len() + self.sealed.iter().map(Vec::len).sum::<usize>()
    }

    fn gc(&mut self) {
        while self.resident() * EVENT_BYTES > self.byte_budget && !self.sealed.is_empty() {
            let oldest = self
                .sealed
                .iter()
                .enumerate()
                .min_by_key(|(i, chunk)| (chunk[0].time_us, *i))
                .map(|(i, _)| i)
                .unwrap();
            self.sealed.remove(oldest);
        }
    }

    fn query(&self, query: &ObsQuery) -> Vec<Event> {
        let mut rows: Vec<Event> = self
            .sealed
            .iter()
            .flatten()
            .chain(self.active.iter())
            .filter(|e| {
                (query.deployment.is_empty() || e.deployment == query.deployment)
                    && query.matches_windows(e.time_us, e.seq)
                    && query.matches_kind_code(e.kind.code())
            })
            .cloned()
            .collect();
        rows.sort_by_key(Event::order_key);
        rows.truncate(query.limit as usize);
        rows
    }
}

const DEPLOYMENTS: [&str; 3] = ["tenant-a", "tenant-b", "shard:0"];

fn random_event(rng: &mut Rng, seq: u64) -> Event {
    let kind = ofscil_obs::EventKind::from_code(
        rng.below(ofscil_obs::EventKind::ALL.len() as u64) as u8,
    )
    .unwrap();
    let deployment = DEPLOYMENTS[rng.below(3) as usize];
    // Clustered timestamps with deliberate collisions: unique seqs (the
    // append index) make `(time, seq)` a total order regardless.
    Event::new(kind, deployment)
        .with_time_us(1_000 + rng.below(200))
        .with_seq(seq)
        .with_energy_mj(rng.below(1000) as f64 / 100.0)
        .with_latency_us(rng.below(5_000))
        .with_accuracy(if rng.below(4) == 0 {
            f32::NAN
        } else {
            (rng.below(1000) as f32) / 1000.0
        })
        .with_wal_bytes(rng.below(1 << 20))
}

fn assert_query_matches_model(store: &ObsStore, model: &Model, query: &ObsQuery, seed: u64) {
    let got = store.query(query);
    let want = model.query(query);
    assert_eq!(
        got.events.len(),
        want.len(),
        "seed {seed}: row count diverged for {query:?}"
    );
    for (g, w) in got.events.iter().zip(&want) {
        // NaN accuracies ("not applicable") compare unequal under a derived
        // PartialEq; treat NaN == NaN here.
        let accuracy_matches = (g.accuracy.is_nan() && w.accuracy.is_nan())
            || g.accuracy == w.accuracy;
        let rest_matches = g.deployment == w.deployment
            && g.kind == w.kind
            && g.seq == w.seq
            && g.time_us == w.time_us
            && g.energy_mj == w.energy_mj
            && g.latency_us == w.latency_us
            && g.wal_bytes == w.wal_bytes;
        assert!(
            accuracy_matches && rest_matches,
            "seed {seed}: row diverged for {query:?}\n  got: {g:?}\n want: {w:?}"
        );
    }
    // Time order is part of the contract, independent of the model.
    assert!(
        got.events.windows(2).all(|w| w[0].order_key() <= w[1].order_key()),
        "seed {seed}: result not time-ordered"
    );
}

#[test]
fn append_seal_gc_query_matches_naive_model_at_any_seed() {
    for seed in 1..=40u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Small chunks and a tight budget so every run seals and GCs.
        let chunk_events = 4 + rng.below(12) as usize;
        let byte_budget = (20 + rng.below(60) as usize) * EVENT_BYTES;
        let store = ObsStore::new(
            ObsConfig::default()
                .with_chunk_events(chunk_events)
                .with_byte_budget(byte_budget),
        );
        let mut model = Model::new(chunk_events, byte_budget);

        let total = 50 + rng.below(150);
        for seq in 0..total {
            let event = random_event(&mut rng, seq);
            store.append(&event);
            model.append(event);
        }

        // Model and store must agree on what GC kept.
        let counters = store.counters();
        assert_eq!(
            counters.resident_events as usize,
            model.resident(),
            "seed {seed}: survivor count diverged"
        );
        assert_eq!(counters.appended, total, "seed {seed}: appended miscounted");

        // A battery of random windows plus the classic boundary shapes.
        let queries = [
            ObsQuery::all(),
            ObsQuery::deployment("tenant-a"),
            ObsQuery::deployment("absent"),
            ObsQuery::all().with_time_range(1_050, 1_150),
            ObsQuery::all().with_time_range(1_100, 1_100),
            ObsQuery::deployment("tenant-b")
                .with_seq_range(total / 4, 3 * total / 4)
                .with_kinds(&[EventKind::Infer, EventKind::Learn]),
            ObsQuery::all().with_limit(7),
            ObsQuery::all().with_time_range(
                1_000 + rng.below(200),
                1_000 + rng.below(200),
            ),
        ];
        for query in &queries {
            assert_query_matches_model(&store, &model, query, seed);
        }

        // Sealing the tail (and any GC it triggers) must track the model.
        store.seal();
        model.seal();
        assert_query_matches_model(&store, &model, &ObsQuery::all(), seed);
    }
}
