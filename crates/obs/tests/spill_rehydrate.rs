//! The adopt path of durable spill, in-crate: sealed chunks captured by a
//! [`ChunkSpill`] and re-adopted into a fresh store reproduce the pre-kill
//! timeline **byte-identically** — every field of every event compared by
//! bits, NaN accuracy included. The disk half (record codec, torn tails,
//! budget GC) lives in `ofscil_store`; this holds the in-memory contract
//! the store half builds on.

use ofscil_obs::{ChunkSpill, Event, EventKind, ObsConfig, ObsQuery, ObsStore};
use std::sync::{Arc, Mutex};

/// xorshift64* — deterministic streams without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn random_event(rng: &mut Rng, i: u64) -> Event {
    let kinds = EventKind::ALL;
    let kind = kinds[rng.below(kinds.len() as u64) as usize];
    let accuracy = if rng.below(4) == 0 { f32::NAN } else { rng.below(65) as f32 / 64.0 };
    Event::new(kind, &format!("tenant-{}", rng.below(3)))
        .with_seq(i)
        .with_time_us(i * 1_000 + rng.below(500))
        .with_energy_mj(rng.below(16) as f64 * 0.25)
        .with_latency_us(rng.below(1_000))
        .with_accuracy(accuracy)
        .with_wal_bytes(rng.below(4_096))
}

fn bits(event: &Event) -> (String, u8, u64, u64, u64, u64, u32, u64) {
    (
        event.deployment.clone(),
        event.kind.code(),
        event.seq,
        event.time_us,
        event.energy_mj.to_bits(),
        event.latency_us,
        event.accuracy.to_bits(),
        event.wal_bytes,
    )
}

/// Captures sealed chunks in memory — the test double for the disk spill.
#[derive(Debug, Default)]
struct MemSpill {
    chunks: Mutex<Vec<Vec<Event>>>,
}

impl ChunkSpill for MemSpill {
    fn spill_chunk(&self, events: &[Event]) {
        self.chunks.lock().unwrap().push(events.to_vec());
    }
}

#[test]
fn adopted_chunks_reproduce_the_sealed_window_byte_identically() {
    const CHUNK: usize = 16;
    const TOTAL: u64 = 100; // 6 sealed chunks + 4 events lost with the kill

    let reference = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    let spill = Arc::new(MemSpill::default());
    let observed = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    observed.set_spill(Arc::clone(&spill) as Arc<dyn ChunkSpill>);

    let mut rng = Rng(0xfeed);
    let sealed = TOTAL as usize / CHUNK * CHUNK;
    let mut pre_kill_max_time = 0u64;
    for i in 0..TOTAL {
        let event = random_event(&mut rng, i);
        reference.append(&event);
        observed.append(&event);
        if (i as usize) < sealed {
            pre_kill_max_time = pre_kill_max_time.max(event.time_us);
        }
    }
    drop(observed); // the kill: the active chunk was never sealed

    let captured = spill.chunks.lock().unwrap().clone();
    assert_eq!(captured.len(), sealed / CHUNK, "one capture per sealed chunk");

    let reborn = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    for chunk in &captured {
        reborn.adopt_chunk(chunk);
    }
    // Adoption must not echo back into the spill — a restart loop would
    // otherwise duplicate every chunk once per generation.
    assert_eq!(spill.chunks.lock().unwrap().len(), captured.len());

    let window = ObsQuery::all().with_time_range(0, pre_kill_max_time);
    let want = reference.query(&window);
    let got = reborn.query(&window);
    assert_eq!(want.events.len(), got.events.len());
    assert_eq!(want.events.len(), sealed);
    for (w, g) in want.events.iter().zip(&got.events) {
        assert_eq!(bits(w), bits(g), "adopted event diverged from the reference");
    }
    assert_eq!(want.aggregates.matched, got.aggregates.matched);
    assert_eq!(
        want.aggregates.energy_mj.sum.to_bits(),
        got.aggregates.energy_mj.sum.to_bits()
    );
}
