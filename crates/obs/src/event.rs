//! The event schema: one row per thing the cluster did.

/// What happened. The discriminants double as wire codes and as bit
/// positions in a query's kind mask ([`EventKind::bit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// One served inference (per item, even inside a coalesced batch).
    Infer,
    /// One committed `LearnOnline`.
    Learn,
    /// One admission rejection (budget refusal, including deferrals settled
    /// as rejections at shutdown).
    Reject,
    /// One accepted energy-budget top-up.
    TopUp,
    /// A durable checkpoint advanced (store-backed servers only).
    Checkpoint,
    /// A live migration moved the deployment between shards (router).
    Migration,
    /// A shard's circuit breaker opened (router; the "deployment" is the
    /// pseudo-name `shard:N`).
    BreakerOpen,
    /// A shard's circuit breaker closed again (router).
    BreakerClose,
    /// A follower was promoted to a writable primary.
    Promotion,
    /// A follower fell behind its replication stream and re-anchored from a
    /// fresh snapshot (`seq` is the sequence it re-anchored to).
    Resync,
    /// A follower applied one replicated commit (`seq` is the commit's
    /// replication sequence number) — the heartbeat a replication-lag
    /// timeline is read from.
    ReplApply,
    /// The control plane executed a `PromoteFollower` action (the
    /// "deployment" is the pseudo-name `shard:N`; `seq` is the controller
    /// tick, `latency_us` the breaker dwell that triggered it, and
    /// `energy_mj` the shard's trailing request load at decision time).
    CtrlPromote,
    /// The control plane executed a `RestartFromStore` action (same field
    /// encoding as [`EventKind::CtrlPromote`]).
    CtrlRestart,
    /// The control plane executed a `RebalanceHot` action (the "deployment"
    /// is the migrated tenant; `seq` is the controller tick, `latency_us`
    /// the source shard id, `wal_bytes` the target shard id, and
    /// `energy_mj` the tenant's trailing request load at decision time).
    CtrlRebalance,
    /// An observability pipeline started shedding events after a clean
    /// period — emitted **once per drop window** (transition-only, like
    /// breaker open/close), so silent drop windows are visible in the
    /// timeline itself. The "deployment" is the overflowing pipeline's
    /// pseudo-name (`obs:sink` for the intake channel, `tail:N` for a live
    /// tail subscriber); `seq` is the pipeline's total dropped count at the
    /// transition.
    SinkOverflow,
}

impl EventKind {
    /// Every kind, in code order.
    pub const ALL: [EventKind; 15] = [
        EventKind::Infer,
        EventKind::Learn,
        EventKind::Reject,
        EventKind::TopUp,
        EventKind::Checkpoint,
        EventKind::Migration,
        EventKind::BreakerOpen,
        EventKind::BreakerClose,
        EventKind::Promotion,
        EventKind::Resync,
        EventKind::ReplApply,
        EventKind::CtrlPromote,
        EventKind::CtrlRestart,
        EventKind::CtrlRebalance,
        EventKind::SinkOverflow,
    ];

    /// The stable storage/wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            EventKind::Infer => 0,
            EventKind::Learn => 1,
            EventKind::Reject => 2,
            EventKind::TopUp => 3,
            EventKind::Checkpoint => 4,
            EventKind::Migration => 5,
            EventKind::BreakerOpen => 6,
            EventKind::BreakerClose => 7,
            EventKind::Promotion => 8,
            EventKind::Resync => 9,
            EventKind::ReplApply => 10,
            EventKind::CtrlPromote => 11,
            EventKind::CtrlRestart => 12,
            EventKind::CtrlRebalance => 13,
            EventKind::SinkOverflow => 14,
        }
    }

    /// Inverse of [`EventKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<EventKind> {
        EventKind::ALL.get(code as usize).copied()
    }

    /// This kind's bit in a query's kind mask.
    pub fn bit(self) -> u16 {
        1 << self.code()
    }

    /// A short human-readable label (for timeline printouts).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Infer => "infer",
            EventKind::Learn => "learn",
            EventKind::Reject => "reject",
            EventKind::TopUp => "top-up",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Migration => "migration",
            EventKind::BreakerOpen => "breaker-open",
            EventKind::BreakerClose => "breaker-close",
            EventKind::Promotion => "promotion",
            EventKind::Resync => "resync",
            EventKind::ReplApply => "repl-apply",
            EventKind::CtrlPromote => "ctrl-promote",
            EventKind::CtrlRestart => "ctrl-restart",
            EventKind::CtrlRebalance => "ctrl-rebalance",
            EventKind::SinkOverflow => "sink-overflow",
        }
    }
}

/// One observability sample — the row form of what the store holds
/// column-per-field.
///
/// Fields that do not apply to a kind keep their neutral value: `seq` 0,
/// `energy_mj` 0, `latency_us` 0, `wal_bytes` 0, and `accuracy` **NaN**
/// (aggregates skip non-finite accuracies, so "not applicable" never drags a
/// mean down).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Deployment the event belongs to (interned to a `u32` id in storage).
    /// Router-level shard events use the pseudo-name `shard:N`.
    pub deployment: String,
    /// What happened.
    pub kind: EventKind,
    /// Replication/commit sequence number, when the event has one.
    pub seq: u64,
    /// Monotonic microseconds since the Unix epoch, stamped by the emitting
    /// process's [`ObsClock`](crate::ObsClock) at [`emit`](crate::EventSink::emit) time.
    pub time_us: u64,
    /// Energy attributed to the event, in millijoules (amortized per item
    /// for coalesced batches).
    pub energy_mj: f64,
    /// Wall-clock latency of the work, in microseconds.
    pub latency_us: u64,
    /// Accuracy proxy (the prediction's cosine similarity for `Infer`);
    /// NaN when not applicable.
    pub accuracy: f32,
    /// Write-ahead-log size after the event, for `Checkpoint` rows.
    pub wal_bytes: u64,
}

impl Event {
    /// A new event with neutral field values (see the struct docs).
    pub fn new(kind: EventKind, deployment: &str) -> Event {
        Event {
            deployment: deployment.to_string(),
            kind,
            seq: 0,
            time_us: 0,
            energy_mj: 0.0,
            latency_us: 0,
            accuracy: f32::NAN,
            wal_bytes: 0,
        }
    }

    /// Sets the sequence number (builder style).
    #[must_use]
    pub fn with_seq(mut self, seq: u64) -> Event {
        self.seq = seq;
        self
    }

    /// Sets the explicit timestamp (builder style). [`EventSink::emit`]
    /// overwrites it; use [`EventSink::emit_at`] to keep it.
    ///
    /// [`EventSink::emit`]: crate::EventSink::emit
    /// [`EventSink::emit_at`]: crate::EventSink::emit_at
    #[must_use]
    pub fn with_time_us(mut self, time_us: u64) -> Event {
        self.time_us = time_us;
        self
    }

    /// Sets the energy cost (builder style).
    #[must_use]
    pub fn with_energy_mj(mut self, energy_mj: f64) -> Event {
        self.energy_mj = energy_mj;
        self
    }

    /// Sets the latency (builder style).
    #[must_use]
    pub fn with_latency_us(mut self, latency_us: u64) -> Event {
        self.latency_us = latency_us;
        self
    }

    /// Sets the accuracy proxy (builder style).
    #[must_use]
    pub fn with_accuracy(mut self, accuracy: f32) -> Event {
        self.accuracy = accuracy;
        self
    }

    /// Sets the WAL size (builder style).
    #[must_use]
    pub fn with_wal_bytes(mut self, wal_bytes: u64) -> Event {
        self.wal_bytes = wal_bytes;
        self
    }

    /// The ordering key of the store and of merged query results: time
    /// first, sequence number as the tiebreaker.
    pub fn order_key(&self) -> (u64, u64) {
        (self.time_us, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip_and_bits_are_distinct() {
        let mut mask: u16 = 0;
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.code() as usize, i);
            assert_eq!(EventKind::from_code(kind.code()), Some(*kind));
            assert_eq!(mask & kind.bit(), 0, "bit collision at {kind:?}");
            mask |= kind.bit();
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EventKind::from_code(15), None);
        assert_eq!(EventKind::from_code(255), None);
    }

    #[test]
    fn new_event_is_neutral() {
        let event = Event::new(EventKind::Reject, "t");
        assert_eq!(event.seq, 0);
        assert_eq!(event.energy_mj, 0.0);
        assert!(event.accuracy.is_nan());
        let event = event.with_seq(7).with_energy_mj(1.5).with_accuracy(0.5);
        assert_eq!(event.order_key(), (0, 7));
        assert_eq!(event.accuracy, 0.5);
    }
}
