//! Log-bucketed latency histograms: fixed power-of-2 buckets, so p50/p99
//! estimates cost 32 counters per event kind instead of retained samples.

/// Number of buckets in a [`LatencyHistogram`]. Bucket 0 holds exact zeros,
/// bucket `i ≥ 1` holds latencies in `[2^(i-1), 2^i)` microseconds, and the
/// last bucket absorbs everything from `2^30` µs (~18 minutes) up.
pub const LATENCY_BUCKETS: usize = 32;

/// A fixed-size power-of-2 latency histogram.
///
/// Recording is one increment, merging is bucket-wise addition (so per-shard
/// histograms sum into a cluster histogram without loss), and quantiles come
/// back as the **upper bound** of the bucket holding the requested rank — a
/// conservative estimate whose error is bounded by the bucket width (at most
/// 2× the true value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket counts; see [`LATENCY_BUCKETS`] for the bucket layout.
    pub counts: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn empty() -> LatencyHistogram {
        LatencyHistogram { counts: [0; LATENCY_BUCKETS] }
    }

    /// The bucket index a latency falls in.
    pub fn bucket_of(latency_us: u64) -> usize {
        if latency_us == 0 {
            return 0;
        }
        let log2 = 63 - latency_us.leading_zeros() as usize;
        (log2 + 1).min(LATENCY_BUCKETS - 1)
    }

    /// The inclusive upper bound of a bucket, in microseconds — what
    /// quantiles report. The last bucket is unbounded and reports its lower
    /// bound to stay finite.
    pub fn bucket_bound_us(bucket: usize) -> u64 {
        if bucket >= LATENCY_BUCKETS - 1 {
            1 << (LATENCY_BUCKETS - 2)
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Counts one latency sample.
    pub fn record(&mut self, latency_us: u64) {
        self.counts[LatencyHistogram::bucket_of(latency_us)] += 1;
    }

    /// Folds another histogram in, bucket-wise.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        // Rank of the wanted sample, 1-based, clamped into the population.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LatencyHistogram::bucket_bound_us(bucket);
            }
        }
        LatencyHistogram::bucket_bound_us(LATENCY_BUCKETS - 1)
    }

    /// Median estimate (bucket upper bound), microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile estimate (bucket upper bound), microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two_with_a_zero_bucket() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        // Every bucket's bound sits just under the next bucket's first value.
        for bucket in 1..LATENCY_BUCKETS - 1 {
            assert_eq!(
                LatencyHistogram::bucket_of(LatencyHistogram::bucket_bound_us(bucket)),
                bucket
            );
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LatencyHistogram::empty();
        assert_eq!(h.p50_us(), 0);
        for _ in 0..98 {
            h.record(100); // bucket 7, bound 127
        }
        h.record(5_000); // bucket 13, bound 8191
        h.record(70_000); // bucket 17, bound 131071
        assert_eq!(h.total(), 100);
        assert_eq!(h.p50_us(), 127);
        assert_eq!(h.p99_us(), 8_191);
        assert_eq!(h.quantile_us(1.0), 131_071);

        // Merging is bucket-wise, so a merged histogram answers like one
        // that saw both populations.
        let mut other = LatencyHistogram::empty();
        for _ in 0..300 {
            other.record(70_000);
        }
        h.merge(&other);
        assert_eq!(h.total(), 400);
        assert_eq!(h.p50_us(), 131_071);
    }
}
