//! Range scans and aggregates over the columnar store.

use crate::event::{Event, EventKind};
use crate::histogram::LatencyHistogram;
use crate::rollup::{Rollup, ROLLUP_BUCKET_US};
use crate::tail::ObsCursor;

/// Default cap on the number of events a query materializes. Aggregates are
/// always computed over **every** matching row; the cap only bounds the
/// returned event list.
pub const DEFAULT_EVENT_LIMIT: u32 = 4096;

/// How wide an [`Resolution::Auto`] query's trailing raw window is: the
/// last 10 rollup buckets are served as raw events, everything older as
/// rollup rows.
pub const AUTO_RAW_WINDOW_US: u64 = 10 * ROLLUP_BUCKET_US;

/// What granularity a query wants its matches materialized at.
///
/// Aggregates are identical at every resolution (rollup cells fold the same
/// values through the same [`Summary::observe`] path); the resolution only
/// decides whether the result carries raw [`Event`] rows, per-minute
/// [`Rollup`] rows, or a time-partitioned mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resolution {
    /// Raw events only (the default, and the only pre-v7 wire behavior).
    #[default]
    Raw,
    /// Per-minute rollup rows only; `events` stays empty.
    Rollup,
    /// Rollups for history, raw events for the trailing
    /// [`AUTO_RAW_WINDOW_US`] — split at a bucket boundary so no row is
    /// counted twice.
    Auto,
}

impl Resolution {
    /// The stable wire code of this resolution.
    pub fn code(self) -> u8 {
        match self {
            Resolution::Raw => 0,
            Resolution::Rollup => 1,
            Resolution::Auto => 2,
        }
    }

    /// Inverse of [`Resolution::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Resolution> {
        match code {
            0 => Some(Resolution::Raw),
            1 => Some(Resolution::Rollup),
            2 => Some(Resolution::Auto),
            _ => None,
        }
    }
}

/// A range scan: deployment, time window, sequence window, kind mask.
///
/// All windows are inclusive. An empty deployment string matches every
/// deployment; a zero kind mask matches every kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsQuery {
    /// Deployment to scan; empty for all. This leads the wire encoding so a
    /// router can peek it like any other request's routing key.
    pub deployment: String,
    /// Earliest matching [`Event::time_us`].
    pub time_min: u64,
    /// Latest matching [`Event::time_us`].
    pub time_max: u64,
    /// Smallest matching [`Event::seq`].
    pub seq_min: u64,
    /// Largest matching [`Event::seq`].
    pub seq_max: u64,
    /// OR of [`EventKind::bit`]s to match; 0 matches every kind.
    pub kinds: u16,
    /// Maximum events returned (earliest first); excess rows still count in
    /// the aggregates and set [`ObsResult::truncated`]. 0 is a pure
    /// aggregate query.
    pub limit: u32,
    /// Granularity of the materialized rows. Sequence windows apply to raw
    /// events only — rollup cells no longer carry per-event sequence
    /// numbers, so a narrowed `seq` window should be paired with
    /// [`Resolution::Raw`].
    pub resolution: Resolution,
}

impl ObsQuery {
    /// Matches everything.
    pub fn all() -> ObsQuery {
        ObsQuery {
            deployment: String::new(),
            time_min: 0,
            time_max: u64::MAX,
            seq_min: 0,
            seq_max: u64::MAX,
            kinds: 0,
            limit: DEFAULT_EVENT_LIMIT,
            resolution: Resolution::Raw,
        }
    }

    /// Matches everything for one deployment.
    pub fn deployment(name: &str) -> ObsQuery {
        ObsQuery { deployment: name.to_string(), ..ObsQuery::all() }
    }

    /// Restricts the time window (builder style, inclusive).
    #[must_use]
    pub fn with_time_range(mut self, min_us: u64, max_us: u64) -> ObsQuery {
        self.time_min = min_us;
        self.time_max = max_us;
        self
    }

    /// Restricts the sequence window (builder style, inclusive).
    #[must_use]
    pub fn with_seq_range(mut self, min: u64, max: u64) -> ObsQuery {
        self.seq_min = min;
        self.seq_max = max;
        self
    }

    /// Restricts the matched kinds (builder style).
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[EventKind]) -> ObsQuery {
        self.kinds = kinds.iter().fold(0, |mask, kind| mask | kind.bit());
        self
    }

    /// Sets the returned-event cap (builder style).
    #[must_use]
    pub fn with_limit(mut self, limit: u32) -> ObsQuery {
        self.limit = limit;
        self
    }

    /// Sets the materialization granularity (builder style).
    #[must_use]
    pub fn with_resolution(mut self, resolution: Resolution) -> ObsQuery {
        self.resolution = resolution;
        self
    }

    /// Whether a kind code passes the mask.
    pub fn matches_kind_code(&self, code: u8) -> bool {
        self.kinds == 0 || (code < 16 && self.kinds & (1u16 << code) != 0)
    }

    /// Whether a `(time_us, seq)` pair falls inside both windows.
    pub fn matches_windows(&self, time_us: u64, seq: u64) -> bool {
        time_us >= self.time_min
            && time_us <= self.time_max
            && seq >= self.seq_min
            && seq <= self.seq_max
    }
}

impl Default for ObsQuery {
    fn default() -> Self {
        ObsQuery::all()
    }
}

/// Running min/max/sum/count over one numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observed values.
    pub count: u64,
}

impl Summary {
    /// An empty summary.
    pub fn empty() -> Summary {
        Summary { min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0, count: 0 }
    }

    /// Folds one finite value in; non-finite values (a "not applicable"
    /// NaN accuracy) are skipped.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.count += 1;
    }

    /// Folds another summary in (for merging shard results).
    pub fn merge(&mut self, other: &Summary) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Mean of the observed values; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::empty()
    }
}

/// Aggregates over every row a query matched — including rows past the
/// event-list cap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsAggregates {
    /// Rows matched.
    pub matched: u64,
    /// Energy column, millijoules.
    pub energy_mj: Summary,
    /// Latency column, microseconds.
    pub latency_us: Summary,
    /// Accuracy column; NaN rows ("not applicable") are skipped, so
    /// `accuracy.count` can be below `matched`.
    pub accuracy: Summary,
}

impl ObsAggregates {
    /// Folds one matching event in.
    pub fn observe(&mut self, event: &Event) {
        self.matched += 1;
        self.energy_mj.observe(event.energy_mj);
        self.latency_us.observe(event.latency_us as f64);
        self.accuracy.observe(f64::from(event.accuracy));
    }

    /// Folds another aggregate in.
    pub fn merge(&mut self, other: &ObsAggregates) {
        self.matched += other.matched;
        self.energy_mj.merge(&other.energy_mj);
        self.latency_us.merge(&other.latency_us);
        self.accuracy.merge(&other.accuracy);
    }
}

/// What a query returned — from one store, or merged across a cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsResult {
    /// Matching events in `(time_us, seq)` order, capped at the query's
    /// limit (earliest first).
    pub events: Vec<Event>,
    /// Downsampled rows for the query's rollup-resolution span, in
    /// `(bucket, deployment, kind)` order; empty at [`Resolution::Raw`].
    pub rollups: Vec<Rollup>,
    /// Aggregates over **all** matching rows, capped by nothing.
    pub aggregates: ObsAggregates,
    /// `true` when `events` was cut short by the limit.
    pub truncated: bool,
    /// Events ever appended to the answering store(s) — a completeness
    /// denominator, not a match count.
    pub appended: u64,
    /// Events the answering pipeline(s) shed under backpressure.
    pub dropped: u64,
    /// Sources that answered (1 for a single store; the router sums).
    pub shards_ok: u32,
    /// Sources that could not be reached.
    pub shards_err: u32,
    /// The answering store's **lifetime** latency histogram over the
    /// query's kind mask (per-store counter like `appended`, not scoped by
    /// the query's windows or deployment; merged bucket-wise across
    /// shards). Quantiles via [`LatencyHistogram::p50_us`] /
    /// [`LatencyHistogram::p99_us`].
    pub latency_hist: LatencyHistogram,
}

/// Sorts events into the `(time_us, seq)` timeline order — deployment,
/// kind, then raw payload bits breaking ties purely so identical rows land
/// adjacent — and removes **bit-exact duplicate rows**, invoking `on_dup`
/// with every row removed.
///
/// This is the row identity behind [`ObsResult::merge`]'s dedup: a retried
/// scatter leg (or a tail resume overlapping its back-fill) re-delivers
/// rows identical in every field, NaN payload bits included, so comparing
/// bits removes exactly those while distinct same-microsecond events
/// survive. Routers reuse it directly when splicing tail legs into one
/// stream.
pub fn sort_dedup_events(events: &mut Vec<Event>, mut on_dup: impl FnMut(&Event)) {
    events.sort_by(|a, b| {
        a.order_key()
            .cmp(&b.order_key())
            .then_with(|| a.deployment.cmp(&b.deployment))
            .then_with(|| a.kind.code().cmp(&b.kind.code()))
            .then_with(|| a.energy_mj.to_bits().cmp(&b.energy_mj.to_bits()))
            .then_with(|| a.latency_us.cmp(&b.latency_us))
            .then_with(|| a.accuracy.to_bits().cmp(&b.accuracy.to_bits()))
            .then_with(|| a.wal_bytes.cmp(&b.wal_bytes))
    });
    let mut deduped: Vec<Event> = Vec::with_capacity(events.len());
    for event in events.drain(..) {
        if deduped.last().is_some_and(|prev| {
            prev.time_us == event.time_us
                && prev.seq == event.seq
                && prev.kind == event.kind
                && prev.deployment == event.deployment
                && prev.energy_mj.to_bits() == event.energy_mj.to_bits()
                && prev.latency_us == event.latency_us
                && prev.accuracy.to_bits() == event.accuracy.to_bits()
                && prev.wal_bytes == event.wal_bytes
        }) {
            on_dup(&event);
        } else {
            deduped.push(event);
        }
    }
    *events = deduped;
}

impl ObsResult {
    /// Merges per-shard results into one timeline: events re-sorted by
    /// `(time_us, seq)` and re-capped at `limit`, aggregates and counters
    /// summed, rollup cells absorbed by `(bucket, deployment, kind)` key.
    /// This is the stitch that makes a migrated tenant's history whole
    /// again.
    ///
    /// Identical `(deployment, time_us, seq, kind)` event rows — the
    /// signature of a retried scatter-gather leg answering twice — are
    /// deduplicated, and the duplicate's contribution is retracted from the
    /// aggregates so a retry cannot double-count. Duplicates hidden past a
    /// part's truncated event list are undetectable; `truncated` flags that
    /// the guarantee weakened.
    pub fn merge(parts: Vec<ObsResult>, limit: usize) -> ObsResult {
        let mut merged = ObsResult::default();
        let mut cells: Vec<Rollup> = Vec::new();
        for part in parts {
            merged.aggregates.merge(&part.aggregates);
            merged.truncated |= part.truncated;
            merged.appended += part.appended;
            merged.dropped += part.dropped;
            merged.shards_ok += part.shards_ok;
            merged.shards_err += part.shards_err;
            // Like `appended`, the histogram is a per-store counter: it sums
            // across parts (a retried leg counts twice, same as `appended`).
            merged.latency_hist.merge(&part.latency_hist);
            merged.events.extend(part.events);
            cells.extend(part.rollups);
        }
        let aggregates = &mut merged.aggregates;
        sort_dedup_events(&mut merged.events, |event| {
            aggregates.matched -= 1;
            retract(&mut aggregates.energy_mj, event.energy_mj);
            retract(&mut aggregates.latency_us, event.latency_us as f64);
            retract(&mut aggregates.accuracy, f64::from(event.accuracy));
        });
        if merged.events.len() > limit {
            merged.events.truncate(limit);
            merged.truncated = true;
        }
        // Rollup cells with the same key from different shards are
        // complementary slices of the same minute — absorb, don't drop.
        cells.sort_by_key(|a| a.key());
        for cell in cells {
            match merged.rollups.last_mut() {
                Some(prev) if prev.key() == cell.key() => prev.absorb(&cell),
                _ => merged.rollups.push(cell),
            }
        }
        if merged.rollups.len() > limit {
            merged.rollups.truncate(limit);
            merged.truncated = true;
        }
        merged
    }

    /// Drops every event at or before `cursor`, retracting each trimmed
    /// row's contribution from the aggregates — the resume-cursor trim a
    /// tail back-fill applies so a reconnecting subscriber only receives
    /// rows **strictly after** the last one it consumed.
    ///
    /// Rollup cells are left untouched: they are bucket-granular, and a
    /// cell overlapping the cursor's minute cannot be split. A splice that
    /// mixes trimmed raw rows with rollup history therefore stays exact on
    /// events and bucket-coarse on rollups.
    pub fn retain_after(&mut self, cursor: ObsCursor) {
        let aggregates = &mut self.aggregates;
        self.events.retain(|event| {
            if event.order_key() > cursor.key() {
                return true;
            }
            aggregates.matched -= 1;
            retract(&mut aggregates.energy_mj, event.energy_mj);
            retract(&mut aggregates.latency_us, event.latency_us as f64);
            retract(&mut aggregates.accuracy, f64::from(event.accuracy));
            false
        });
    }
}

/// Removes one previously-observed value from a summary's sum and count.
/// Min/max stay valid because the retracted row was identical to one that
/// remains.
fn retract(summary: &mut Summary, value: f64) {
    if value.is_finite() {
        summary.sum -= value;
        summary.count -= 1;
    }
}

/// Per-deployment load inside one trailing window of an [`ObsResult`] —
/// what a control plane reads to find hot tenants and shard skew.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentRate {
    /// The deployment.
    pub deployment: String,
    /// `Infer` + `Learn` events inside the window.
    pub requests: u64,
    /// Millijoules those events spent.
    pub energy_mj: f64,
}

/// Folds request events (`Infer` + `Learn`) into per-deployment counts and
/// energy totals over the **trailing** `window_us` microseconds, measured
/// backwards from the latest event in the slice — not from the wall clock,
/// so the same events always yield the same rates (a determinism a
/// tick-driven control plane's planner depends on). Returns deployments
/// sorted by descending request count, then name, hottest first. An empty
/// slice yields an empty vector.
///
/// The free-function form of [`ObsResult::trailing_rates`], for consumers
/// that maintain their own event window — a control plane folding a live
/// tail incrementally — rather than holding an `ObsResult`.
pub fn trailing_rates_of(events: &[Event], window_us: u64) -> Vec<DeploymentRate> {
    let Some(latest) = events.iter().map(|e| e.time_us).max() else {
        return Vec::new();
    };
    let cutoff = latest.saturating_sub(window_us);
    let mut by_name: std::collections::HashMap<&str, (u64, f64)> =
        std::collections::HashMap::new();
    for event in events {
        if event.time_us < cutoff || !matches!(event.kind, EventKind::Infer | EventKind::Learn)
        {
            continue;
        }
        let entry = by_name.entry(event.deployment.as_str()).or_insert((0, 0.0));
        entry.0 += 1;
        if event.energy_mj.is_finite() {
            entry.1 += event.energy_mj;
        }
    }
    let mut rates: Vec<DeploymentRate> = by_name
        .into_iter()
        .map(|(name, (requests, energy_mj))| DeploymentRate {
            deployment: name.to_string(),
            requests,
            energy_mj,
        })
        .collect();
    rates.sort_by(|a, b| {
        b.requests.cmp(&a.requests).then_with(|| a.deployment.cmp(&b.deployment))
    });
    rates
}

impl ObsResult {
    /// [`trailing_rates_of`] over the result's events.
    pub fn trailing_rates(&self, window_us: u64) -> Vec<DeploymentRate> {
        trailing_rates_of(&self.events, window_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_skips_non_finite_and_merges() {
        let mut a = Summary::empty();
        a.observe(2.0);
        a.observe(f64::NAN);
        a.observe(4.0);
        assert_eq!((a.min, a.max, a.sum, a.count), (2.0, 4.0, 6.0, 2));
        let mut b = Summary::empty();
        b.observe(1.0);
        a.merge(&b);
        assert_eq!((a.min, a.max, a.count), (1.0, 4.0, 3));
        assert!((a.mean() - 7.0 / 3.0).abs() < 1e-12);
        assert!(Summary::empty().mean().is_nan());
    }

    #[test]
    fn kind_mask_and_windows() {
        let q = ObsQuery::all()
            .with_kinds(&[EventKind::Infer, EventKind::Migration])
            .with_time_range(10, 20)
            .with_seq_range(1, 5);
        assert!(q.matches_kind_code(EventKind::Infer.code()));
        assert!(q.matches_kind_code(EventKind::Migration.code()));
        assert!(!q.matches_kind_code(EventKind::Learn.code()));
        assert!(q.matches_windows(10, 1));
        assert!(q.matches_windows(20, 5));
        assert!(!q.matches_windows(9, 1));
        assert!(!q.matches_windows(21, 1));
        assert!(!q.matches_windows(15, 0));
        assert!(!q.matches_windows(15, 6));
        // Zero mask matches everything.
        assert!(ObsQuery::all().matches_kind_code(EventKind::Promotion.code()));
    }

    #[test]
    fn merge_restitches_order_and_recaps() {
        let event = |t: u64, seq: u64| {
            Event::new(EventKind::Infer, "t").with_time_us(t).with_seq(seq)
        };
        let mut a = ObsResult { shards_ok: 1, appended: 2, ..ObsResult::default() };
        a.events = vec![event(1, 0), event(5, 0)];
        a.aggregates.observe(&a.events[0]);
        a.aggregates.observe(&a.events[1]);
        let mut b = ObsResult { shards_ok: 1, appended: 3, dropped: 1, ..ObsResult::default() };
        b.events = vec![event(2, 0), event(3, 0), event(4, 0)];
        for e in &b.events {
            let e = e.clone();
            b.aggregates.observe(&e);
        }
        let merged = ObsResult::merge(vec![a, b], 4);
        assert_eq!(
            merged.events.iter().map(|e| e.time_us).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert!(merged.truncated);
        assert_eq!(merged.aggregates.matched, 5);
        assert_eq!((merged.appended, merged.dropped), (5, 1));
        assert_eq!((merged.shards_ok, merged.shards_err), (2, 0));
    }

    #[test]
    fn merge_dedups_retried_legs_but_keeps_distinct_twins() {
        let row = Event::new(EventKind::Learn, "t")
            .with_time_us(5)
            .with_seq(3)
            .with_energy_mj(0.5)
            .with_latency_us(40);
        let mut part = ObsResult { shards_ok: 1, appended: 1, ..ObsResult::default() };
        part.events = vec![row.clone()];
        part.aggregates.observe(&row);
        let mut cell = Rollup::new(0, "t", EventKind::Learn);
        cell.observe(&row);
        part.rollups = vec![cell];

        // The same leg answering twice: one event row survives and its
        // duplicate's contribution is retracted from the aggregates.
        let retried = part.clone();
        let merged = ObsResult::merge(vec![part.clone(), retried], 16);
        assert_eq!(merged.events.len(), 1);
        assert_eq!(merged.aggregates.matched, 1);
        assert_eq!(merged.aggregates.energy_mj.sum, 0.5);
        assert_eq!(merged.aggregates.energy_mj.count, 1);
        assert_eq!(merged.aggregates.latency_us.sum, 40.0);
        // NaN accuracy rows never entered the accuracy summary.
        assert_eq!(merged.aggregates.accuracy.count, 0);
        assert_eq!((merged.shards_ok, merged.appended), (2, 2));
        // Rollup cells with one key collapse into one absorbed cell.
        assert_eq!(merged.rollups.len(), 1);

        // A *distinct* event colliding on (deployment, time, seq, kind) but
        // differing in payload is not a retry — both rows survive.
        let mut twin_part = ObsResult { shards_ok: 1, appended: 1, ..ObsResult::default() };
        let twin = row.clone().with_energy_mj(0.25);
        twin_part.events = vec![twin.clone()];
        twin_part.aggregates.observe(&twin);
        let merged = ObsResult::merge(vec![part, twin_part], 16);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.aggregates.matched, 2);
        assert_eq!(merged.aggregates.energy_mj.sum, 0.75);
    }

    /// The resume-splice invariant: a rollup-resolution back-fill and a raw
    /// live tail meet at the cursor with no gap, no double-count and the
    /// `(time_us, seq)` order intact — the overlap row a retried leg
    /// re-delivers at the boundary collapses to one occurrence.
    #[test]
    fn merge_splices_rollup_backfill_with_raw_tail_at_the_cursor() {
        let row = |t: u64, seq: u64, e: f64| {
            Event::new(EventKind::Infer, "t")
                .with_time_us(t)
                .with_seq(seq)
                .with_energy_mj(e)
                .with_latency_us(10 * t)
        };
        // The subscriber died having consumed up to (100, 1).
        let cursor = ObsCursor { time_us: 100, seq: 1 };

        // Back-fill leg: GC took the raw rows of the old minute, so history
        // arrives as one rollup cell; the missed range after the cursor
        // comes back raw — including a pre-cursor row the time-window query
        // matched, which retain_after must trim (and retract).
        let old = [row(10, 0, 1.0), row(20, 0, 2.0)];
        let mut cell = Rollup::new(0, "t", EventKind::Infer);
        let mut backfill = ObsResult { shards_ok: 1, ..ObsResult::default() };
        for event in &old {
            cell.observe(event);
            backfill.aggregates.matched += 1;
            backfill.aggregates.energy_mj.observe(event.energy_mj);
            backfill.aggregates.latency_us.observe(event.latency_us as f64);
        }
        backfill.rollups = vec![cell];
        for event in [row(100, 1, 0.5), row(100, 2, 0.25), row(150, 0, 4.0)] {
            backfill.aggregates.observe(&event);
            backfill.events.push(event);
        }
        backfill.retain_after(cursor);
        assert_eq!(
            backfill.events.iter().map(Event::order_key).collect::<Vec<_>>(),
            vec![(100, 2), (150, 0)],
            "the row at the cursor itself is trimmed"
        );
        assert_eq!(backfill.aggregates.matched, 4);
        assert_eq!(backfill.aggregates.energy_mj.sum, 1.0 + 2.0 + 0.25 + 4.0);

        // Live leg: the registration overlapped the back-fill by one row at
        // the boundary (a reconnect retry), then saw two fresh rows.
        let mut live = ObsResult { shards_ok: 1, ..ObsResult::default() };
        for event in [row(150, 0, 4.0), row(200, 0, 8.0), row(250, 3, 16.0)] {
            live.aggregates.observe(&event);
            live.events.push(event);
        }

        let merged = ObsResult::merge(vec![backfill, live], 64);
        // No gap, no duplicate, order preserved across the splice point.
        assert_eq!(
            merged.events.iter().map(Event::order_key).collect::<Vec<_>>(),
            vec![(100, 2), (150, 0), (200, 0), (250, 3)]
        );
        // Aggregates count the rolled-up history once and each raw row once
        // — the boundary overlap was retracted.
        assert_eq!(merged.aggregates.matched, 2 + 4);
        assert_eq!(
            merged.aggregates.energy_mj.sum,
            1.0 + 2.0 + 0.25 + 4.0 + 8.0 + 16.0
        );
        // The rolled-up minute is still there, untouched by the splice.
        assert_eq!(merged.rollups.len(), 1);
        assert_eq!(merged.rollups[0].count, 2);
        assert!(!merged.truncated);
    }

    #[test]
    fn resolution_codes_roundtrip() {
        for resolution in [Resolution::Raw, Resolution::Rollup, Resolution::Auto] {
            assert_eq!(Resolution::from_code(resolution.code()), Some(resolution));
        }
        assert_eq!(Resolution::from_code(3), None);
        assert_eq!(ObsQuery::all().resolution, Resolution::Raw);
    }

    #[test]
    fn trailing_rates_window_kinds_and_order() {
        let mut result = ObsResult { shards_ok: 1, ..ObsResult::default() };
        result.events = vec![
            // Outside the trailing window (latest is 10_000, window 2_000 →
            // cutoff 8_000).
            Event::new(EventKind::Infer, "old").with_time_us(1_000).with_energy_mj(9.0),
            // Non-request kinds never count, even in-window.
            Event::new(EventKind::Migration, "cold").with_time_us(9_000),
            Event::new(EventKind::Infer, "warm").with_time_us(8_000).with_energy_mj(0.5),
            Event::new(EventKind::Learn, "hot").with_time_us(9_000).with_energy_mj(1.5),
            Event::new(EventKind::Infer, "hot").with_time_us(10_000).with_energy_mj(0.25),
            // NaN energy counts the request but not the energy.
            Event::new(EventKind::Infer, "warm").with_time_us(9_500),
        ];
        let rates = result.trailing_rates(2_000);
        assert_eq!(rates.len(), 2);
        assert_eq!((rates[0].deployment.as_str(), rates[0].requests), ("hot", 2));
        assert!((rates[0].energy_mj - 1.75).abs() < 1e-12);
        assert_eq!((rates[1].deployment.as_str(), rates[1].requests), ("warm", 2));
        assert!((rates[1].energy_mj - 0.5).abs() < 1e-12);
        // Ties break by name, and the same events always give the same
        // answer (no wall clock involved).
        assert_eq!(result.trailing_rates(2_000), rates);
        assert!(ObsResult::default().trailing_rates(1_000).is_empty());
    }
}
