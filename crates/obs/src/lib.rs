//! `ofscil_obs` — a columnar, time-indexed event store for cluster
//! observability.
//!
//! The serving stack's statistics were point-in-time counters: a
//! scatter-gather read says what the totals are *now*, but "what did tenant
//! X's accuracy, energy budget and latency do over the last hour, across a
//! migration" needs a time series. This crate is that series, built in the
//! chunked, time-sorted, garbage-collected shape of rerun's arrow store —
//! minus arrow, because the workspace builds offline:
//!
//! * [`Event`] / [`EventKind`] — the schema: one row per `Infer`, `Learn`,
//!   `Reject`, `TopUp`, `Checkpoint`, `Migration`, `BreakerOpen`/`Close` or
//!   `Promotion`, carrying deployment, sequence number, monotonic
//!   microsecond time, energy (mJ), latency (µs), accuracy and WAL bytes,
//! * [`EventSink`] — the **non-blocking** intake: a bounded channel written
//!   with `try_send`, so the serving hot path never waits on observability.
//!   Under backpressure events are dropped and counted
//!   ([`EventSink::dropped`]) — losing a sample is acceptable, stalling an
//!   inference is not,
//! * [`ObsStore`] — column-per-field chunks: an active chunk absorbs
//!   appends, seals at [`ObsConfig::chunk_events`] rows (sorted by time,
//!   then sequence number), and the oldest sealed chunks are garbage
//!   collected once the store exceeds [`ObsConfig::byte_budget`],
//! * [`ObsQuery`] / [`ObsResult`] — range scans by deployment, time window,
//!   sequence window and event-kind mask, with min/max/sum/count aggregates
//!   over energy, latency and accuracy. Results merge
//!   ([`ObsResult::merge`]), which is how a router stitches one tenant's
//!   timeline back together across the shards a migration spread it over,
//! * [`Rollup`] / [`Resolution`] — per-minute downsampled cells folded from
//!   every sealed chunk (and never GC'd), so long-horizon queries are
//!   answered from a handful of cells with aggregates exactly equal to a
//!   raw scan's; [`Resolution::Auto`] serves rollups for history and raw
//!   events for the trailing window, split at a bucket boundary,
//! * [`ChunkSpill`] — the durability seam: a hook handed every sealed
//!   chunk, implemented by `ofscil_store`'s `ObsSpill` so timelines survive
//!   kill-and-recover ([`ObsStore::adopt_chunk`] rehydrates them),
//! * [`ObsTail`] / [`ObsCursor`] — live tails: [`ObsStore::subscribe`]
//!   registers a bounded drop-and-count fan-out off the append path and
//!   back-fills everything after a resume cursor in the same atomic step,
//!   so a reconnecting subscriber splices history onto the live feed with
//!   no gaps and no duplicates; drop windows surface as transition-only
//!   [`EventKind::SinkOverflow`] rows in the timeline itself,
//! * [`LatencyHistogram`] — fixed power-of-2 latency buckets kept per
//!   event kind, merged bucket-wise across shards and read back as
//!   p50/p99,
//! * [`Obs`] — the handle gluing the three together: a sink, a store, and a
//!   detached collector thread draining one into the other.
//!
//! # Example
//!
//! ```
//! use ofscil_obs::{Event, EventKind, Obs, ObsConfig, ObsQuery};
//! use std::time::Duration;
//!
//! let obs = Obs::new(ObsConfig::default());
//! obs.sink().emit(
//!     Event::new(EventKind::Infer, "tenant-a")
//!         .with_latency_us(120)
//!         .with_energy_mj(0.5)
//!         .with_accuracy(0.93),
//! );
//! assert!(obs.flush(Duration::from_secs(1)));
//! let result = obs.query(&ObsQuery::deployment("tenant-a"));
//! assert_eq!(result.aggregates.matched, 1);
//! assert_eq!(result.dropped, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod histogram;
mod query;
mod rollup;
mod sink;
mod store;
mod tail;

pub use event::{Event, EventKind};
pub use histogram::{LatencyHistogram, LATENCY_BUCKETS};
pub use query::{
    sort_dedup_events, trailing_rates_of, DeploymentRate, ObsAggregates, ObsQuery, ObsResult,
    Resolution, Summary, AUTO_RAW_WINDOW_US, DEFAULT_EVENT_LIMIT,
};
pub use rollup::{Rollup, ROLLUP_BUCKET_US};
pub use sink::{EventSink, ObsClock};
pub use store::{ChunkSpill, ObsConfig, ObsCounters, ObsStore, EVENT_BYTES};
pub use tail::{ObsCursor, ObsTail, TailBatch};

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A live observability pipeline: a bounded [`EventSink`], a columnar
/// [`ObsStore`], and a detached collector thread draining the first into the
/// second.
///
/// Cloning is cheap and shares everything: hand clones to the serve runtime,
/// the wire server and the router and they all feed the same store. The
/// collector thread exits once every clone (and every extracted sink) has
/// been dropped.
#[derive(Debug, Clone)]
pub struct Obs {
    store: Arc<ObsStore>,
    sink: EventSink,
}

impl Obs {
    /// Builds the pipeline and spawns its collector thread.
    pub fn new(config: ObsConfig) -> Obs {
        let store = Arc::new(ObsStore::new(config.clone()));
        let (sink, events) = EventSink::bounded(config.queue_depth.max(1));
        let collector = Arc::clone(&store);
        std::thread::Builder::new()
            .name("ofscil-obs-collector".into())
            .spawn(move || {
                // Ends when every sink clone is gone — the one detached
                // thread in the workspace, owned by nothing but its channel.
                for event in events {
                    collector.append(&event);
                }
            })
            .expect("spawn obs collector thread");
        Obs { store, sink }
    }

    /// The non-blocking intake side. Clone it into anything that emits.
    pub fn sink(&self) -> &EventSink {
        &self.sink
    }

    /// The queryable store side.
    pub fn store(&self) -> &ObsStore {
        &self.store
    }

    /// Store counters plus the sink's sent/dropped totals.
    pub fn counters(&self) -> ObsCounters {
        let mut counters = self.store.counters();
        counters.sent = self.sink.sent();
        counters.dropped = self.sink.dropped();
        counters
    }

    /// Waits until everything the sink accepted so far has been appended to
    /// the store (or `timeout` elapses). Returns `true` when drained.
    ///
    /// Dropped events were never accepted, so they do not block the flush —
    /// this settles the pipeline, it does not resurrect shed samples.
    pub fn flush(&self, timeout: Duration) -> bool {
        let target = self.sink.sent();
        let deadline = Instant::now() + timeout;
        while self.store.appended() < target {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Flushes (bounded, 250 ms) and queries the store, stamping the sink's
    /// drop counter into the result so a caller can judge completeness.
    pub fn query(&self, query: &ObsQuery) -> ObsResult {
        self.flush(Duration::from_millis(250));
        let mut result = self.store.query(query);
        result.dropped = self.sink.dropped();
        result
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_flush_query_roundtrip() {
        let obs = Obs::new(ObsConfig::default());
        for i in 0..10u64 {
            obs.sink().emit(
                Event::new(EventKind::Infer, "t")
                    .with_seq(i)
                    .with_latency_us(100 + i)
                    .with_energy_mj(0.25)
                    .with_accuracy(0.9),
            );
        }
        obs.sink().emit(Event::new(EventKind::Migration, "t").with_seq(99));
        assert!(obs.flush(Duration::from_secs(5)));

        let all = obs.query(&ObsQuery::deployment("t"));
        assert_eq!(all.events.len(), 11);
        assert_eq!(all.aggregates.matched, 11);
        assert_eq!(all.dropped, 0);
        // Events come back time-ordered.
        assert!(all.events.windows(2).all(|w| w[0].order_key() <= w[1].order_key()));

        // Kind masks scope both the event list and the aggregates.
        let infers =
            obs.query(&ObsQuery::deployment("t").with_kinds(&[EventKind::Infer]));
        assert_eq!(infers.events.len(), 10);
        assert_eq!(infers.aggregates.latency_us.min, 100.0);
        assert_eq!(infers.aggregates.latency_us.max, 109.0);
        assert_eq!(infers.aggregates.accuracy.count, 10);
        // The migration row's NaN accuracy never pollutes the aggregate.
        assert_eq!(all.aggregates.accuracy.count, 10);
    }

    #[test]
    fn clones_share_one_store() {
        let obs = Obs::default();
        let clone = obs.clone();
        clone.sink().emit(Event::new(EventKind::Learn, "t").with_seq(1));
        assert!(obs.flush(Duration::from_secs(5)));
        assert_eq!(obs.counters().appended, 1);
        assert_eq!(clone.counters().appended, 1);
    }
}
