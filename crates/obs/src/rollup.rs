//! Downsampled per-minute rollup rows for long-horizon timelines.
//!
//! A [`Rollup`] is one `(minute bucket, deployment, kind)` cell holding the
//! count and the min/max/sum summaries of every event folded into it. The
//! store folds each chunk it seals into these cells, so a query over a long
//! horizon can be answered from a handful of rollup rows instead of a raw
//! scan — with aggregates **exactly** equal to the raw scan's (summaries
//! fold the same values through the same [`Summary::observe`] path, just
//! grouped differently).

use crate::event::{Event, EventKind};
use crate::query::Summary;

/// Width of one rollup bucket: a minute of microseconds.
pub const ROLLUP_BUCKET_US: u64 = 60_000_000;

/// One downsampled cell: every event of one kind, for one deployment,
/// inside one minute.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// Start of the minute bucket (`time_us - time_us % ROLLUP_BUCKET_US`).
    pub bucket_us: u64,
    /// Deployment the cell belongs to.
    pub deployment: String,
    /// Event kind the cell counts.
    pub kind: EventKind,
    /// Events folded in.
    pub count: u64,
    /// Energy column, millijoules.
    pub energy_mj: Summary,
    /// Latency column, microseconds.
    pub latency_us: Summary,
    /// Accuracy column; NaN rows are skipped, so `accuracy.count` can be
    /// below `count`.
    pub accuracy: Summary,
}

impl Rollup {
    /// The bucket a timestamp falls into.
    pub fn bucket_of(time_us: u64) -> u64 {
        time_us - time_us % ROLLUP_BUCKET_US
    }

    /// An empty cell.
    pub fn new(bucket_us: u64, deployment: &str, kind: EventKind) -> Rollup {
        Rollup {
            bucket_us,
            deployment: deployment.to_string(),
            kind,
            count: 0,
            energy_mj: Summary::empty(),
            latency_us: Summary::empty(),
            accuracy: Summary::empty(),
        }
    }

    /// Folds one event in. The caller is responsible for routing the event
    /// to the right cell; the fold itself mirrors
    /// [`ObsAggregates::observe`](crate::ObsAggregates::observe) so rollup
    /// aggregates stay exactly equal to raw-scan aggregates.
    pub fn observe(&mut self, event: &Event) {
        self.count += 1;
        self.energy_mj.observe(event.energy_mj);
        self.latency_us.observe(event.latency_us as f64);
        self.accuracy.observe(f64::from(event.accuracy));
    }

    /// Folds another cell with the same key in (for merging shard results
    /// or epoch-compacted spill rows).
    pub fn absorb(&mut self, other: &Rollup) {
        self.count += other.count;
        self.energy_mj.merge(&other.energy_mj);
        self.latency_us.merge(&other.latency_us);
        self.accuracy.merge(&other.accuracy);
    }

    /// The grouping key: bucket, then deployment, then kind code — the sort
    /// order rollup rows are returned in.
    pub fn key(&self) -> (u64, String, u8) {
        (self.bucket_us, self.deployment.clone(), self.kind.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_floors_to_the_minute() {
        assert_eq!(Rollup::bucket_of(0), 0);
        assert_eq!(Rollup::bucket_of(ROLLUP_BUCKET_US - 1), 0);
        assert_eq!(Rollup::bucket_of(ROLLUP_BUCKET_US), ROLLUP_BUCKET_US);
        assert_eq!(Rollup::bucket_of(3 * ROLLUP_BUCKET_US + 17), 3 * ROLLUP_BUCKET_US);
    }

    #[test]
    fn observe_and_absorb_match_a_flat_fold() {
        let events = [
            Event::new(EventKind::Infer, "t").with_energy_mj(0.5).with_latency_us(10),
            Event::new(EventKind::Infer, "t")
                .with_energy_mj(0.25)
                .with_latency_us(30)
                .with_accuracy(0.5),
        ];
        let mut split_a = Rollup::new(0, "t", EventKind::Infer);
        split_a.observe(&events[0]);
        let mut split_b = Rollup::new(0, "t", EventKind::Infer);
        split_b.observe(&events[1]);
        split_a.absorb(&split_b);

        let mut flat = Rollup::new(0, "t", EventKind::Infer);
        for event in &events {
            flat.observe(event);
        }
        assert_eq!(split_a, flat);
        assert_eq!(flat.count, 2);
        assert_eq!(flat.energy_mj.sum, 0.75);
        assert_eq!(flat.accuracy.count, 1);
        assert_eq!(flat.key(), (0, "t".to_string(), 0));
    }
}
