//! Live tails: bounded per-subscriber fan-out off the store's append path,
//! with resume cursors for gap-free reconnects.
//!
//! A tail is registered **atomically with its back-fill**: the store takes
//! its lock once, answers the cursor-ranged back-fill query against the
//! content it holds at that instant, and registers the subscriber's bounded
//! channel before releasing the lock. Every event appended before the
//! registration is in the back-fill, every event appended after it lands in
//! the channel — the two sides are disjoint by construction, so a single
//! subscription never sees a duplicate and never misses a row.
//!
//! Reconnects are where overlap can appear: a resumed subscriber back-fills
//! from its [`ObsCursor`] via a fresh query, and a router leg's retry may
//! re-deliver rows near the cursor. Those splices are deduplicated by
//! [`ObsResult::merge`]'s bit-exact row identity — the same invariant that
//! stitches scatter-gather legs.
//!
//! Delivery is `try_send` into a bounded channel, exactly like
//! [`EventSink`](crate::EventSink): the append path never waits on a slow
//! subscriber. A full channel drops the event and counts it, and the first
//! drop after a clean period appends a transition-only
//! [`EventKind::SinkOverflow`](crate::EventKind::SinkOverflow) marker to the
//! store itself, so the drop window is visible in the timeline the
//! subscriber is tailing.

use crate::event::Event;
use crate::query::ObsResult;
use crate::rollup::Rollup;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A resume position in a timeline: the [`Event::order_key`] of the last
/// row a subscriber consumed. Back-fill after a reconnect delivers rows
/// **strictly after** the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ObsCursor {
    /// Timestamp component of the last consumed row.
    pub time_us: u64,
    /// Sequence-number tiebreaker of the last consumed row.
    pub seq: u64,
}

impl ObsCursor {
    /// The position before the first possible row: resuming here back-fills
    /// everything except a row at exactly `(0, 0)`, so fresh subscriptions
    /// pass `None` instead.
    pub fn start() -> ObsCursor {
        ObsCursor { time_us: 0, seq: 0 }
    }

    /// A cursor at an event's order key.
    pub fn at(event: &Event) -> ObsCursor {
        let (time_us, seq) = event.order_key();
        ObsCursor { time_us, seq }
    }

    /// The cursor as the tuple [`Event::order_key`] produces.
    pub fn key(self) -> (u64, u64) {
        (self.time_us, self.seq)
    }

    /// Moves the cursor forward to `key` if that is later (high-water:
    /// a time-inverted row never moves a cursor backwards).
    pub fn advance(&mut self, key: (u64, u64)) {
        if key > self.key() {
            self.time_us = key.0;
            self.seq = key.1;
        }
    }
}

/// One batch of a tail stream — the unit a wire server frames and a router
/// merges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TailBatch {
    /// Rows in this batch, `(time_us, seq)`-ordered within the batch.
    pub events: Vec<Event>,
    /// Rollup cells covering back-fill spans whose raw rows were GC'd
    /// (bucket-granular; empty on live batches).
    pub rollups: Vec<Rollup>,
    /// High-water cursor after consuming this batch — resume here.
    pub cursor: ObsCursor,
    /// `true` for the cursor-ranged back-fill that opens a subscription,
    /// `false` for live batches.
    pub backfill: bool,
    /// The back-fill was cut short by the query limit: rows may be missing
    /// and the gap-free guarantee is void until the subscriber re-anchors.
    pub truncated: bool,
    /// Events this subscriber's tail has shed so far (drop-and-count).
    pub dropped: u64,
}

impl TailBatch {
    /// Folds the batch's events into `cursor` (high-water).
    pub fn advance_cursor(&self, cursor: &mut ObsCursor) {
        for event in &self.events {
            cursor.advance(event.order_key());
        }
        cursor.advance(self.cursor.key());
    }
}

/// Shared per-subscriber counters: written by the store's fan-out, read by
/// whoever streams the tail.
#[derive(Debug, Default)]
pub(crate) struct TailCounters {
    pub(crate) delivered: AtomicU64,
    pub(crate) dropped: AtomicU64,
}

/// A live tail on an [`ObsStore`](crate::ObsStore): the back-fill the
/// subscription opened with, plus the bounded channel live rows arrive on.
///
/// Dropping the tail unregisters it — the store removes the slot the next
/// time fan-out finds the channel disconnected.
#[derive(Debug)]
pub struct ObsTail {
    /// Everything after the resume cursor that the store held at subscribe
    /// time: raw rows where they survive, rollup cells where GC took them.
    pub backfill: ObsResult,
    /// High-water cursor after the back-fill — already advanced past every
    /// back-filled row.
    pub cursor: ObsCursor,
    pub(crate) rx: mpsc::Receiver<Event>,
    pub(crate) id: u64,
    pub(crate) counters: Arc<TailCounters>,
}

impl ObsTail {
    /// This subscription's id — live drops are attributed to the
    /// pseudo-deployment `tail:<id>` in [`SinkOverflow`] markers.
    ///
    /// [`SinkOverflow`]: crate::EventKind::SinkOverflow
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks up to `timeout` for the next live row.
    ///
    /// # Errors
    ///
    /// [`mpsc::RecvTimeoutError::Timeout`] when nothing arrived, and
    /// [`mpsc::RecvTimeoutError::Disconnected`] once the store is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Event, mpsc::RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// The next live row if one is already buffered; never blocks.
    pub fn try_next(&self) -> Option<Event> {
        self.rx.try_recv().ok()
    }

    /// Live rows accepted into this subscriber's channel so far.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered.load(Ordering::Acquire)
    }

    /// Live rows shed because this subscriber's channel was full.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn cursor_is_a_high_water_mark() {
        let mut cursor = ObsCursor::start();
        cursor.advance((10, 2));
        assert_eq!(cursor.key(), (10, 2));
        // Same time, higher seq advances; anything earlier does not.
        cursor.advance((10, 5));
        assert_eq!(cursor.key(), (10, 5));
        cursor.advance((9, 99));
        cursor.advance((10, 4));
        assert_eq!(cursor.key(), (10, 5));
        let event = Event::new(EventKind::Infer, "t").with_time_us(11).with_seq(0);
        assert_eq!(ObsCursor::at(&event).key(), (11, 0));
    }

    #[test]
    fn batch_advances_cursor_over_events_and_own_cursor() {
        let batch = TailBatch {
            events: vec![
                Event::new(EventKind::Infer, "t").with_time_us(5).with_seq(1),
                Event::new(EventKind::Infer, "t").with_time_us(7).with_seq(0),
            ],
            cursor: ObsCursor { time_us: 6, seq: 0 },
            ..TailBatch::default()
        };
        let mut cursor = ObsCursor::start();
        batch.advance_cursor(&mut cursor);
        assert_eq!(cursor.key(), (7, 0));
    }
}
