//! The non-blocking intake: a bounded channel that sheds instead of stalls.

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Pseudo-deployment name of [`EventKind::SinkOverflow`] markers emitted by
/// the intake channel itself (tail subscribers use `tail:<id>` instead).
pub(crate) const SINK_OVERFLOW_DEPLOYMENT: &str = "obs:sink";

/// A monotonic clock with a wall anchor: microseconds since the Unix epoch,
/// but advanced by `Instant` so it can never run backwards within a process.
///
/// Every process in a cluster anchors its own clock at startup, so
/// timestamps from different processes are comparable to NTP-ish precision
/// while per-process ordering stays strictly monotonic — good enough to
/// stitch one tenant's timeline across a migration between shards.
#[derive(Debug)]
pub struct ObsClock {
    anchor_us: u64,
    started: Instant,
}

impl ObsClock {
    /// Anchors the clock at the current wall time.
    pub fn new() -> ObsClock {
        let anchor_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        ObsClock { anchor_us, started: Instant::now() }
    }

    /// Monotonic microseconds since the Unix epoch.
    pub fn now_us(&self) -> u64 {
        self.anchor_us.saturating_add(self.started.elapsed().as_micros() as u64)
    }
}

impl Default for ObsClock {
    fn default() -> Self {
        ObsClock::new()
    }
}

#[derive(Debug, Default)]
struct SinkCounters {
    sent: AtomicU64,
    dropped: AtomicU64,
    /// `true` while inside a drop window; flips back on the first accepted
    /// event, which also carries the window's [`EventKind::SinkOverflow`]
    /// marker into the channel.
    overflow: AtomicBool,
    overflows: AtomicU64,
}

/// The write side of an observability pipeline.
///
/// [`emit`](EventSink::emit) is **non-blocking by construction**: it stamps
/// the event's time and `try_send`s it into a bounded channel. A full
/// channel (the collector fell behind) drops the event and increments
/// [`dropped`](EventSink::dropped) — the serving hot path never waits on
/// observability, and the loss is visible instead of silent.
#[derive(Debug, Clone)]
pub struct EventSink {
    tx: mpsc::SyncSender<Event>,
    clock: Arc<ObsClock>,
    counters: Arc<SinkCounters>,
}

impl EventSink {
    /// A sink over a fresh bounded channel of `depth` events, plus the
    /// receiving end a collector drains. [`Obs::new`](crate::Obs::new) wires
    /// this up for normal use; tests use it directly to exercise
    /// backpressure deterministically.
    pub fn bounded(depth: usize) -> (EventSink, mpsc::Receiver<Event>) {
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        let sink = EventSink {
            tx,
            clock: Arc::new(ObsClock::new()),
            counters: Arc::new(SinkCounters::default()),
        };
        (sink, rx)
    }

    /// Stamps `event` with the sink's clock and offers it to the channel.
    /// Never blocks; a full channel counts a drop.
    pub fn emit(&self, mut event: Event) {
        event.time_us = self.clock.now_us();
        self.emit_at(event);
    }

    /// Offers `event` with its timestamp left untouched. Never blocks.
    ///
    /// The first drop after a clean period opens an **overflow window**
    /// ([`EventSink::overflows`] counts the transitions, breaker-style).
    /// The window's [`EventKind::SinkOverflow`] marker rides into the
    /// channel with the first event accepted afterwards — at the drop
    /// instant the channel is full by definition, so the marker lands on
    /// the closing edge, stamped with the accepted event's time and
    /// carrying the total dropped count in `seq`. Drop windows are thereby
    /// visible in the timeline itself, one row per window.
    pub fn emit_at(&self, event: Event) {
        let time_us = event.time_us;
        match self.tx.try_send(event) {
            Ok(()) => {
                self.counters.sent.fetch_add(1, Ordering::Release);
                if self.counters.overflow.swap(false, Ordering::AcqRel) {
                    let marker = Event::new(EventKind::SinkOverflow, SINK_OVERFLOW_DEPLOYMENT)
                        .with_time_us(time_us)
                        .with_seq(self.dropped());
                    match self.tx.try_send(marker) {
                        Ok(()) => {
                            self.counters.sent.fetch_add(1, Ordering::Release);
                        }
                        // The channel refilled under us: count the drop and
                        // re-arm so a later accepted event retries.
                        Err(_) => {
                            self.counters.dropped.fetch_add(1, Ordering::Release);
                            self.counters.overflow.store(true, Ordering::Release);
                        }
                    }
                }
            }
            // Full (backpressure) or disconnected (collector gone): either
            // way the event is shed, never waited on.
            Err(_) => {
                self.counters.dropped.fetch_add(1, Ordering::Release);
                if !self.counters.overflow.swap(true, Ordering::AcqRel) {
                    self.counters.overflows.fetch_add(1, Ordering::Release);
                }
            }
        }
    }

    /// Events accepted into the channel so far (overflow markers included).
    pub fn sent(&self) -> u64 {
        self.counters.sent.load(Ordering::Acquire)
    }

    /// Events shed because the channel was full (or its collector gone).
    pub fn dropped(&self) -> u64 {
        self.counters.dropped.load(Ordering::Acquire)
    }

    /// Clean→overflow transitions so far — one per drop window, however
    /// many events each window shed.
    pub fn overflows(&self) -> u64 {
        self.counters.overflows.load(Ordering::Acquire)
    }

    /// The sink's clock, for callers that want comparable timestamps
    /// without emitting.
    pub fn clock(&self) -> &ObsClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::time::Duration;

    #[test]
    fn clock_is_monotonic() {
        let clock = ObsClock::new();
        let mut last = clock.now_us();
        for _ in 0..1000 {
            let now = clock.now_us();
            assert!(now >= last);
            last = now;
        }
        assert!(last > 0, "anchor should place us well past the epoch");
    }

    /// The bounded-channel drop counter, deterministically: nothing drains
    /// the receiver, so exactly `depth` events are accepted and the rest are
    /// shed — and emitting past a full channel returns immediately instead
    /// of blocking.
    #[test]
    fn full_channel_drops_and_counts_instead_of_blocking() {
        let (sink, _rx) = EventSink::bounded(2);
        let start = Instant::now();
        for i in 0..10u64 {
            sink.emit(Event::new(EventKind::Infer, "t").with_seq(i));
        }
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "emit must never block on a full channel"
        );
        assert_eq!(sink.sent(), 2);
        assert_eq!(sink.dropped(), 8);
    }

    #[test]
    fn disconnected_collector_sheds_too() {
        let (sink, rx) = EventSink::bounded(4);
        drop(rx);
        sink.emit(Event::new(EventKind::Learn, "t"));
        assert_eq!(sink.sent(), 0);
        assert_eq!(sink.dropped(), 1);
    }

    /// One drop window, however long, yields exactly one SinkOverflow
    /// marker — delivered with the first event accepted after the window,
    /// stamped with that event's time and the window's total dropped count.
    #[test]
    fn overflow_window_emits_one_transition_marker_on_recovery() {
        let (sink, rx) = EventSink::bounded(4);
        for i in 0..4u64 {
            sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(10 + i).with_seq(i));
        }
        // Three drops, one window.
        for i in 0..3u64 {
            sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(20 + i));
        }
        assert_eq!(sink.overflows(), 1);
        assert_eq!(sink.dropped(), 3);
        // Drain two, then the next accepted event closes the window and the
        // marker rides along right behind it.
        rx.recv().unwrap();
        rx.recv().unwrap();
        sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(30));
        let events: Vec<Event> = rx.try_iter().collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].time_us, 30);
        let marker = &events[3];
        assert_eq!(marker.kind, EventKind::SinkOverflow);
        assert_eq!(marker.deployment, SINK_OVERFLOW_DEPLOYMENT);
        assert_eq!(marker.time_us, 30);
        assert_eq!(marker.seq, 3, "seq carries the dropped total");
        assert_eq!(sink.sent(), 6, "the marker counts as sent");
        // A second window is a second transition.
        for _ in 0..4 {
            sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(40));
        }
        sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(41));
        assert_eq!(sink.overflows(), 2);
    }

    #[test]
    fn emit_stamps_time_and_emit_at_preserves_it() {
        let (sink, rx) = EventSink::bounded(4);
        sink.emit(Event::new(EventKind::Infer, "t"));
        sink.emit_at(Event::new(EventKind::Infer, "t").with_time_us(42));
        let stamped = rx.recv().unwrap();
        assert!(stamped.time_us > 1_000_000, "emit stamps wall-anchored time");
        assert_eq!(rx.recv().unwrap().time_us, 42);
    }
}
