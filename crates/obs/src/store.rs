//! The columnar store: an active chunk absorbing appends, sealed time-sorted
//! chunks behind it, and a byte budget enforced by evicting the oldest.
//!
//! Two things outlive the raw chunks. Every seal folds the chunk's rows into
//! per-minute [`Rollup`] cells that are never GC'd, so long-horizon
//! aggregates survive eviction. And an optional [`ChunkSpill`] hook hands
//! each sealed chunk to a durable writer (`ofscil_store`'s `ObsSpill`), so a
//! restarted process can adopt the spilled chunks back and answer timeline
//! queries as if it never died.

use crate::event::{Event, EventKind};
use crate::histogram::LatencyHistogram;
use crate::query::{ObsQuery, ObsResult, Resolution, Summary, AUTO_RAW_WINDOW_US};
use crate::rollup::{Rollup, ROLLUP_BUCKET_US};
use crate::tail::{ObsCursor, ObsTail, TailCounters};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A durability hook the store calls with every chunk it seals (inside the
/// append path, so spills happen in seal order). Implementations must not
/// block on anything slower than a local append, and must swallow their own
/// errors into counters — observability never fails the caller.
///
/// Chunks *adopted* from a previous life ([`ObsStore::adopt_chunk`]) are
/// never re-spilled, so a rehydrate-then-serve cycle does not duplicate the
/// spill file.
pub trait ChunkSpill: Send + Sync + std::fmt::Debug {
    /// Persists one sealed, time-sorted chunk.
    fn spill_chunk(&self, events: &[Event]);
}

/// Bytes one event occupies across the eight columns: deployment id (4) +
/// kind (1) + seq (8) + time (8) + energy (8) + latency (8) + accuracy (4) +
/// WAL bytes (8). Interned deployment names are not charged — there are a
/// handful of tenants and millions of rows.
pub const EVENT_BYTES: usize = 49;

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Depth of the bounded intake channel ([`EventSink`](crate::EventSink)).
    /// Size it at the burst you expect between collector wakeups; overflow
    /// is dropped and counted, never waited on.
    pub queue_depth: usize,
    /// Rows per chunk: the active chunk seals (and time-sorts) once it holds
    /// this many events.
    pub chunk_events: usize,
    /// Resident budget in bytes (`rows × EVENT_BYTES`). Once exceeded, whole
    /// sealed chunks are evicted oldest-first; the active chunk is never
    /// evicted.
    pub byte_budget: usize,
}

impl ObsConfig {
    /// Sets the intake channel depth (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> ObsConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the rows-per-chunk seal threshold (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn with_chunk_events(mut self, events: usize) -> ObsConfig {
        self.chunk_events = events.max(1);
        self
    }

    /// Sets the resident byte budget (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: usize) -> ObsConfig {
        self.byte_budget = bytes.max(1);
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            queue_depth: 8192,
            chunk_events: 512,
            byte_budget: 4 * 1024 * 1024,
        }
    }
}

/// A point-in-time snapshot of the pipeline's health counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Events appended to the store since creation (survivors and GC'd).
    pub appended: u64,
    /// Events the sink accepted into the channel ([`Obs`](crate::Obs) fills
    /// this; a bare store reports 0).
    pub sent: u64,
    /// Events the sink shed under backpressure ([`Obs`](crate::Obs) fills
    /// this; a bare store reports 0).
    pub dropped: u64,
    /// Sealed chunks currently resident.
    pub sealed_chunks: u64,
    /// Rows currently resident (active + sealed).
    pub resident_events: u64,
    /// `resident_events × EVENT_BYTES`.
    pub resident_bytes: u64,
    /// Whole chunks evicted by the byte budget so far.
    pub gc_chunks: u64,
    /// Rows those evictions removed.
    pub gc_events: u64,
    /// Sealed chunks handed to the [`ChunkSpill`] hook so far (0 when no
    /// hook is attached; adopted chunks are not re-spilled and not counted).
    pub spilled_chunks: u64,
    /// Per-minute rollup cells currently held (these survive GC).
    pub rollup_rows: u64,
    /// Live tail subscribers currently registered.
    pub tails: u64,
    /// Rows accepted into tail subscriber channels so far (all subscribers,
    /// departed ones included).
    pub tail_delivered: u64,
    /// Rows shed because a tail subscriber's channel was full.
    pub tail_dropped: u64,
    /// Clean→overflow transitions across all tail subscribers — one per
    /// [`SinkOverflow`](crate::EventKind::SinkOverflow) marker appended.
    pub tail_overflows: u64,
}

/// The eight parallel columns of one chunk.
#[derive(Debug, Default)]
struct Columns {
    deployment: Vec<u32>,
    kind: Vec<u8>,
    seq: Vec<u64>,
    time_us: Vec<u64>,
    energy_mj: Vec<f64>,
    latency_us: Vec<u64>,
    accuracy: Vec<f32>,
    wal_bytes: Vec<u64>,
}

impl Columns {
    fn len(&self) -> usize {
        self.time_us.len()
    }

    fn push(&mut self, deployment: u32, event: &Event) {
        self.deployment.push(deployment);
        self.kind.push(event.kind.code());
        self.seq.push(event.seq);
        self.time_us.push(event.time_us);
        self.energy_mj.push(event.energy_mj);
        self.latency_us.push(event.latency_us);
        self.accuracy.push(event.accuracy);
        self.wal_bytes.push(event.wal_bytes);
    }

    /// Reorders every column by `(time_us, seq)` via one permutation —
    /// columnar sorting without materializing rows.
    fn sort_by_time(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| (self.time_us[i], self.seq[i]));
        self.deployment = order.iter().map(|&i| self.deployment[i]).collect();
        self.kind = order.iter().map(|&i| self.kind[i]).collect();
        self.seq = order.iter().map(|&i| self.seq[i]).collect();
        self.time_us = order.iter().map(|&i| self.time_us[i]).collect();
        self.energy_mj = order.iter().map(|&i| self.energy_mj[i]).collect();
        self.latency_us = order.iter().map(|&i| self.latency_us[i]).collect();
        self.accuracy = order.iter().map(|&i| self.accuracy[i]).collect();
        self.wal_bytes = order.iter().map(|&i| self.wal_bytes[i]).collect();
    }

    /// Materializes row `i` back into an [`Event`].
    fn event(&self, i: usize, names: &[String]) -> Event {
        Event {
            deployment: names
                .get(self.deployment[i] as usize)
                .cloned()
                .unwrap_or_default(),
            kind: EventKind::from_code(self.kind[i]).unwrap_or(EventKind::Infer),
            seq: self.seq[i],
            time_us: self.time_us[i],
            energy_mj: self.energy_mj[i],
            latency_us: self.latency_us[i],
            accuracy: self.accuracy[i],
            wal_bytes: self.wal_bytes[i],
        }
    }
}

/// A sealed, time-sorted chunk with its time bounds for query skipping.
#[derive(Debug)]
struct SealedChunk {
    cols: Columns,
    min_time: u64,
    max_time: u64,
}

/// One in-memory rollup cell: the value columns of a [`Rollup`], keyed
/// externally by `(bucket, deployment id, kind code)`.
#[derive(Debug, Clone, Default)]
struct RollupCell {
    count: u64,
    energy_mj: Summary,
    latency_us: Summary,
    accuracy: Summary,
}

impl RollupCell {
    /// Mirrors [`ObsAggregates::observe`](crate::ObsAggregates::observe) so
    /// rollup aggregates stay exactly equal to raw-scan aggregates.
    fn observe_row(&mut self, energy_mj: f64, latency_us: u64, accuracy: f32) {
        self.count += 1;
        self.energy_mj.observe(energy_mj);
        self.latency_us.observe(latency_us as f64);
        self.accuracy.observe(f64::from(accuracy));
    }
}

/// One registered live-tail subscriber: its filter, its bounded channel,
/// and the transition state the [`SinkOverflow`](EventKind::SinkOverflow)
/// marker is edge-triggered from.
#[derive(Debug)]
struct TailSlot {
    id: u64,
    filter: ObsQuery,
    tx: mpsc::SyncSender<Event>,
    counters: Arc<TailCounters>,
    /// `true` while inside a drop window; the clean→overflow edge appends
    /// one marker event, further drops in the same window stay silent.
    overflowed: bool,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Interned deployment names; column values index into this.
    names: Vec<String>,
    ids: HashMap<String, u32>,
    active: Columns,
    sealed: Vec<SealedChunk>,
    /// Per-minute cells folded from every sealed chunk, keyed by
    /// `(bucket, deployment id, kind code)`. Never GC'd — this is the
    /// downsampled history that outlives the raw chunks.
    rollups: BTreeMap<(u64, u32, u8), RollupCell>,
    /// Durability hook; sealed (not adopted) chunks are handed to it.
    spill: Option<Arc<dyn ChunkSpill>>,
    /// Latest event timestamp ever seen (appends and adoptions); anchors
    /// [`Resolution::Auto`]'s raw/rollup split.
    latest_time: u64,
    gc_chunks: u64,
    gc_events: u64,
    spilled_chunks: u64,
    /// Live tail subscribers; appends fan out to these under the store
    /// lock, so a subscription's back-fill and its live feed partition the
    /// timeline exactly (no row in both, no row in neither).
    tails: Vec<TailSlot>,
    next_tail_id: u64,
    tail_delivered: u64,
    tail_dropped: u64,
    tail_overflows: u64,
    /// Store-lifetime latency histograms, one per event kind, indexed by
    /// kind code. Appended and adopted rows both land here.
    histograms: [LatencyHistogram; EventKind::ALL.len()],
}

impl StoreInner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    fn resident_events(&self) -> usize {
        self.active.len() + self.sealed.iter().map(|c| c.cols.len()).sum::<usize>()
    }

    /// Folds a sealed chunk's rows into the per-minute rollup cells.
    fn fold_rollups(&mut self, cols: &Columns) {
        for i in 0..cols.len() {
            let key = (Rollup::bucket_of(cols.time_us[i]), cols.deployment[i], cols.kind[i]);
            self.rollups.entry(key).or_default().observe_row(
                cols.energy_mj[i],
                cols.latency_us[i],
                cols.accuracy[i],
            );
        }
    }

    fn seal_active(&mut self) {
        if self.active.len() == 0 {
            return;
        }
        let mut cols = std::mem::take(&mut self.active);
        cols.sort_by_time();
        let min_time = *cols.time_us.first().expect("non-empty chunk");
        let max_time = *cols.time_us.last().expect("non-empty chunk");
        self.fold_rollups(&cols);
        if let Some(spill) = self.spill.clone() {
            let events: Vec<Event> =
                (0..cols.len()).map(|i| cols.event(i, &self.names)).collect();
            spill.spill_chunk(&events);
            self.spilled_chunks += 1;
        }
        self.sealed.push(SealedChunk { cols, min_time, max_time });
    }

    /// Evicts whole sealed chunks, oldest (`min_time`, then insertion order)
    /// first, until resident bytes fit the budget. The active chunk is never
    /// evicted, so the budget can be overshot by at most one chunk.
    fn gc(&mut self, byte_budget: usize) {
        while self.resident_events() * EVENT_BYTES > byte_budget && !self.sealed.is_empty() {
            let oldest = self
                .sealed
                .iter()
                .enumerate()
                .min_by_key(|(i, c)| (c.min_time, *i))
                .map(|(i, _)| i)
                .expect("non-empty sealed list");
            let chunk = self.sealed.remove(oldest);
            self.gc_chunks += 1;
            self.gc_events += chunk.cols.len() as u64;
        }
    }

    /// Offers one appended event to every registered tail whose filter
    /// matches. `try_send` only — the append path never waits on a slow
    /// subscriber. Disconnected subscribers are unregistered here; a
    /// clean→overflow transition returns a [`SinkOverflow`] marker for the
    /// caller to append once the lock is released.
    ///
    /// [`SinkOverflow`]: EventKind::SinkOverflow
    fn fan_out(&mut self, event: &Event) -> Vec<Event> {
        let mut markers = Vec::new();
        let delivered = &mut self.tail_delivered;
        let dropped = &mut self.tail_dropped;
        let overflows = &mut self.tail_overflows;
        self.tails.retain_mut(|slot| {
            if !tail_matches(&slot.filter, event) {
                return true;
            }
            match slot.tx.try_send(event.clone()) {
                Ok(()) => {
                    slot.counters.delivered.fetch_add(1, Ordering::Release);
                    *delivered += 1;
                    // A successful delivery closes the drop window; the next
                    // drop is a fresh transition.
                    slot.overflowed = false;
                    true
                }
                Err(mpsc::TrySendError::Full(_)) => {
                    let total = slot.counters.dropped.fetch_add(1, Ordering::Release) + 1;
                    *dropped += 1;
                    if !slot.overflowed {
                        slot.overflowed = true;
                        *overflows += 1;
                        markers.push(
                            Event::new(EventKind::SinkOverflow, &format!("tail:{}", slot.id))
                                .with_time_us(event.time_us)
                                .with_seq(total),
                        );
                    }
                    true
                }
                // Subscriber gone: unregister the slot.
                Err(mpsc::TrySendError::Disconnected(_)) => false,
            }
        });
        markers
    }
}

/// Whether a live event passes a tail's filter (deployment, both windows,
/// kind mask) — the same predicate the back-fill query applied.
fn tail_matches(filter: &ObsQuery, event: &Event) -> bool {
    (filter.deployment.is_empty() || filter.deployment == event.deployment)
        && filter.matches_windows(event.time_us, event.seq)
        && filter.matches_kind_code(event.kind.code())
}

/// The columnar store. Thread-safe; normally fed by the collector thread of
/// an [`Obs`](crate::Obs) pipeline and queried from anywhere.
#[derive(Debug, Default)]
pub struct ObsStore {
    inner: Mutex<StoreInner>,
    appended: AtomicU64,
    config: ObsConfig,
}

impl ObsStore {
    /// An empty store with the given tuning.
    pub fn new(config: ObsConfig) -> ObsStore {
        ObsStore {
            inner: Mutex::new(StoreInner::default()),
            appended: AtomicU64::new(0),
            config: ObsConfig {
                queue_depth: config.queue_depth.max(1),
                chunk_events: config.chunk_events.max(1),
                byte_budget: config.byte_budget.max(1),
            },
        }
    }

    /// The store's tuning.
    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    /// Appends one event as-is (no timestamp stamping — the sink did that).
    /// Seals the active chunk at [`ObsConfig::chunk_events`] rows, runs GC
    /// after each seal, and fans the event out to every registered live
    /// tail (non-blocking; see [`ObsStore::subscribe`]).
    pub fn append(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("obs store lock");
        let id = inner.intern(&event.deployment);
        inner.active.push(id, event);
        inner.latest_time = inner.latest_time.max(event.time_us);
        inner.histograms[event.kind.code() as usize].record(event.latency_us);
        if inner.active.len() >= self.config.chunk_events {
            inner.seal_active();
            inner.gc(self.config.byte_budget);
        }
        let markers = inner.fan_out(event);
        drop(inner);
        self.appended.fetch_add(1, Ordering::Release);
        // Overflow markers are ordinary rows: appended (and fanned out)
        // like anything else. The recursion terminates because a marker can
        // only be produced on a slot's clean→overflow edge, which the drop
        // that produced it already consumed.
        for marker in markers {
            self.append(&marker);
        }
    }

    /// Attaches the durability hook. Every chunk sealed **after** this call
    /// is handed to `spill` (inside the append path, so spills happen in
    /// seal order). Attach after rehydrating so adopted history is not
    /// written twice.
    pub fn set_spill(&self, spill: Arc<dyn ChunkSpill>) {
        let mut inner = self.inner.lock().expect("obs store lock");
        inner.spill = Some(spill);
    }

    /// Adopts one chunk spilled by a previous life: rows are re-sorted,
    /// folded into the rollup cells, and installed as a sealed chunk (then
    /// GC'd under the normal budget). Adopted chunks are **not** re-spilled.
    pub fn adopt_chunk(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("obs store lock");
        let mut cols = Columns::default();
        for event in events {
            let id = inner.intern(&event.deployment);
            cols.push(id, event);
            inner.latest_time = inner.latest_time.max(event.time_us);
            inner.histograms[event.kind.code() as usize].record(event.latency_us);
        }
        cols.sort_by_time();
        let min_time = *cols.time_us.first().expect("non-empty chunk");
        let max_time = *cols.time_us.last().expect("non-empty chunk");
        inner.fold_rollups(&cols);
        inner.sealed.push(SealedChunk { cols, min_time, max_time });
        inner.gc(self.config.byte_budget);
        drop(inner);
        self.appended.fetch_add(events.len() as u64, Ordering::Release);
    }

    /// Adopts one rollup cell compacted by a previous life's spill GC —
    /// history whose raw rows are gone but whose aggregates survive.
    pub fn adopt_rollup(&self, rollup: &Rollup) {
        let mut inner = self.inner.lock().expect("obs store lock");
        let id = inner.intern(&rollup.deployment);
        let key = (rollup.bucket_us, id, rollup.kind.code());
        let cell = inner.rollups.entry(key).or_default();
        cell.count += rollup.count;
        cell.energy_mj.merge(&rollup.energy_mj);
        cell.latency_us.merge(&rollup.latency_us);
        cell.accuracy.merge(&rollup.accuracy);
        inner.latest_time = inner.latest_time.max(rollup.bucket_us);
    }

    /// Seals the active chunk now (tests and shutdown paths; queries see the
    /// active chunk anyway).
    pub fn seal(&self) {
        let mut inner = self.inner.lock().expect("obs store lock");
        inner.seal_active();
        inner.gc(self.config.byte_budget);
    }

    /// Total events ever appended.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Acquire)
    }

    /// A snapshot of the store-side counters (`sent`/`dropped` are 0 here;
    /// [`Obs::counters`](crate::Obs::counters) fills them from the sink).
    pub fn counters(&self) -> ObsCounters {
        let inner = self.inner.lock().expect("obs store lock");
        let resident = inner.resident_events() as u64;
        ObsCounters {
            appended: self.appended(),
            sent: 0,
            dropped: 0,
            sealed_chunks: inner.sealed.len() as u64,
            resident_events: resident,
            resident_bytes: resident * EVENT_BYTES as u64,
            gc_chunks: inner.gc_chunks,
            gc_events: inner.gc_events,
            spilled_chunks: inner.spilled_chunks,
            rollup_rows: inner.rollups.len() as u64,
            tails: inner.tails.len() as u64,
            tail_delivered: inner.tail_delivered,
            tail_dropped: inner.tail_dropped,
            tail_overflows: inner.tail_overflows,
        }
    }

    /// The store-lifetime latency histogram of one event kind. Recorded on
    /// every append and adoption; never windowed and never GC'd.
    pub fn latency_histogram(&self, kind: EventKind) -> LatencyHistogram {
        let inner = self.inner.lock().expect("obs store lock");
        inner.histograms[kind.code() as usize]
    }

    /// Registers a live tail: a bounded channel of `depth` events fed by
    /// every subsequent append that matches `filter`, plus the cursor-ranged
    /// back-fill of everything the store already holds.
    ///
    /// Registration and back-fill happen under one store lock, so the two
    /// sides partition the timeline exactly: a row is in the back-fill or
    /// will arrive live, never both, never neither. With a `cursor`, the
    /// back-fill starts **strictly after** it (rows at or before the cursor
    /// are trimmed and their aggregate contribution retracted); rollup
    /// cells cover back-fill spans whose raw rows were GC'd, at bucket
    /// granularity, when the filter's resolution asks for them.
    ///
    /// Delivery is drop-and-count ([`ObsTail::dropped`]); the first drop
    /// after a clean period appends a
    /// [`SinkOverflow`](EventKind::SinkOverflow) marker under the
    /// pseudo-deployment `tail:<id>`.
    pub fn subscribe(
        &self,
        filter: ObsQuery,
        cursor: Option<ObsCursor>,
        depth: usize,
    ) -> ObsTail {
        let mut inner = self.inner.lock().expect("obs store lock");
        let mut backfill_query = filter.clone();
        if let Some(cursor) = cursor {
            backfill_query.time_min = backfill_query.time_min.max(cursor.time_us);
        }
        let mut backfill = self.query_inner(&inner, &backfill_query);
        if let Some(cursor) = cursor {
            backfill.retain_after(cursor);
        }
        let mut high_water = cursor.unwrap_or_default();
        for event in &backfill.events {
            high_water.advance(event.order_key());
        }
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        let counters = Arc::new(TailCounters::default());
        let id = inner.next_tail_id;
        inner.next_tail_id += 1;
        inner.tails.push(TailSlot {
            id,
            filter,
            tx,
            counters: Arc::clone(&counters),
            overflowed: false,
        });
        drop(inner);
        ObsTail { backfill, cursor: high_water, rx, id, counters }
    }

    /// Runs `query` against every resident chunk and rollup cell.
    ///
    /// The query's resolution partitions its time window: a raw span is
    /// scanned row-by-row (sealed chunks outside it are skipped by their
    /// bounds; matching rows are all aggregated and materialized up to
    /// `query.limit`, earliest first), and a rollup span is answered from
    /// the per-minute cells — at **bucket granularity**, so a cell whose
    /// minute intersects the span contributes whole. [`Resolution::Auto`]
    /// splits at a bucket boundary [`AUTO_RAW_WINDOW_US`] behind the latest
    /// event, so no row is ever counted twice; the sequence window applies
    /// to the raw span only.
    pub fn query(&self, query: &ObsQuery) -> ObsResult {
        let inner = self.inner.lock().expect("obs store lock");
        self.query_inner(&inner, query)
    }

    /// The query body, against an already-locked inner state — shared by
    /// [`ObsStore::query`] and the atomic back-fill in
    /// [`ObsStore::subscribe`].
    fn query_inner(&self, inner: &StoreInner, query: &ObsQuery) -> ObsResult {
        // The store-lifetime latency histogram over the queried kind mask
        // rides along on every result (windows and deployment do not scope
        // it — it is a per-store counter, not a per-row aggregate).
        let mut latency_hist = LatencyHistogram::empty();
        for kind in EventKind::ALL {
            if query.matches_kind_code(kind.code()) {
                latency_hist.merge(&inner.histograms[kind.code() as usize]);
            }
        }
        // Resolve the deployment filter to an interned id once. A name this
        // store never saw matches nothing — but the scan still reports
        // appended/aggregate context truthfully (zeroes).
        let want_id: Option<u32> = if query.deployment.is_empty() {
            None
        } else {
            match inner.ids.get(&query.deployment) {
                Some(&id) => Some(id),
                None => {
                    return ObsResult {
                        appended: self.appended(),
                        shards_ok: 1,
                        latency_hist,
                        ..ObsResult::default()
                    }
                }
            }
        };

        // Inclusive spans; None means "nothing at this granularity".
        let (raw_span, roll_span) = match query.resolution {
            Resolution::Raw => (Some((query.time_min, query.time_max)), None),
            Resolution::Rollup => (None, Some((query.time_min, query.time_max))),
            Resolution::Auto => {
                let effective_max = query.time_max.min(inner.latest_time);
                let split = Rollup::bucket_of(effective_max.saturating_sub(AUTO_RAW_WINDOW_US));
                if split <= query.time_min {
                    (Some((query.time_min, query.time_max)), None)
                } else {
                    (Some((split, query.time_max)), Some((query.time_min, split - 1)))
                }
            }
        };

        let mut result = ObsResult { shards_ok: 1, latency_hist, ..ObsResult::default() };

        if let Some((raw_min, raw_max)) = raw_span {
            let mut scan = |cols: &Columns| {
                for i in 0..cols.len() {
                    if let Some(id) = want_id {
                        if cols.deployment[i] != id {
                            continue;
                        }
                    }
                    if cols.time_us[i] < raw_min
                        || cols.time_us[i] > raw_max
                        || cols.seq[i] < query.seq_min
                        || cols.seq[i] > query.seq_max
                    {
                        continue;
                    }
                    if !query.matches_kind_code(cols.kind[i]) {
                        continue;
                    }
                    let event = cols.event(i, &inner.names);
                    result.aggregates.observe(&event);
                    result.events.push(event);
                }
            };
            for chunk in &inner.sealed {
                if chunk.max_time < raw_min || chunk.min_time > raw_max {
                    continue;
                }
                scan(&chunk.cols);
            }
            scan(&inner.active);
        }

        if let Some((roll_min, roll_max)) = roll_span {
            let in_span = |bucket: u64| {
                bucket.saturating_add(ROLLUP_BUCKET_US - 1) >= roll_min && bucket <= roll_max
            };
            let mut cells: BTreeMap<(u64, u32, u8), RollupCell> = BTreeMap::new();
            for (&(bucket, dep, kind), cell) in &inner.rollups {
                if !in_span(bucket) || !query.matches_kind_code(kind) {
                    continue;
                }
                if want_id.is_some_and(|id| id != dep) {
                    continue;
                }
                cells.insert((bucket, dep, kind), cell.clone());
            }
            // The active chunk has not been folded yet — fold its in-span
            // rows on the fly so a rollup answer never lags the raw one.
            for i in 0..inner.active.len() {
                let bucket = Rollup::bucket_of(inner.active.time_us[i]);
                if !in_span(bucket) || !query.matches_kind_code(inner.active.kind[i]) {
                    continue;
                }
                if want_id.is_some_and(|id| id != inner.active.deployment[i]) {
                    continue;
                }
                let key = (bucket, inner.active.deployment[i], inner.active.kind[i]);
                cells.entry(key).or_default().observe_row(
                    inner.active.energy_mj[i],
                    inner.active.latency_us[i],
                    inner.active.accuracy[i],
                );
            }
            for ((bucket, dep, kind), cell) in cells {
                result.aggregates.matched += cell.count;
                result.aggregates.energy_mj.merge(&cell.energy_mj);
                result.aggregates.latency_us.merge(&cell.latency_us);
                result.aggregates.accuracy.merge(&cell.accuracy);
                result.rollups.push(Rollup {
                    bucket_us: bucket,
                    deployment: inner.names.get(dep as usize).cloned().unwrap_or_default(),
                    kind: EventKind::from_code(kind).unwrap_or(EventKind::Infer),
                    count: cell.count,
                    energy_mj: cell.energy_mj,
                    latency_us: cell.latency_us,
                    accuracy: cell.accuracy,
                });
            }
        }

        result.events.sort_by_key(Event::order_key);
        let limit = query.limit as usize;
        if result.events.len() > limit {
            result.events.truncate(limit);
            result.truncated = true;
        }
        result.rollups.sort_by_key(|a| a.key());
        if result.rollups.len() > limit {
            result.rollups.truncate(limit);
            result.truncated = true;
        }
        result.appended = self.appended();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(deployment: &str, t: u64, seq: u64) -> Event {
        Event::new(EventKind::Infer, deployment)
            .with_time_us(t)
            .with_seq(seq)
            .with_energy_mj(1.0)
            .with_latency_us(10)
    }

    #[test]
    fn seals_sort_and_bound_chunks() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(4));
        // Out-of-order appends within a chunk get time-sorted at seal.
        for t in [30u64, 10, 40, 20] {
            store.append(&event("t", t, t));
        }
        let counters = store.counters();
        assert_eq!(counters.sealed_chunks, 1);
        assert_eq!(counters.resident_events, 4);
        assert_eq!(counters.resident_bytes, 4 * EVENT_BYTES as u64);
        let result = store.query(&ObsQuery::all());
        assert_eq!(
            result.events.iter().map(|e| e.time_us).collect::<Vec<_>>(),
            vec![10, 20, 30, 40]
        );
    }

    #[test]
    fn gc_evicts_oldest_sealed_chunk_first() {
        // Budget fits two 2-row chunks plus a bit; the third seal evicts the
        // oldest.
        let store = ObsStore::new(
            ObsConfig::default()
                .with_chunk_events(2)
                .with_byte_budget(5 * EVENT_BYTES),
        );
        for t in 0..6u64 {
            store.append(&event("t", t * 10, t));
        }
        let counters = store.counters();
        assert_eq!(counters.gc_chunks, 1);
        assert_eq!(counters.gc_events, 2);
        assert_eq!(counters.appended, 6);
        assert_eq!(counters.resident_events, 4);
        // The surviving window is the newest rows.
        let result = store.query(&ObsQuery::all());
        assert_eq!(
            result.events.iter().map(|e| e.time_us).collect::<Vec<_>>(),
            vec![20, 30, 40, 50]
        );
    }

    #[test]
    fn unknown_deployment_matches_nothing_but_reports_appended() {
        let store = ObsStore::new(ObsConfig::default());
        store.append(&event("t", 1, 1));
        let result = store.query(&ObsQuery::deployment("nope"));
        assert!(result.events.is_empty());
        assert_eq!(result.aggregates.matched, 0);
        assert_eq!(result.appended, 1);
        assert_eq!(result.shards_ok, 1);
    }

    #[test]
    fn limit_truncates_events_but_not_aggregates() {
        let store = ObsStore::new(ObsConfig::default());
        for t in 0..10u64 {
            store.append(&event("t", t, t));
        }
        let result = store.query(&ObsQuery::deployment("t").with_limit(3));
        assert_eq!(result.events.len(), 3);
        assert!(result.truncated);
        // Earliest first.
        assert_eq!(result.events[0].time_us, 0);
        assert_eq!(result.aggregates.matched, 10);
        assert_eq!(result.aggregates.energy_mj.sum, 10.0);
    }

    #[derive(Debug, Default)]
    struct MemSpill {
        chunks: Mutex<Vec<Vec<Event>>>,
    }

    impl ChunkSpill for MemSpill {
        fn spill_chunk(&self, events: &[Event]) {
            self.chunks.lock().unwrap().push(events.to_vec());
        }
    }

    #[test]
    fn seal_spills_sorted_chunks_but_adopt_does_not() {
        let spill = Arc::new(MemSpill::default());
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(2));
        store.set_spill(Arc::clone(&spill) as Arc<dyn ChunkSpill>);
        store.append(&event("t", 20, 1));
        store.append(&event("t", 10, 0));
        let spilled = spill.chunks.lock().unwrap().clone();
        assert_eq!(spilled.len(), 1);
        assert_eq!(
            spilled[0].iter().map(|e| e.time_us).collect::<Vec<_>>(),
            vec![10, 20],
            "chunks are spilled time-sorted"
        );
        assert_eq!(store.counters().spilled_chunks, 1);

        // A second store adopting the spilled chunk answers identically —
        // and does not write the history back out.
        let reborn = ObsStore::new(ObsConfig::default().with_chunk_events(2));
        reborn.adopt_chunk(&spilled[0]);
        reborn.set_spill(Arc::clone(&spill) as Arc<dyn ChunkSpill>);
        let key = |r: &ObsResult| {
            r.events.iter().map(|e| (e.time_us, e.seq, e.deployment.clone())).collect::<Vec<_>>()
        };
        assert_eq!(key(&reborn.query(&ObsQuery::all())), key(&store.query(&ObsQuery::all())));
        assert_eq!(reborn.appended(), 2);
        assert_eq!(reborn.counters().spilled_chunks, 0);
        assert_eq!(spill.chunks.lock().unwrap().len(), 1);
    }

    #[test]
    fn rollup_resolution_matches_raw_aggregates_and_survives_gc() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(3));
        // Rows across two minute buckets, some still in the active chunk.
        for i in 0..8u64 {
            store.append(
                &event("t", i * ROLLUP_BUCKET_US / 4, i).with_energy_mj(0.25 * (i + 1) as f64),
            );
        }
        let raw = store.query(&ObsQuery::deployment("t"));
        let rolled = store
            .query(&ObsQuery::deployment("t").with_resolution(Resolution::Rollup));
        assert!(rolled.events.is_empty());
        assert!(!rolled.rollups.is_empty());
        assert_eq!(rolled.aggregates, raw.aggregates);
        assert_eq!(
            rolled.rollups.iter().map(|r| r.count).sum::<u64>(),
            raw.aggregates.matched
        );
        assert_eq!(store.counters().rollup_rows as usize, 2);

        // Evict every raw chunk: the rollup answer is unchanged.
        let tight = ObsStore::new(
            ObsConfig::default().with_chunk_events(2).with_byte_budget(EVENT_BYTES),
        );
        for i in 0..6u64 {
            tight.append(&event("t", i, i));
        }
        assert!(tight.counters().gc_chunks > 0);
        let rolled = tight
            .query(&ObsQuery::deployment("t").with_resolution(Resolution::Rollup));
        assert_eq!(rolled.aggregates.matched, 6, "rollups outlive GC'd chunks");
    }

    #[test]
    fn auto_resolution_partitions_exactly_at_a_bucket_boundary() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(4));
        // 20 minutes of one event per minute: the trailing AUTO_RAW_WINDOW_US
        // (10 buckets) comes back raw, older minutes as rollup cells.
        for i in 0..20u64 {
            store.append(&event("t", i * ROLLUP_BUCKET_US + 7, i));
        }
        let auto = store
            .query(&ObsQuery::deployment("t").with_resolution(Resolution::Auto));
        let raw = store.query(&ObsQuery::deployment("t"));
        assert_eq!(auto.aggregates, raw.aggregates, "no row lost or double-counted");
        assert!(!auto.events.is_empty() && !auto.rollups.is_empty());
        let split = auto.events.first().unwrap().time_us;
        assert!(auto.rollups.iter().all(|r| r.bucket_us + ROLLUP_BUCKET_US <= split + 7));
        // A short window stays fully raw.
        let recent = store.query(
            &ObsQuery::deployment("t")
                .with_resolution(Resolution::Auto)
                .with_time_range(19 * ROLLUP_BUCKET_US, u64::MAX),
        );
        assert!(recent.rollups.is_empty());
        assert_eq!(recent.events.len(), 1);
    }

    /// Subscribe's atomic register-plus-back-fill: rows appended before the
    /// subscription are in the back-fill, rows after arrive live — never
    /// both, never neither.
    #[test]
    fn subscribe_partitions_backfill_and_live_exactly() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(3));
        for t in 0..5u64 {
            store.append(&event("t", t * 10, t));
        }
        let tail = store.subscribe(ObsQuery::all(), None, 16);
        assert_eq!(tail.backfill.events.len(), 5);
        assert_eq!(tail.cursor.key(), (40, 4));
        assert_eq!(store.counters().tails, 1);
        store.append(&event("t", 50, 5));
        store.append(&event("u", 60, 6));
        let first = tail.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        let second = tail.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!((first.time_us, second.time_us), (50, 60));
        assert_eq!(tail.delivered(), 2);
        assert_eq!(tail.dropped(), 0);
        // Filters scope the live feed exactly like the back-fill query.
        let filtered = store.subscribe(ObsQuery::deployment("t"), None, 16);
        store.append(&event("u", 70, 7));
        store.append(&event("t", 80, 8));
        assert_eq!(
            filtered.recv_timeout(std::time::Duration::from_secs(1)).unwrap().time_us,
            80
        );
        // Dropping a tail unregisters it at the next fan-out.
        drop(tail);
        drop(filtered);
        store.append(&event("t", 90, 9));
        assert_eq!(store.counters().tails, 0);
    }

    /// A full subscriber channel sheds (never blocks) and the clean→overflow
    /// edge appends exactly one SinkOverflow marker to the store itself.
    #[test]
    fn tail_overflow_appends_one_transition_marker() {
        let store = ObsStore::new(ObsConfig::default());
        let tail = store.subscribe(ObsQuery::all(), None, 2);
        for t in 0..5u64 {
            store.append(&event("t", t, t));
        }
        // 2 delivered, then e3/e4/e5 dropped plus the marker itself (the
        // channel is full, so the marker's own fan-out sheds too).
        assert_eq!(tail.delivered(), 2);
        assert_eq!(tail.dropped(), 4);
        let counters = store.counters();
        assert_eq!(counters.tail_overflows, 1);
        assert_eq!(counters.tail_dropped, 4);
        let markers = store.query(&ObsQuery::all().with_kinds(&[EventKind::SinkOverflow]));
        assert_eq!(markers.events.len(), 1, "transition-only: one marker per window");
        assert_eq!(markers.events[0].deployment, format!("tail:{}", tail.id()));
        assert_eq!(markers.events[0].seq, 1, "seq is the dropped total at the edge");
        assert_eq!(markers.events[0].time_us, 2, "stamped with the shed row's time");

        // Draining and delivering again closes the window; the next full
        // channel is a fresh transition with a fresh marker.
        tail.try_next().unwrap();
        tail.try_next().unwrap();
        store.append(&event("t", 10, 10));
        store.append(&event("t", 11, 11));
        assert_eq!(tail.delivered(), 4);
        store.append(&event("t", 12, 12));
        let markers = store.query(&ObsQuery::all().with_kinds(&[EventKind::SinkOverflow]));
        assert_eq!(markers.events.len(), 2);
        assert_eq!(store.counters().tail_overflows, 2);
    }

    /// Kill-and-resume: a second subscription from the dead tail's cursor
    /// back-fills exactly the missed range, and back-fill + live together
    /// are bit-identical to a post-hoc query over the same range.
    #[test]
    fn resume_cursor_backfills_strictly_after_and_splices_gap_free() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(4));
        for t in 0..10u64 {
            store.append(&event("t", t * 10, t));
        }
        let first = store.subscribe(ObsQuery::all(), None, 64);
        let cursor = first.cursor;
        assert_eq!(cursor.key(), (90, 9));
        drop(first); // the subscriber dies

        // Rows land while nobody is listening…
        for t in 10..15u64 {
            store.append(&event("t", t * 10, t));
        }
        // …then the subscriber comes back with its cursor.
        let resumed = store.subscribe(ObsQuery::all(), Some(cursor), 64);
        assert_eq!(
            resumed.backfill.events.iter().map(Event::order_key).collect::<Vec<_>>(),
            (10..15u64).map(|t| (t * 10, t)).collect::<Vec<_>>(),
            "back-fill is exactly the missed range, strictly after the cursor"
        );
        assert_eq!(resumed.cursor.key(), (140, 14));
        for t in 15..18u64 {
            store.append(&event("t", t * 10, t));
        }
        let mut spliced: Vec<Event> = resumed.backfill.events.clone();
        while let Some(event) = resumed.try_next() {
            spliced.push(event);
        }
        let posthoc = store
            .query(&ObsQuery::all().with_time_range(cursor.time_us, u64::MAX));
        let posthoc: Vec<Event> = posthoc
            .events
            .into_iter()
            .filter(|e| e.order_key() > cursor.key())
            .collect();
        // `Event` equality is NaN-poisoned (unset accuracy), so compare the
        // identifying keys row by row.
        assert_eq!(
            spliced.iter().map(Event::order_key).collect::<Vec<_>>(),
            posthoc.iter().map(Event::order_key).collect::<Vec<_>>(),
            "no gaps, no duplicates"
        );
    }

    #[test]
    fn latency_histograms_are_per_kind_and_survive_adoption() {
        let store = ObsStore::new(ObsConfig::default());
        for i in 0..98u64 {
            store.append(&event("t", i, i).with_latency_us(100));
        }
        store.append(&event("t", 98, 98).with_latency_us(5_000));
        store.append(&event("t", 99, 99).with_latency_us(5_000));
        store.append(&Event::new(EventKind::Learn, "t").with_latency_us(1_000_000));
        let infer = store.latency_histogram(EventKind::Infer);
        assert_eq!(infer.total(), 100);
        assert_eq!(infer.p50_us(), 127);
        assert_eq!(infer.p99_us(), 8_191);
        assert_eq!(store.latency_histogram(EventKind::Learn).total(), 1);
        // The queried kind mask picks which histograms ride on the result.
        let result = store.query(&ObsQuery::all().with_kinds(&[EventKind::Infer]));
        assert_eq!(result.latency_hist.total(), 100);
        assert_eq!(store.query(&ObsQuery::all()).latency_hist.total(), 101);

        // Adopted chunks fold in, so a rehydrated store answers like the
        // one that died.
        let reborn = ObsStore::new(ObsConfig::default());
        let all = store.query(&ObsQuery::all());
        reborn.adopt_chunk(&all.events);
        assert_eq!(
            reborn.latency_histogram(EventKind::Infer),
            store.latency_histogram(EventKind::Infer)
        );
    }

    #[test]
    fn seq_window_filters_across_sealed_and_active() {
        let store = ObsStore::new(ObsConfig::default().with_chunk_events(3));
        for s in 0..7u64 {
            store.append(&event("t", 100, s));
        }
        let result = store.query(&ObsQuery::deployment("t").with_seq_range(2, 5));
        assert_eq!(
            result.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }
}
