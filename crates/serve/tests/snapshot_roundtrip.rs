//! Property coverage for the explicit-memory snapshot codec: encode →
//! decode must be **bit-exact** across prototype dimensionalities, class
//! counts and every [`PrototypePrecision`] variant, and corrupted inputs
//! must be rejected rather than silently misread.

use ofscil_core::ExplicitMemory;
use ofscil_quant::PrototypePrecision;
use ofscil_serve::snapshot::SnapshotError;
use ofscil_serve::{decode_explicit_memory, encode_explicit_memory, ServeError};
use ofscil_tensor::SeedRng;

/// Builds a memory through the normal write path (`set_prototype`, which
/// quantizes to the storage precision) so the stored values are exactly what
/// a deployed learner would hold.
fn random_memory(
    dim: usize,
    classes: usize,
    precision: PrototypePrecision,
    rng: &mut SeedRng,
) -> ExplicitMemory {
    let mut em = ExplicitMemory::with_precision(dim, precision);
    for class in 0..classes {
        // Sparse class ids exercise the id encoding, not just 0..n.
        let id = class * 7 + (class % 3);
        let proto: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
        em.set_prototype(id, &proto).unwrap();
    }
    em
}

fn assert_bit_exact(original: &ExplicitMemory, restored: &ExplicitMemory) {
    assert_eq!(restored.dim(), original.dim());
    assert_eq!(restored.precision(), original.precision());
    assert_eq!(restored.classes(), original.classes());
    for (class, proto) in original.iter() {
        let back = restored.prototype(class).unwrap();
        assert_eq!(proto.len(), back.len());
        for (i, (a, b)) in proto.iter().zip(back).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "class {class} element {i}: {a} != {b} after round trip \
                 (dim {}, {} bits)",
                original.dim(),
                original.precision().bits()
            );
        }
    }
}

#[test]
fn roundtrip_is_bit_exact_across_the_parameter_grid() {
    let mut rng = SeedRng::new(0xC0DE);
    // Every storage precision of the paper's Fig. 3 sweep (32, 8..=1 bits).
    for precision in PrototypePrecision::figure3_sweep() {
        for &dim in &[1usize, 3, 16, 64] {
            for &classes in &[0usize, 1, 5, 40] {
                let em = random_memory(dim, classes, precision, &mut rng);
                let bytes = encode_explicit_memory(&em);
                let restored = decode_explicit_memory(&bytes).unwrap();
                assert_bit_exact(&em, &restored);
                // A second hop must be byte-identical (replication by hash).
                assert_eq!(encode_explicit_memory(&restored), bytes);
            }
        }
    }
}

#[test]
fn non_finite_and_denormal_values_survive() {
    // The codec stores raw IEEE-754 bits, so values the quantizer would
    // never produce still round-trip (a replica must not reinterpret them).
    let mut em = ExplicitMemory::new(4);
    em.restore_prototype(0, &[f32::INFINITY, f32::NEG_INFINITY, 1e-42, -0.0])
        .unwrap();
    let restored = decode_explicit_memory(&encode_explicit_memory(&em)).unwrap();
    let back = restored.prototype(0).unwrap();
    assert_eq!(back[0], f32::INFINITY);
    assert_eq!(back[1], f32::NEG_INFINITY);
    assert_eq!(back[2].to_bits(), 1e-42f32.to_bits());
    assert_eq!(back[3].to_bits(), (-0.0f32).to_bits());
}

#[test]
fn corrupted_headers_are_rejected() {
    let mut rng = SeedRng::new(7);
    let em = random_memory(8, 3, PrototypePrecision::new(8).unwrap(), &mut rng);
    let bytes = encode_explicit_memory(&em);

    // Magic.
    let mut bad = bytes.clone();
    bad[1] = b'X';
    assert!(matches!(
        decode_explicit_memory(&bad),
        Err(ServeError::Snapshot(SnapshotError::BadMagic(_)))
    ));

    // Version.
    let mut bad = bytes.clone();
    bad[4] = 99;
    assert!(matches!(
        decode_explicit_memory(&bad),
        Err(ServeError::Snapshot(SnapshotError::UnsupportedVersion(99)))
    ));

    // Precision byte: 13 bits is not a valid PrototypePrecision. The
    // checksum is recomputed so the decoder reaches the precision check.
    let mut bad = bytes.clone();
    bad[6] = 13;
    patch_checksum(&mut bad);
    assert!(matches!(
        decode_explicit_memory(&bad),
        Err(ServeError::Snapshot(SnapshotError::BadPrecision(13)))
    ));

    // Declared count no longer matches the byte length.
    let mut bad = bytes.clone();
    bad[12] = bad[12].wrapping_add(1);
    assert!(matches!(
        decode_explicit_memory(&bad),
        Err(ServeError::Snapshot(SnapshotError::LengthMismatch { .. }))
    ));

    // Too short to even hold a header.
    assert!(matches!(
        decode_explicit_memory(&bytes[..10]),
        Err(ServeError::Snapshot(SnapshotError::Truncated { .. }))
    ));

    // Every single-bit payload flip is caught by the checksum.
    for byte in [16usize, 24, 40] {
        let mut bad = bytes.clone();
        bad[byte] ^= 0x80;
        assert!(matches!(
            decode_explicit_memory(&bad),
            Err(ServeError::Snapshot(SnapshotError::ChecksumMismatch { .. }))
        ));
    }

    // The pristine bytes still decode (the corruption harness itself is not
    // what broke them).
    decode_explicit_memory(&bytes).unwrap();
}

/// Recomputes the trailing FNV-1a checksum after an intentional header edit,
/// mirroring the encoder.
fn patch_checksum(bytes: &mut [u8]) {
    let payload_end = bytes.len() - 4;
    let mut hash: u32 = 0x811c_9dc5;
    for &b in &bytes[..payload_end] {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    bytes[payload_end..].copy_from_slice(&hash.to_le_bytes());
}
