//! The serving runtime: dispatcher, admission control and the worker pool.
//!
//! Architecture (all `std`, no async runtime):
//!
//! ```text
//!  clients ──mpsc──▶ dispatcher ──deployment tokens──▶ workers (scoped pool)
//!                     │  resolve deployment (sharded registry lookup)
//!                     │  validate payload shape
//!                     │  price on the GAP9 energy model + admit/defer/reject
//!                     │  coalesce Infer requests into batched jobs
//!                     │  append jobs to the deployment's FIFO work queue
//!                     ▼
//!                  deferred queues (released by TopUpBudget)
//! ```
//!
//! The global queue carries *deployment tokens*, not jobs: a worker that
//! claims a token drains that deployment's work queue in admission order,
//! and the `scheduled` flag keeps a deployment off two workers at once — so
//! per-deployment request order is a guarantee, while distinct deployments
//! run fully in parallel.
//!
//! Every submitted request receives exactly one reply: a successful response,
//! an admission error, an execution error, or — for requests still parked in
//! a deferred queue at shutdown — a final [`ServeError::BudgetExhausted`].

use crate::batch::{Coalescer, DeploymentJob, InferItem};
use crate::journal::CommitJournal;
use crate::registry::{BudgetPolicy, Deployment, LearnerRegistry};
use crate::request::{Envelope, PendingResponse, Reply, ServeRequest, ServeResponse};
use crate::snapshot::encode_explicit_memory;
use crate::{Result, ServeConfig, ServeError};
use ofscil_nn::Mode;
use ofscil_obs::{Event, EventKind, EventSink};
use ofscil_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// One committed `LearnOnline`, as delivered to a replication sink (see
/// [`ServeRuntime::run_replicated`]).
///
/// The sequence number is assigned under the deployment's model lock, so for
/// one deployment commits are numbered in exactly the order their memory
/// mutations happened: a follower that applies deltas in sequence order
/// reconstructs the primary's explicit memory bit-exactly. `updates` carries
/// the post-commit prototypes of the classes the batch touched, read back
/// from the explicit memory after quantization — the bit patterns a replica
/// must store verbatim (via `restore_prototype`).
#[derive(Debug, Clone)]
pub struct LearnCommit {
    /// Deployment the learn ran on.
    pub deployment: String,
    /// 1-based commit sequence number; a full snapshot taken at sequence `s`
    /// already contains every commit numbered `<= s`.
    pub seq: u64,
    /// `(class, stored prototype)` pairs, ascending by class.
    pub updates: Vec<(usize, Vec<f32>)>,
    /// Total classes stored after the commit.
    pub total_classes: usize,
}

/// Tracks submitted-but-undispatched requests against the configured depth
/// limit (`usize::MAX` when unbounded).
#[derive(Debug)]
struct DepthGauge {
    queued: AtomicUsize,
    limit: usize,
}

/// A handle for submitting requests to a running [`ServeRuntime`].
///
/// Cloneable and sendable: hand one clone to each client thread. The runtime
/// shuts down once every clone has been dropped (the body of
/// [`ServeRuntime::run`] returning drops the original).
#[derive(Debug, Clone)]
pub struct ServeClient {
    tx: mpsc::Sender<Envelope>,
    gauge: Arc<DepthGauge>,
}

impl ServeClient {
    /// Submits a request without waiting; pair with
    /// [`PendingResponse::wait`].
    ///
    /// When the runtime was configured with a bounded queue
    /// ([`ServeConfig::queue_depth`]) and the dispatcher is that far behind,
    /// the request is shed immediately: the returned handle yields
    /// [`ServeError::QueueFull`] without the request ever entering the queue.
    pub fn submit(&self, request: ServeRequest) -> PendingResponse {
        let (reply, rx) = mpsc::channel();
        if self.gauge.queued.fetch_add(1, Ordering::AcqRel) >= self.gauge.limit {
            self.gauge.queued.fetch_sub(1, Ordering::AcqRel);
            let _ = reply.send(Err(ServeError::QueueFull { depth: self.gauge.limit }));
            return PendingResponse { rx };
        }
        // A failed send means the dispatcher is gone; the reply sender is
        // dropped with the envelope and `wait` reports `ShuttingDown`.
        let _ = self.tx.send(Envelope { request, reply });
        PendingResponse { rx }
    }

    /// Submits a request and blocks for the response.
    ///
    /// # Errors
    ///
    /// Returns the request's admission or execution error, or
    /// [`ServeError::ShuttingDown`] when the runtime terminated first.
    pub fn call(&self, request: ServeRequest) -> Result<ServeResponse> {
        self.submit(request).wait()
    }
}

/// The embedded serving runtime.
///
/// [`ServeRuntime::run`] spawns the dispatcher and worker pool inside a
/// [`std::thread::scope`], hands the body a [`ServeClient`], and tears the
/// pool down when the body returns — no detached threads, no shared global
/// state, deterministic shutdown.
///
/// # Example
///
/// ```no_run
/// use ofscil_serve::{
///     DeploymentSpec, LearnerRegistry, ServeConfig, ServeRequest, ServeRuntime,
/// };
/// use ofscil_core::OFscilModel;
/// use ofscil_nn::models::BackboneKind;
/// use ofscil_tensor::{SeedRng, Tensor};
///
/// let mut rng = SeedRng::new(0);
/// let registry = LearnerRegistry::new();
/// registry
///     .register(
///         DeploymentSpec::new("tenant-a", (8, 8)),
///         OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
///     )
///     .unwrap();
/// let _stats = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
///     client.call(ServeRequest::Stats { deployment: "tenant-a".into() })
/// })
/// .unwrap();
/// ```
#[derive(Debug)]
pub struct ServeRuntime;

impl ServeRuntime {
    /// Runs a serving session: workers and dispatcher live for exactly the
    /// duration of `body`, which receives the client handle. Returns the
    /// body's value once every in-flight request has been settled.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the configuration is
    /// invalid; the body itself is infallible from the runtime's view.
    pub fn run<T, F>(registry: &LearnerRegistry, config: &ServeConfig, body: F) -> Result<T>
    where
        F: FnOnce(&ServeClient) -> T,
    {
        ServeRuntime::run_replicated(registry, config, None, body)
    }

    /// Like [`ServeRuntime::run`], but every committed `LearnOnline` is also
    /// delivered to `sink` as a sequence-numbered [`LearnCommit`] — the hook
    /// a replication frontend tails to stream snapshot deltas to followers.
    ///
    /// The sink is read from the worker pool; a receiver that disconnects
    /// mid-run is ignored (commits are dropped, serving continues).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the configuration is
    /// invalid; the body itself is infallible from the runtime's view.
    pub fn run_replicated<T, F>(
        registry: &LearnerRegistry,
        config: &ServeConfig,
        sink: Option<mpsc::Sender<LearnCommit>>,
        body: F,
    ) -> Result<T>
    where
        F: FnOnce(&ServeClient) -> T,
    {
        ServeRuntime::run_journaled(registry, config, sink, None, body)
    }

    /// Like [`ServeRuntime::run_replicated`], but every committed
    /// `LearnOnline` and budget top-up is additionally written to `journal`
    /// before its reply is sent — commits **under the deployment's model
    /// lock**, so the journal's record order provably matches the order of
    /// memory mutations. `ofscil_store` implements [`CommitJournal`] with a
    /// per-deployment WAL + checkpoint store that recovers every deployment
    /// bit-exactly after a crash.
    ///
    /// A failed journal write fails the request it was part of (the client
    /// must not believe an unjournaled commit is durable) but leaves the
    /// runtime serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the configuration is
    /// invalid; the body itself is infallible from the runtime's view.
    pub fn run_journaled<T, F>(
        registry: &LearnerRegistry,
        config: &ServeConfig,
        sink: Option<mpsc::Sender<LearnCommit>>,
        journal: Option<&dyn CommitJournal>,
        body: F,
    ) -> Result<T>
    where
        F: FnOnce(&ServeClient) -> T,
    {
        ServeRuntime::run_observed(registry, config, sink, journal, None, body)
    }

    /// Like [`ServeRuntime::run_journaled`], but the runtime additionally
    /// emits one observability [`Event`] per unit of work into `obs`: an
    /// `Infer` per served item (amortized batch energy, batch latency,
    /// prediction similarity as the accuracy proxy), a `Learn` per commit
    /// (with its replication sequence number), a `Reject` per admission
    /// refusal, and a `TopUp` per accepted budget top-up.
    ///
    /// The sink is **never waited on**: emission is a `try_send` into a
    /// bounded channel, and a full channel drops the event and counts it
    /// ([`EventSink::dropped`]) instead of stalling the hot path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the configuration is
    /// invalid; the body itself is infallible from the runtime's view.
    pub fn run_observed<T, F>(
        registry: &LearnerRegistry,
        config: &ServeConfig,
        sink: Option<mpsc::Sender<LearnCommit>>,
        journal: Option<&dyn CommitJournal>,
        obs: Option<&EventSink>,
        body: F,
    ) -> Result<T>
    where
        F: FnOnce(&ServeClient) -> T,
    {
        config.validate()?;
        let (tx, rx) = mpsc::channel::<Envelope>();
        let queue = JobQueue::new();
        let gauge = Arc::new(DepthGauge {
            queued: AtomicUsize::new(0),
            limit: config.queue_depth.unwrap_or(usize::MAX),
        });

        let value = std::thread::scope(|scope| {
            for _ in 0..config.workers {
                let sink = sink.clone();
                let queue = &queue;
                scope.spawn(move || worker_loop(queue, sink.as_ref(), journal, obs));
            }
            let dispatcher_queue = &queue;
            let dispatcher_gauge = Arc::clone(&gauge);
            scope.spawn(move || {
                dispatch_loop(
                    rx, registry, config, dispatcher_queue, &dispatcher_gauge, journal, obs,
                )
            });

            let client = ServeClient { tx, gauge };
            body(&client)
            // `client` (the last envelope sender) drops here; the dispatcher
            // drains the channel, flushes its batches, fails whatever is
            // still deferred and closes the job queue, which releases the
            // workers. The scope then joins everything.
        });
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn dispatch_loop(
    rx: mpsc::Receiver<Envelope>,
    registry: &LearnerRegistry,
    config: &ServeConfig,
    queue: &JobQueue,
    gauge: &DepthGauge,
    journal: Option<&dyn CommitJournal>,
    obs: Option<&EventSink>,
) {
    let mut coalescer = Coalescer::new(config.max_batch);
    let mut deferred: HashMap<String, VecDeque<Envelope>> = HashMap::new();

    while let Ok(first) = rx.recv() {
        let mut cycle = vec![first];
        while cycle.len() < config.drain_limit {
            match rx.try_recv() {
                Ok(envelope) => cycle.push(envelope),
                Err(_) => break,
            }
        }
        // Envelopes pulled off the channel no longer count against the
        // submission depth limit (they are now the dispatcher's problem).
        gauge.queued.fetch_sub(cycle.len(), Ordering::AcqRel);
        for envelope in cycle {
            route(envelope, registry, config, queue, &mut coalescer, &mut deferred, journal, obs);
        }
        for (deployment, job) in coalescer.flush_all() {
            enqueue(&deployment, job, queue);
        }
    }

    // Shutdown: nothing can top budgets up any more, so deferred requests
    // are settled with the admission error they would otherwise wait on
    // forever — every submitted request gets exactly one reply.
    for (name, parked) in deferred {
        if let Ok(deployment) = registry.resolve(&name) {
            for envelope in parked {
                let required_mj = price(&deployment, &envelope.request);
                let (_, remaining) = deployment.meter.state();
                // A deferral that never released is ultimately a rejection;
                // the counters must say so.
                count_rejection(&deployment, &envelope.request, obs);
                envelope.reject(ServeError::BudgetExhausted {
                    deployment: name.clone(),
                    required_mj,
                    remaining_mj: remaining.unwrap_or(0.0),
                });
            }
        }
    }
    queue.close();
}

/// Energy price of a request on a deployment's *current* price list, in
/// millijoules (the list is re-derived when a deployment converts to int8).
fn price(deployment: &Deployment, request: &ServeRequest) -> f64 {
    match request {
        ServeRequest::Infer { .. } => deployment.pricing().infer_mj,
        ServeRequest::LearnOnline { batch, .. } => {
            deployment.pricing().learn_sample_mj * batch.len() as f64
        }
        _ => 0.0,
    }
}

/// Shape-validates a request payload against the deployment's registered
/// input geometry, so one malformed request can never poison a coalesced
/// batch or reach a worker.
fn validate(deployment: &Deployment, request: &ServeRequest) -> Result<()> {
    match request {
        ServeRequest::Infer { image, .. }
            if image.dims() != deployment.image_dims.as_slice() =>
        {
            return Err(ServeError::InvalidRequest(format!(
                "image shape {:?} does not match deployment input shape {:?}",
                image.dims(),
                deployment.image_dims
            )));
        }
        ServeRequest::LearnOnline { batch, .. } => {
            if batch.is_empty() {
                return Err(ServeError::InvalidRequest(
                    "cannot learn from an empty batch".into(),
                ));
            }
            let dims = batch.images.dims();
            let expected: Vec<usize> = std::iter::once(batch.len())
                .chain(deployment.image_dims.iter().copied())
                .collect();
            if dims != expected.as_slice() {
                return Err(ServeError::InvalidRequest(format!(
                    "support batch shape {dims:?} does not match {expected:?} \
                     ({} labels, registered input shape {:?})",
                    batch.len(),
                    deployment.image_dims
                )));
            }
        }
        // A NaN increment would make the budget NaN and every admission
        // comparison false — admission control silently disabled.
        ServeRequest::TopUpBudget { energy_mj, .. }
            if !energy_mj.is_finite() || *energy_mj < 0.0 =>
        {
            return Err(ServeError::InvalidRequest(format!(
                "budget top-up must be a finite non-negative amount, got {energy_mj}"
            )));
        }
        _ => {}
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn route(
    envelope: Envelope,
    registry: &LearnerRegistry,
    config: &ServeConfig,
    queue: &JobQueue,
    coalescer: &mut Coalescer,
    deferred: &mut HashMap<String, VecDeque<Envelope>>,
    journal: Option<&dyn CommitJournal>,
    obs: Option<&EventSink>,
) {
    let name = envelope.request.deployment().to_string();
    // A read-only replica rejects writes before even resolving the
    // deployment: its state changes only by tailing the primary's snapshot
    // stream, never through its own request path.
    if config.read_only && envelope.request.is_write() {
        return envelope.reject(ServeError::ReadOnlyReplica { deployment: name });
    }
    let deployment = match registry.resolve(&name) {
        Ok(deployment) => deployment,
        Err(error) => return envelope.reject(error),
    };
    if let Err(error) = validate(&deployment, &envelope.request) {
        return envelope.reject(error);
    }

    // Budget top-ups are answered by the dispatcher itself, then unblock as
    // much deferred work as the new budget covers, oldest first.
    if let ServeRequest::TopUpBudget { energy_mj, .. } = envelope.request {
        let journaled = match journal {
            Some(journal) => {
                // Learns journal their meter state under the model lock;
                // holding it here too makes the two meter-read + append
                // pairs mutually exclusive, so WAL meter states land in
                // true order (a stale read can otherwise be appended after
                // a newer one and win the replay). Top-ups are rare
                // control-plane operations, so briefly parking the
                // dispatcher behind a learn in flight is acceptable.
                let _model = deployment.model.lock().expect("model lock poisoned");
                deployment.meter.top_up(energy_mj);
                let seq = *deployment.repl_seq.lock().expect("repl seq lock poisoned");
                let (spent_mj, budget_mj) = deployment.meter.spent_and_budget();
                journal.journal_top_up(&name, seq, spent_mj, budget_mj)
            }
            None => {
                deployment.meter.top_up(energy_mj);
                Ok(())
            }
        };
        match journaled {
            Ok(()) => {
                let (spent_mj, remaining_mj) = deployment.meter.state();
                let _ = envelope
                    .reply
                    .send(Ok(ServeResponse::Budget { spent_mj, remaining_mj }));
                if let Some(obs) = obs {
                    obs.emit(Event::new(EventKind::TopUp, &name).with_energy_mj(energy_mj));
                }
            }
            // The budget did move; the caller just must not believe the
            // change is durable.
            Err(e) => envelope.reject(ServeError::Execution(format!(
                "budget raised but journaling failed: {e}"
            ))),
        }
        release_deferred(&name, registry, queue, coalescer, deferred);
        return;
    }

    match admit(&deployment, &envelope.request) {
        Admission::Granted => dispatch(deployment, envelope, queue, coalescer),
        Admission::Refused { required_mj, remaining_mj } => match deployment.policy {
            BudgetPolicy::Reject => {
                count_rejection(&deployment, &envelope.request, obs);
                envelope.reject(ServeError::BudgetExhausted {
                    deployment: name,
                    required_mj,
                    remaining_mj,
                });
            }
            BudgetPolicy::Defer => {
                deployment.stats.lock().expect("stats lock poisoned").deferred += 1;
                deferred.entry(name).or_default().push_back(envelope);
            }
        },
    }
}

enum Admission {
    Granted,
    Refused { required_mj: f64, remaining_mj: f64 },
}

/// Records an admission refusal in the per-type rejection counters. Only
/// priced request types (`Infer`, `LearnOnline`) can be refused; the split
/// keeps the throughput counters (`infer_requests` / `learn_requests`)
/// measuring **accepted** work only. With observability enabled, each
/// refusal is also a `Reject` event priced at what admission demanded.
fn count_rejection(deployment: &Deployment, request: &ServeRequest, obs: Option<&EventSink>) {
    let mut stats = deployment.stats.lock().expect("stats lock poisoned");
    match request {
        ServeRequest::Infer { .. } => stats.rejected_infer += 1,
        ServeRequest::LearnOnline { .. } => stats.rejected_learn += 1,
        _ => {}
    }
    drop(stats);
    if let Some(obs) = obs {
        obs.emit(
            Event::new(EventKind::Reject, &deployment.name)
                .with_energy_mj(price(deployment, request)),
        );
    }
}

fn admit(deployment: &Deployment, request: &ServeRequest) -> Admission {
    let required_mj = price(deployment, request);
    if required_mj <= 0.0 {
        return Admission::Granted;
    }
    match deployment.meter.try_spend(required_mj) {
        Ok(()) => Admission::Granted,
        Err(remaining_mj) => Admission::Refused { required_mj, remaining_mj },
    }
}

/// Appends a job to the deployment's FIFO work queue and schedules the
/// deployment on the worker pool unless a token for it is already out.
fn enqueue(deployment: &Arc<Deployment>, job: DeploymentJob, queue: &JobQueue) {
    let needs_token = {
        let mut work = deployment.work.lock().expect("work queue lock poisoned");
        work.jobs.push_back(job);
        !std::mem::replace(&mut work.scheduled, true)
    };
    if needs_token {
        queue.push(Arc::clone(deployment));
    }
}

/// Turns an admitted envelope into work: infers join the coalescer, other
/// requests become immediate jobs behind an ordering barrier that flushes
/// the deployment's pending batch first. Per-deployment execution order is
/// the enqueue order, enforced by the token scheduling.
fn dispatch(
    deployment: Arc<Deployment>,
    envelope: Envelope,
    queue: &JobQueue,
    coalescer: &mut Coalescer,
) {
    let Envelope { request, reply } = envelope;
    match request {
        ServeRequest::Infer { image, .. } => {
            if let Some((deployment, job)) = coalescer.push(deployment, InferItem { image, reply })
            {
                enqueue(&deployment, job, queue);
            }
        }
        ServeRequest::LearnOnline { batch, .. } => {
            if let Some((deployment, job)) = coalescer.flush_deployment(&deployment.name) {
                enqueue(&deployment, job, queue);
            }
            enqueue(&deployment, DeploymentJob::Learn { batch, reply }, queue);
        }
        ServeRequest::Snapshot { .. } => {
            if let Some((deployment, job)) = coalescer.flush_deployment(&deployment.name) {
                enqueue(&deployment, job, queue);
            }
            enqueue(&deployment, DeploymentJob::Snapshot { reply }, queue);
        }
        ServeRequest::Stats { .. } => {
            if let Some((deployment, job)) = coalescer.flush_deployment(&deployment.name) {
                enqueue(&deployment, job, queue);
            }
            enqueue(&deployment, DeploymentJob::Stats { reply }, queue);
        }
        // Handled by `route` before admission.
        ServeRequest::TopUpBudget { .. } => unreachable!("top-ups are dispatcher-local"),
    }
}

fn release_deferred(
    name: &str,
    registry: &LearnerRegistry,
    queue: &JobQueue,
    coalescer: &mut Coalescer,
    deferred: &mut HashMap<String, VecDeque<Envelope>>,
) {
    let Some(parked) = deferred.get_mut(name) else { return };
    // Deployments cannot be unregistered, so one resolve covers the whole
    // queue.
    let Ok(deployment) = registry.resolve(name) else {
        for envelope in parked.drain(..) {
            envelope.reject(ServeError::UnknownDeployment(name.to_string()));
        }
        deferred.remove(name);
        return;
    };
    while let Some(envelope) = parked.pop_front() {
        match admit(&deployment, &envelope.request) {
            Admission::Granted => {
                dispatch(Arc::clone(&deployment), envelope, queue, coalescer);
            }
            Admission::Refused { .. } => {
                // Budget ran dry again; keep FIFO order and stop.
                parked.push_front(envelope);
                break;
            }
        }
    }
    if parked.is_empty() {
        deferred.remove(name);
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(
    queue: &JobQueue,
    sink: Option<&mpsc::Sender<LearnCommit>>,
    journal: Option<&dyn CommitJournal>,
    obs: Option<&EventSink>,
) {
    while let Some(deployment) = queue.pop() {
        // Drain this deployment's queue in FIFO order. The `scheduled` flag
        // is cleared under the same lock that proves the queue empty, so a
        // concurrent `enqueue` either sees the flag still set (and this loop
        // picks its job up) or re-schedules the deployment itself.
        loop {
            let job = {
                let mut work = deployment.work.lock().expect("work queue lock poisoned");
                match work.jobs.pop_front() {
                    Some(job) => job,
                    None => {
                        work.scheduled = false;
                        break;
                    }
                }
            };
            match job {
                DeploymentJob::InferBatch(items) => run_infer_batch(&deployment, items, obs),
                DeploymentJob::Learn { batch, reply } => {
                    run_learn(&deployment, &batch, &reply, sink, journal, obs)
                }
                DeploymentJob::Snapshot { reply } => run_snapshot(&deployment, &reply),
                DeploymentJob::Stats { reply } => {
                    let mut stats = deployment.stats_snapshot();
                    if let Some(journal) = journal {
                        stats.durability = journal.durability_stats(&deployment.name);
                    }
                    let _ = reply.send(Ok(ServeResponse::Stats(stats)));
                }
            }
        }
    }
}

fn run_infer_batch(deployment: &Deployment, items: Vec<InferItem>, obs: Option<&EventSink>) {
    let n = items.len();
    // The latency timer only runs when someone is listening.
    let started = obs.map(|_| std::time::Instant::now());
    let images: Vec<&Tensor> = items.iter().map(|item| &item.image).collect();
    // One lock acquisition and one batched forward for the whole batch; the
    // per-row cosine classification reuses the already-projected features.
    let outcome = Tensor::stack(&images)
        .map_err(|e| e.to_string())
        .and_then(|batch| {
            let mut model = deployment.model.lock().expect("model lock poisoned");
            let theta_p = model
                .extract_features(&batch, Mode::Eval)
                .map_err(|e| e.to_string())?;
            let d_p = theta_p.dims()[1];
            let mut predictions = Vec::with_capacity(n);
            for row in 0..n {
                let query = &theta_p.as_slice()[row * d_p..(row + 1) * d_p];
                predictions.push(model.em().classify(query).map_err(|e| e.to_string())?);
            }
            Ok(predictions)
        });
    match outcome {
        Ok(predictions) => {
            // Counters and the amortized-price settlement land *before* the
            // replies: a client that observes its response must also observe
            // the request in the statistics and the settled energy spend.
            {
                let mut stats = deployment.stats.lock().expect("stats lock poisoned");
                stats.infer_requests += n as u64;
                stats.infer_batches += 1;
                stats.largest_batch = stats.largest_batch.max(n);
            }
            // Admission charged n single-sample passes before the batch
            // formed; settle the spend at the batch's amortized cost.
            deployment.meter.refund(deployment.infer_batch_refund_mj(n));
            // One Infer event per item: the batch's settled energy amortized
            // per item, the batch's latency, the prediction's similarity as
            // the accuracy proxy.
            let per_item_mj = deployment.batched_infer_mj(n) / n as f64;
            let latency_us =
                started.map_or(0, |started| started.elapsed().as_micros() as u64);
            for (item, (class, similarity)) in items.into_iter().zip(predictions) {
                if let Some(obs) = obs {
                    obs.emit(
                        Event::new(EventKind::Infer, &deployment.name)
                            .with_energy_mj(per_item_mj)
                            .with_latency_us(latency_us)
                            .with_accuracy(similarity),
                    );
                }
                let _ = item.reply.send(Ok(ServeResponse::Prediction {
                    class,
                    similarity,
                    batched_with: n,
                }));
            }
        }
        Err(message) => {
            for item in items {
                let _ = item.reply.send(Err(ServeError::Execution(message.clone())));
            }
        }
    }
}

fn run_learn(
    deployment: &Deployment,
    batch: &ofscil_data::Batch,
    reply: &Reply,
    sink: Option<&mpsc::Sender<LearnCommit>>,
    journal: Option<&dyn CommitJournal>,
    obs: Option<&EventSink>,
) {
    let started = obs.map(|_| std::time::Instant::now());
    // The amortized settlement is derived *before* taking the model lock
    // (the derivation itself locks the model on a cache miss): admission
    // charged batch.len() single-sample passes, but the batch's forwards
    // stream the weights once.
    let refund_mj = deployment.learn_batch_refund_mj(batch.len());
    // The commit (sequence number + post-commit prototypes) is assembled —
    // and journaled — while the model lock is still held, so replication and
    // the write-ahead log see mutations in exactly the order they happened,
    // with the exact stored bit patterns.
    let outcome = {
        let mut model = deployment.model.lock().expect("model lock poisoned");
        model
            .learn_classes_online(batch)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                let mut classes = batch.labels.clone();
                classes.sort_unstable();
                classes.dedup();
                let total_classes = model.em().num_classes();
                let seq = {
                    let mut seq = deployment.repl_seq.lock().expect("repl seq lock poisoned");
                    *seq += 1;
                    *seq
                };
                // Settle the meter before the journal reads it, so the
                // journaled energy state is the post-commit truth.
                deployment.meter.refund(refund_mj);
                let commit = (sink.is_some() || journal.is_some()).then(|| LearnCommit {
                    deployment: deployment.name.clone(),
                    seq,
                    updates: classes
                        .iter()
                        .map(|&class| {
                            let prototype = model
                                .em()
                                .prototype(class)
                                .expect("class was just learned")
                                .to_vec();
                            (class, prototype)
                        })
                        .collect(),
                    total_classes,
                });
                if let (Some(journal), Some(commit)) = (journal, commit.as_ref()) {
                    let (spent_mj, budget_mj) = deployment.meter.spent_and_budget();
                    journal
                        .journal_learn(commit, spent_mj, budget_mj)
                        .map_err(|e| format!("commit applied but journaling failed: {e}"))?;
                }
                Ok((classes, total_classes, seq, commit))
            })
    };
    match outcome {
        Ok((classes, total_classes, seq, commit)) => {
            deployment.stats.lock().expect("stats lock poisoned").learn_requests += 1;
            if let Some(obs) = obs {
                obs.emit(
                    Event::new(EventKind::Learn, &deployment.name)
                        .with_seq(seq)
                        .with_energy_mj(deployment.batched_learn_mj(batch.len()))
                        .with_latency_us(
                            started.map_or(0, |started| started.elapsed().as_micros() as u64),
                        ),
                );
            }
            if let (Some(sink), Some(commit)) = (sink, commit) {
                // A sink that hung up just stops replicating; serving goes on.
                let _ = sink.send(commit);
            }
            let _ = reply.send(Ok(ServeResponse::Learned { classes, total_classes }));
        }
        Err(message) => {
            let _ = reply.send(Err(ServeError::Execution(message)));
        }
    }
}

fn run_snapshot(deployment: &Deployment, reply: &Reply) {
    let bytes = {
        let model = deployment.model.lock().expect("model lock poisoned");
        encode_explicit_memory(model.em())
    };
    deployment.stats.lock().expect("stats lock poisoned").snapshots += 1;
    let _ = reply.send(Ok(ServeResponse::Snapshot { bytes }));
}

// ---------------------------------------------------------------------------
// Job queue
// ---------------------------------------------------------------------------

/// A blocking MPMC queue of deployment tokens: the dispatcher pushes, every
/// worker pops.
///
/// `std::sync::mpsc` receivers cannot be shared between workers without
/// holding a lock across the blocking `recv` (which would serialize the
/// pool), so the pool uses the classic `Mutex<VecDeque> + Condvar` shape.
struct JobQueue {
    inner: Mutex<JobQueueInner>,
    ready: Condvar,
}

struct JobQueueInner {
    tokens: VecDeque<Arc<Deployment>>,
    closed: bool,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            inner: Mutex::new(JobQueueInner { tokens: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, token: Arc<Deployment>) {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        inner.tokens.push_back(token);
        drop(inner);
        self.ready.notify_one();
    }

    /// Blocks until a token is available; returns `None` once the queue is
    /// closed and drained.
    fn pop(&self) -> Option<Arc<Deployment>> {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        loop {
            if let Some(token) = inner.tokens.pop_front() {
                return Some(token);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue lock poisoned");
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().expect("job queue lock poisoned");
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DeploymentSpec;
    use ofscil_core::OFscilModel;
    use ofscil_nn::models::BackboneKind;
    use ofscil_tensor::SeedRng;

    fn registry_with(names: &[&str]) -> LearnerRegistry {
        let registry = LearnerRegistry::new();
        for (i, name) in names.iter().enumerate() {
            let mut rng = SeedRng::new(i as u64);
            registry
                .register(
                    DeploymentSpec::new(name, (8, 8)),
                    OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
                )
                .unwrap();
        }
        registry
    }

    fn class_image(class: usize, jitter: f32) -> Tensor {
        crate::traffic::class_image(8, class, jitter)
    }

    fn support_batch(classes: &[usize], shots: usize) -> ofscil_data::Batch {
        crate::traffic::support_batch(8, classes, shots)
    }

    #[test]
    fn learn_then_infer_roundtrip() {
        let registry = registry_with(&["t"]);
        let prediction = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let learned = client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[0, 1, 2], 3),
                })
                .unwrap();
            match learned {
                ServeResponse::Learned { classes, total_classes } => {
                    assert_eq!(classes, vec![0, 1, 2]);
                    assert_eq!(total_classes, 3);
                }
                other => panic!("unexpected response {other:?}"),
            }
            client
                .call(ServeRequest::Infer { deployment: "t".into(), image: class_image(1, 0.02) })
                .unwrap()
        })
        .unwrap();
        match prediction {
            ServeResponse::Prediction { class, similarity, batched_with } => {
                assert_eq!(class, 1);
                assert!(similarity > 0.5);
                assert_eq!(batched_with, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Counters survive the runtime (they live in the registry).
        let stats = registry.stats("t").unwrap();
        assert_eq!(stats.infer_requests, 1);
        assert_eq!(stats.learn_requests, 1);
        assert_eq!(stats.classes, 3);
    }

    #[test]
    fn observed_runtime_emits_one_event_per_unit_of_work() {
        use ofscil_obs::{Obs, ObsConfig, ObsQuery};

        let registry = LearnerRegistry::new();
        let mut rng = SeedRng::new(0);
        registry
            .register(
                // A budget too small for the first learn forces one
                // observable rejection before the top-up.
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(0.0001, BudgetPolicy::Reject),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        let obs = Obs::new(ObsConfig::default());
        ServeRuntime::run_observed(
            &registry,
            &ServeConfig::default(),
            None,
            None,
            Some(obs.sink()),
            |client| {
                let err = client
                    .call(ServeRequest::LearnOnline {
                        deployment: "t".into(),
                        batch: support_batch(&[0, 1, 2], 3),
                    })
                    .unwrap_err();
                assert!(matches!(err, ServeError::BudgetExhausted { .. }));
                client
                    .call(ServeRequest::TopUpBudget {
                        deployment: "t".into(),
                        energy_mj: 500.0,
                    })
                    .unwrap();
                client
                    .call(ServeRequest::LearnOnline {
                        deployment: "t".into(),
                        batch: support_batch(&[0, 1, 2], 3),
                    })
                    .unwrap();
                for _ in 0..3 {
                    client
                        .call(ServeRequest::Infer {
                            deployment: "t".into(),
                            image: class_image(1, 0.02),
                        })
                        .unwrap();
                }
            },
        )
        .unwrap();

        let count_of = |kind: EventKind| {
            obs.query(&ObsQuery::deployment("t").with_kinds(&[kind])).aggregates.matched
        };
        assert_eq!(count_of(EventKind::Reject), 1);
        assert_eq!(count_of(EventKind::TopUp), 1);
        assert_eq!(count_of(EventKind::Learn), 1);
        assert_eq!(count_of(EventKind::Infer), 3);
        let result = obs.query(&ObsQuery::deployment("t"));
        assert_eq!(result.dropped, 0);
        // The learn carries its replication sequence number; infers carry a
        // finite accuracy proxy and a real energy price.
        let learns = obs.query(&ObsQuery::deployment("t").with_kinds(&[EventKind::Learn]));
        assert_eq!(learns.events[0].seq, 1);
        let infers = obs.query(&ObsQuery::deployment("t").with_kinds(&[EventKind::Infer]));
        assert_eq!(infers.aggregates.accuracy.count, 3);
        assert!(infers.aggregates.energy_mj.min > 0.0);
    }

    #[test]
    fn unknown_deployment_and_bad_shape_are_rejected() {
        let registry = registry_with(&["t"]);
        ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let err = client
                .call(ServeRequest::Infer {
                    deployment: "ghost".into(),
                    image: class_image(0, 0.0),
                })
                .unwrap_err();
            assert!(matches!(err, ServeError::UnknownDeployment(_)));
            let err = client
                .call(ServeRequest::Infer {
                    deployment: "t".into(),
                    image: Tensor::zeros(&[3, 4, 4]),
                })
                .unwrap_err();
            assert!(matches!(err, ServeError::InvalidRequest(_)));
            let err = client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: ofscil_data::Batch {
                        images: Tensor::zeros(&[0, 3, 8, 8]),
                        labels: vec![],
                    },
                })
                .unwrap_err();
            assert!(matches!(err, ServeError::InvalidRequest(_)));
        })
        .unwrap();
    }

    #[test]
    fn snapshot_via_request_matches_registry_snapshot() {
        let registry = registry_with(&["t"]);
        registry
            .with_model("t", |model| {
                model.em_mut().set_prototype(3, &[0.5; 16]).unwrap();
            })
            .unwrap();
        let bytes = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            match client.call(ServeRequest::Snapshot { deployment: "t".into() }).unwrap() {
                ServeResponse::Snapshot { bytes } => bytes,
                other => panic!("unexpected response {other:?}"),
            }
        })
        .unwrap();
        assert_eq!(bytes, registry.snapshot("t").unwrap());
        assert_eq!(registry.stats("t").unwrap().snapshots, 1);
    }

    #[test]
    fn per_deployment_order_holds_without_waiting() {
        // Submit learn → infer → snapshot back-to-back with no intermediate
        // waits: the per-deployment FIFO guarantees the snapshot observes
        // the learn (and the infer finds a populated memory) even with a
        // full worker pool racing.
        let registry = registry_with(&["t"]);
        let (inferred, snapshot) = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let learn = client.submit(ServeRequest::LearnOnline {
                deployment: "t".into(),
                batch: support_batch(&[0, 1], 2),
            });
            let infer = client.submit(ServeRequest::Infer {
                deployment: "t".into(),
                image: class_image(0, 0.03),
            });
            let stats = client.submit(ServeRequest::Stats { deployment: "t".into() });
            let snapshot = client.submit(ServeRequest::Snapshot { deployment: "t".into() });
            learn.wait().unwrap();
            match stats.wait().unwrap() {
                ServeResponse::Stats(stats) => {
                    // The stats read is itself ordered: it must count the
                    // infer admitted before it.
                    assert_eq!(stats.infer_requests, 1);
                    assert_eq!(stats.learn_requests, 1);
                }
                other => panic!("unexpected response {other:?}"),
            }
            (infer.wait(), snapshot.wait().unwrap())
        })
        .unwrap();
        assert!(inferred.is_ok(), "infer ran before the learn it followed: {inferred:?}");
        match snapshot {
            ServeResponse::Snapshot { bytes } => {
                let em = crate::snapshot::decode_explicit_memory(&bytes).unwrap();
                assert_eq!(em.classes(), vec![0, 1]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn nan_top_up_is_rejected_before_touching_the_meter() {
        let registry = LearnerRegistry::new();
        let mut rng = SeedRng::new(0);
        registry
            .register(
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(1e6, BudgetPolicy::Reject),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let err = client
                .call(ServeRequest::TopUpBudget { deployment: "t".into(), energy_mj: f64::NAN })
                .unwrap_err();
            assert!(matches!(err, ServeError::InvalidRequest(_)));
            let err = client
                .call(ServeRequest::TopUpBudget { deployment: "t".into(), energy_mj: -1.0 })
                .unwrap_err();
            assert!(matches!(err, ServeError::InvalidRequest(_)));
            // The budget survived untouched and still admits work.
            client
                .call(ServeRequest::Infer { deployment: "t".into(), image: class_image(0, 0.0) })
                .unwrap_err(); // empty memory -> execution error, but admitted
        })
        .unwrap();
        let stats = registry.stats("t").unwrap();
        assert_eq!(stats.energy_budget_mj, Some(1e6));
        assert!(stats.energy_spent_mj > 0.0);
    }

    #[test]
    fn read_only_runtime_rejects_writes_but_serves_reads() {
        let registry = registry_with(&["t"]);
        registry
            .with_model("t", |model| {
                model.em_mut().set_prototype(0, &[1.0; 16]).unwrap();
            })
            .unwrap();
        let config = ServeConfig::default().read_only();
        ServeRuntime::run(&registry, &config, |client| {
            let err = client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[1], 2),
                })
                .unwrap_err();
            assert!(matches!(err, ServeError::ReadOnlyReplica { ref deployment } if deployment == "t"));
            let err = client
                .call(ServeRequest::TopUpBudget { deployment: "t".into(), energy_mj: 1.0 })
                .unwrap_err();
            assert!(matches!(err, ServeError::ReadOnlyReplica { .. }));
            // Reads still flow.
            client
                .call(ServeRequest::Infer { deployment: "t".into(), image: class_image(0, 0.0) })
                .unwrap();
            client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap();
            client.call(ServeRequest::Snapshot { deployment: "t".into() }).unwrap();
        })
        .unwrap();
        // The replica's memory was never touched by the rejected write.
        assert_eq!(registry.with_model("t", |m| m.em().classes()).unwrap(), vec![0]);
    }

    #[test]
    fn bounded_queue_sheds_load_with_queue_full() {
        // No dispatcher behind the channel: submissions stay queued, so the
        // depth limit trips deterministically.
        let (tx, _rx) = mpsc::channel();
        let client = ServeClient {
            tx,
            gauge: Arc::new(DepthGauge { queued: AtomicUsize::new(0), limit: 2 }),
        };
        let first = client.submit(ServeRequest::Stats { deployment: "t".into() });
        let second = client.submit(ServeRequest::Stats { deployment: "t".into() });
        let shed = client.submit(ServeRequest::Stats { deployment: "t".into() });
        assert!(matches!(shed.wait(), Err(ServeError::QueueFull { depth: 2 })));
        // The first two were accepted (their replies are still pending).
        drop(_rx);
        assert!(matches!(first.wait(), Err(ServeError::ShuttingDown)));
        assert!(matches!(second.wait(), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn bounded_queue_recovers_once_the_dispatcher_catches_up() {
        let registry = registry_with(&["t"]);
        let config = ServeConfig::default().with_queue_depth(64);
        ServeRuntime::run(&registry, &config, |client| {
            for _ in 0..4 {
                client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn replicated_run_streams_sequence_numbered_commits() {
        let registry = registry_with(&["t"]);
        let (sink, commits) = mpsc::channel();
        ServeRuntime::run_replicated(&registry, &ServeConfig::default(), Some(sink), |client| {
            client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[0, 1], 2),
                })
                .unwrap();
            client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[2], 2),
                })
                .unwrap();
        })
        .unwrap();
        let commits: Vec<LearnCommit> = commits.try_iter().collect();
        assert_eq!(commits.len(), 2);
        assert_eq!(commits[0].seq, 1);
        assert_eq!(commits[1].seq, 2);
        assert_eq!(
            commits[0].updates.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(commits[1].updates[0].0, 2);
        assert_eq!(commits[1].total_classes, 3);
        // The streamed prototypes are the exact stored bit patterns.
        for commit in &commits {
            for (class, streamed) in &commit.updates {
                let stored = registry
                    .with_model("t", |m| m.em().prototype(*class).unwrap().to_vec())
                    .unwrap();
                assert!(streamed.iter().zip(&stored).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
        // The snapshot anchor reports the last committed sequence number.
        let (seq, _) = registry.snapshot_with_seq("t").unwrap();
        assert_eq!(seq, 2);
    }

    /// `(kind, deployment, seq, spent_mj, budget_mj)` of one journaled op.
    type JournalEvent = (String, String, u64, f64, Option<f64>);

    #[derive(Default)]
    struct MemJournal {
        events: Mutex<Vec<JournalEvent>>,
        fail: std::sync::atomic::AtomicBool,
    }

    impl CommitJournal for MemJournal {
        fn journal_learn(
            &self,
            commit: &LearnCommit,
            spent_mj: f64,
            budget_mj: Option<f64>,
        ) -> std::result::Result<(), String> {
            if self.fail.load(Ordering::Acquire) {
                return Err("disk full".into());
            }
            self.events.lock().unwrap().push((
                "learn".into(),
                commit.deployment.clone(),
                commit.seq,
                spent_mj,
                budget_mj,
            ));
            Ok(())
        }

        fn journal_top_up(
            &self,
            deployment: &str,
            seq: u64,
            spent_mj: f64,
            budget_mj: Option<f64>,
        ) -> std::result::Result<(), String> {
            self.events.lock().unwrap().push((
                "topup".into(),
                deployment.to_string(),
                seq,
                spent_mj,
                budget_mj,
            ));
            Ok(())
        }

        fn durability_stats(&self, _deployment: &str) -> Option<crate::DurabilityStats> {
            Some(crate::DurabilityStats {
                wal_records: self.events.lock().unwrap().len() as u64,
                ..Default::default()
            })
        }
    }

    #[test]
    fn journaled_run_records_commits_in_order_and_surfaces_durability() {
        let registry = LearnerRegistry::new();
        let mut rng = SeedRng::new(0);
        registry
            .register(
                DeploymentSpec::new("t", (8, 8)).with_energy_budget(1e6, BudgetPolicy::Reject),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        let journal = MemJournal::default();
        let stats =
            ServeRuntime::run_journaled(&registry, &ServeConfig::default(), None, Some(&journal), |client| {
                client
                    .call(ServeRequest::LearnOnline {
                        deployment: "t".into(),
                        batch: support_batch(&[0, 1], 2),
                    })
                    .unwrap();
                client
                    .call(ServeRequest::TopUpBudget { deployment: "t".into(), energy_mj: 5.0 })
                    .unwrap();
                client
                    .call(ServeRequest::LearnOnline {
                        deployment: "t".into(),
                        batch: support_batch(&[2], 2),
                    })
                    .unwrap();
                match client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap() {
                    ServeResponse::Stats(stats) => stats,
                    other => panic!("unexpected response {other:?}"),
                }
            })
            .unwrap();

        let events = journal.events.lock().unwrap();
        let kinds: Vec<(&str, u64)> =
            events.iter().map(|(k, _, seq, _, _)| (k.as_str(), *seq)).collect();
        // Learn seq 1, top-up at seq 1 (top-ups do not advance), learn seq 2.
        assert_eq!(kinds, vec![("learn", 1), ("topup", 1), ("learn", 2)]);
        // The journaled meter state is the settled post-commit truth: the
        // final learn's spent matches the registry's meter exactly.
        let (spent, budget) = registry.energy_state("t").unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.3.to_bits(), spent.to_bits());
        assert_eq!(last.4.map(f64::to_bits), budget.map(f64::to_bits));
        // Stats surfaced the journal's durability counters.
        assert_eq!(stats.durability.unwrap().wal_records, 3);
    }

    #[test]
    fn failed_journal_write_fails_the_request_but_not_the_runtime() {
        let registry = registry_with(&["t"]);
        let journal = MemJournal::default();
        journal.fail.store(true, Ordering::Release);
        ServeRuntime::run_journaled(&registry, &ServeConfig::default(), None, Some(&journal), |client| {
            let err = client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[0], 2),
                })
                .unwrap_err();
            assert!(matches!(err, ServeError::Execution(ref msg) if msg.contains("journal")));
            // The runtime keeps serving; reads are unaffected.
            client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap();
        })
        .unwrap();
    }

    #[test]
    fn learn_batches_are_settled_at_the_amortized_price() {
        let registry = registry_with(&["t"]);
        let deployment = registry.resolve("t").unwrap();
        let single = deployment.pricing().learn_sample_mj;
        let shots = 4usize;
        let classes = 2usize;
        let n = shots * classes;
        ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            client
                .call(ServeRequest::LearnOnline {
                    deployment: "t".into(),
                    batch: support_batch(&[0, 1], shots),
                })
                .unwrap();
        })
        .unwrap();
        // Admission charged n single-sample passes; the settled spend is the
        // batch's amortized energy (weights streamed once).
        let (spent, _) = deployment.meter.state();
        let amortized = deployment.batched_learn_mj(n);
        assert!(
            (spent - amortized).abs() < 1e-9,
            "spent {spent} mJ, expected amortized {amortized} mJ"
        );
        assert!(spent < single * n as f64);
    }

    #[test]
    fn coalesced_batches_are_settled_at_the_amortized_price() {
        let registry = registry_with(&["t"]);
        registry
            .with_model("t", |model| {
                model.learn_classes_online(&support_batch(&[0, 1], 2))
            })
            .unwrap()
            .unwrap();
        let deployment = registry.resolve("t").unwrap();
        let single = deployment.pricing().infer_mj;
        let n = 6;

        // Simulate admission: n requests each charged the single-sample rate.
        for _ in 0..n {
            deployment.meter.try_spend(single).unwrap();
        }
        let items: Vec<InferItem> = (0..n)
            .map(|i| {
                let (reply, _rx) = mpsc::channel();
                InferItem { image: class_image(i % 2, 0.01), reply }
            })
            .collect();
        run_infer_batch(&deployment, items, None);

        // The spend settled at the batch's amortized energy, not n passes.
        let (spent, _) = deployment.meter.state();
        let amortized = deployment.batched_infer_mj(n);
        assert!(
            (spent - amortized).abs() < 1e-9,
            "spent {spent} mJ, expected amortized {amortized} mJ"
        );
        assert!(spent < single * n as f64);
    }

    #[test]
    fn reject_policy_surfaces_budget_errors() {
        let registry = LearnerRegistry::new();
        let mut rng = SeedRng::new(0);
        registry
            .register(
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(0.0, BudgetPolicy::Reject),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let err = client
                .call(ServeRequest::Infer { deployment: "t".into(), image: class_image(0, 0.0) })
                .unwrap_err();
            assert!(matches!(err, ServeError::BudgetExhausted { .. }));
            // Free requests are always admitted.
            client.call(ServeRequest::Stats { deployment: "t".into() }).unwrap();
        })
        .unwrap();
        let stats = registry.stats("t").unwrap();
        // The refusal lands in the per-type rejection counter, never in the
        // accepted-throughput counters.
        assert_eq!(stats.rejected_infer, 1);
        assert_eq!(stats.rejected_learn, 0);
        assert_eq!(stats.rejected(), 1);
        assert_eq!(stats.infer_requests, 0);
    }

    #[test]
    fn defer_policy_parks_until_top_up_and_fails_at_shutdown() {
        let registry = LearnerRegistry::new();
        let mut rng = SeedRng::new(0);
        registry
            .register(
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(0.0, BudgetPolicy::Defer),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        registry
            .with_model("t", |model| {
                model.em_mut().set_prototype(0, &[1.0; 16]).unwrap();
            })
            .unwrap();

        // Released by a top-up: the deferred inference completes.
        let released = ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
            let parked = client.submit(ServeRequest::Infer {
                deployment: "t".into(),
                image: class_image(0, 0.0),
            });
            client
                .call(ServeRequest::TopUpBudget { deployment: "t".into(), energy_mj: 1e6 })
                .unwrap();
            parked.wait()
        })
        .unwrap();
        assert!(released.is_ok(), "released request failed: {released:?}");

        // Never topped up: the deferred request is settled at shutdown.
        let registry2 = LearnerRegistry::new();
        let mut rng = SeedRng::new(1);
        registry2
            .register(
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(0.0, BudgetPolicy::Defer),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
        let parked = ServeRuntime::run(&registry2, &ServeConfig::default(), |client| {
            client.submit(ServeRequest::Infer {
                deployment: "t".into(),
                image: class_image(0, 0.0),
            })
        })
        .unwrap();
        assert!(matches!(parked.wait(), Err(ServeError::BudgetExhausted { .. })));
        let stats = registry2.stats("t").unwrap();
        assert_eq!(stats.deferred, 1);
        // A deferral that was never released is ultimately a rejection.
        assert_eq!(stats.rejected_infer, 1);
        assert_eq!(stats.infer_requests, 0);
    }
}
