//! Binary snapshot codec for the explicit memory.
//!
//! The workspace's `serde` stand-in is marker-only (see
//! `third_party/README.md`), so warm restart and replication need an in-tree
//! wire format. The codec is deliberately tiny and fully self-describing:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"OFEM"
//! 4       2     format version, little-endian u16 (currently 1)
//! 6       1     prototype storage precision in bits
//! 7       1     reserved (zero)
//! 8       4     prototype dimensionality d_p, little-endian u32
//! 12      4     prototype count, little-endian u32
//! 16      …     count × entry:  class id (u64 LE) + d_p × f32 (LE bits)
//! end-4   4     FNV-1a checksum of every preceding byte, little-endian u32
//! ```
//!
//! Floats are stored as their exact IEEE-754 bit patterns, so a decode
//! followed by [`ExplicitMemory::restore_prototype`] (which bypasses the
//! storage quantizer) round-trips **bit-exactly** — the property the
//! `snapshot_roundtrip` integration test asserts across dimensions, class
//! counts and every [`PrototypePrecision`] variant.

use crate::{Result, ServeError};
use ofscil_core::ExplicitMemory;
use ofscil_quant::PrototypePrecision;
use std::error::Error;
use std::fmt;

/// Magic bytes identifying an explicit-memory snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OFEM";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 4;

/// Decode-time failure of the snapshot codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream is shorter than the fixed header + checksum.
    Truncated {
        /// Minimum number of bytes a snapshot can have.
        needed: usize,
        /// Number of bytes actually provided.
        actual: usize,
    },
    /// The magic bytes do not identify an explicit-memory snapshot.
    BadMagic([u8; 4]),
    /// The format version is not understood by this decoder.
    UnsupportedVersion(u16),
    /// The byte length does not match the header's dimension and count.
    LengthMismatch {
        /// Length implied by the header.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// The checksum over the payload does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the snapshot.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The stored precision is not a valid [`PrototypePrecision`].
    BadPrecision(u8),
    /// A stored class id does not fit in `usize` on this platform.
    ClassOverflow(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, actual } => {
                write!(f, "snapshot truncated: {actual} bytes, need at least {needed}")
            }
            SnapshotError::BadMagic(magic) => {
                write!(f, "bad snapshot magic {magic:?} (expected {SNAPSHOT_MAGIC:?})")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (decoder speaks {SNAPSHOT_VERSION})")
            }
            SnapshotError::LengthMismatch { expected, actual } => {
                write!(f, "snapshot length {actual} does not match header-implied {expected}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(f, "snapshot checksum {stored:#010x} does not match computed {computed:#010x}")
            }
            SnapshotError::BadPrecision(bits) => {
                write!(f, "snapshot stores an unsupported precision of {bits} bits")
            }
            SnapshotError::ClassOverflow(class) => {
                write!(f, "snapshot class id {class} overflows usize on this platform")
            }
        }
    }
}

impl Error for SnapshotError {}

/// FNV-1a 32-bit hash — small, dependency-free corruption detection. Not a
/// cryptographic integrity check.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Serializes an explicit memory to the snapshot wire format.
///
/// The encoding is deterministic: prototypes are written in ascending class
/// order, so two memories with identical contents produce identical bytes
/// (replicas can be compared by hash).
pub fn encode_explicit_memory(em: &ExplicitMemory) -> Vec<u8> {
    let dim = em.dim();
    let count = em.num_classes();
    let mut bytes =
        Vec::with_capacity(HEADER_LEN + count * (8 + dim * 4) + CHECKSUM_LEN);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.push(em.precision().bits());
    bytes.push(0u8);
    bytes.extend_from_slice(&(dim as u32).to_le_bytes());
    bytes.extend_from_slice(&(count as u32).to_le_bytes());
    for (class, prototype) in em.iter() {
        bytes.extend_from_slice(&(class as u64).to_le_bytes());
        for &v in prototype {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Deserializes an explicit memory from the snapshot wire format.
///
/// # Errors
///
/// Returns a [`SnapshotError`] (wrapped in [`ServeError::Snapshot`]) when the
/// bytes are truncated, carry a bad magic or version, fail the checksum, or
/// declare an unsupported precision.
pub fn decode_explicit_memory(bytes: &[u8]) -> Result<ExplicitMemory> {
    let min = HEADER_LEN + CHECKSUM_LEN;
    if bytes.len() < min {
        return Err(SnapshotError::Truncated { needed: min, actual: bytes.len() }.into());
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("length checked");
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic).into());
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("length checked"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version).into());
    }
    let bits = bytes[6];
    let dim = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked")) as usize;
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("length checked")) as usize;
    // Header fields are corruption-controlled: compute the implied length in
    // u128 so absurd dim/count values fail the comparison instead of
    // overflowing usize (a wrapped value could pass the guard and panic in
    // the decode loop).
    let expected =
        (HEADER_LEN + CHECKSUM_LEN) as u128 + count as u128 * (8 + dim as u128 * 4);
    if bytes.len() as u128 != expected {
        return Err(SnapshotError::LengthMismatch {
            expected: usize::try_from(expected).unwrap_or(usize::MAX),
            actual: bytes.len(),
        }
        .into());
    }
    let payload_end = bytes.len() - CHECKSUM_LEN;
    let stored =
        u32::from_le_bytes(bytes[payload_end..].try_into().expect("length checked"));
    let computed = fnv1a(&bytes[..payload_end]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed }.into());
    }
    let precision = PrototypePrecision::new(bits)
        .map_err(|_| ServeError::Snapshot(SnapshotError::BadPrecision(bits)))?;

    let mut em = ExplicitMemory::with_precision(dim, precision);
    let mut offset = HEADER_LEN;
    let mut prototype = vec![0.0f32; dim];
    for _ in 0..count {
        let class_raw =
            u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("length checked"));
        let class = usize::try_from(class_raw)
            .map_err(|_| ServeError::Snapshot(SnapshotError::ClassOverflow(class_raw)))?;
        offset += 8;
        for slot in prototype.iter_mut() {
            let raw =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("length checked"));
            *slot = f32::from_bits(raw);
            offset += 4;
        }
        em.restore_prototype(class, &prototype)?;
    }
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_memory() -> ExplicitMemory {
        let mut em =
            ExplicitMemory::with_precision(4, PrototypePrecision::new(8).unwrap());
        em.set_prototype(0, &[0.5, -0.25, 0.75, -1.0]).unwrap();
        em.set_prototype(9, &[-0.1, 0.2, -0.3, 0.4]).unwrap();
        em
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let em = sample_memory();
        let bytes = encode_explicit_memory(&em);
        let back = decode_explicit_memory(&bytes).unwrap();
        assert_eq!(back.dim(), em.dim());
        assert_eq!(back.precision(), em.precision());
        assert_eq!(back.classes(), em.classes());
        for (class, proto) in em.iter() {
            let restored = back.prototype(class).unwrap();
            let exact = proto
                .iter()
                .zip(restored)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(exact, "class {class} round trip differs");
        }
    }

    #[test]
    fn empty_memory_roundtrips() {
        let em = ExplicitMemory::new(16);
        let back = decode_explicit_memory(&encode_explicit_memory(&em)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.dim(), 16);
        assert_eq!(back.precision().bits(), 32);
    }

    #[test]
    fn encoding_is_deterministic() {
        let em = sample_memory();
        assert_eq!(encode_explicit_memory(&em), encode_explicit_memory(&em));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode_explicit_memory(&sample_memory());

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_explicit_memory(&bad_magic),
            Err(ServeError::Snapshot(SnapshotError::BadMagic(_)))
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xee;
        assert!(matches!(
            decode_explicit_memory(&bad_version),
            Err(ServeError::Snapshot(SnapshotError::UnsupportedVersion(_)))
        ));

        let mut flipped_payload = bytes.clone();
        flipped_payload[HEADER_LEN + 10] ^= 0x01;
        assert!(matches!(
            decode_explicit_memory(&flipped_payload),
            Err(ServeError::Snapshot(SnapshotError::ChecksumMismatch { .. }))
        ));

        assert!(matches!(
            decode_explicit_memory(&bytes[..bytes.len() - 3]),
            Err(ServeError::Snapshot(SnapshotError::LengthMismatch { .. }))
        ));
        assert!(matches!(
            decode_explicit_memory(&bytes[..7]),
            Err(ServeError::Snapshot(SnapshotError::Truncated { .. }))
        ));
    }

    #[test]
    fn absurd_header_dimensions_fail_cleanly() {
        // dim and count near u32::MAX would overflow a naive
        // `count * (8 + dim * 4)` length computation; the decoder must
        // report a mismatch, not wrap, pass the guard and index out of
        // bounds.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.push(32u8);
        bytes.push(0u8);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            decode_explicit_memory(&bytes),
            Err(ServeError::Snapshot(SnapshotError::LengthMismatch { .. }))
        ));
    }
}
