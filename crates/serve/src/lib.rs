//! `ofscil_serve` — a multi-tenant serving runtime for online few-shot
//! class-incremental learners.
//!
//! The rest of the workspace exercises O-FSCIL through the one-shot
//! [`run_experiment`](ofscil_core::run_experiment) driver. This crate keeps
//! models **alive**: many independent [`OFscilModel`](ofscil_core::OFscilModel)
//! deployments serve mixed inference and online-learning traffic from
//! concurrent clients, under the paper's energy envelope, across restarts.
//!
//! The pieces:
//!
//! * [`LearnerRegistry`] — named deployments behind sharded `RwLock`s; each
//!   model sits behind its own lock so tenants proceed concurrently,
//! * [`ServeRequest`] / [`ServeResponse`] — the typed request API (`Infer`,
//!   `LearnOnline`, `Snapshot`, `Stats`, `TopUpBudget`), dispatched over
//!   `std::sync::mpsc` channels to a `std::thread::scope` worker pool by
//!   [`ServeRuntime::run`],
//! * a coalescing batcher — concurrent `Infer` requests for one deployment
//!   merge into a single batched forward pass, amortizing the matmul (the
//!   `serve_throughput` bench prints the batched-vs-sequential ratio),
//! * energy-budget admission — every request is priced in millijoules on the
//!   GAP9 cost model ([`RequestPricing`]); once a deployment's budget is
//!   spent, work is rejected or deferred per [`BudgetPolicy`], turning the
//!   paper's 12 mJ/class headline into a runtime policy. Coalesced batches
//!   are settled at their **amortized** energy after running: the batch
//!   streams the weights once, so the meter refunds the difference to `n`
//!   independent passes,
//! * [`snapshot`] — an in-tree binary codec that round-trips the explicit
//!   memory bit-exactly for warm restart and replication (the workspace's
//!   `serde` stand-in is marker-only, so the wire format lives here),
//! * replication hooks — [`ServeRuntime::run_replicated`] streams every
//!   committed `LearnOnline` as a sequence-numbered [`LearnCommit`], and a
//!   runtime configured [`read_only`](ServeConfig::read_only) serves replica
//!   traffic while rejecting writes (`ofscil_wire` builds its socket server
//!   and follower mode on these),
//! * durability hooks — [`ServeRuntime::run_journaled`] additionally writes
//!   every commit and budget top-up to a [`CommitJournal`] (journaled under
//!   the deployment's model lock, so record order provably matches mutation
//!   order); `ofscil_store` implements the trait with a WAL + checkpoint
//!   store and recovers deployments bit-exactly after a crash,
//! * backpressure — [`ServeConfig::queue_depth`] bounds the dispatcher queue
//!   and sheds excess submissions with [`ServeError::QueueFull`].
//!
//! # Example
//!
//! ```no_run
//! use ofscil_serve::{
//!     DeploymentSpec, LearnerRegistry, ServeConfig, ServeRequest, ServeRuntime,
//! };
//! use ofscil_core::OFscilModel;
//! use ofscil_nn::models::BackboneKind;
//! use ofscil_tensor::{SeedRng, Tensor};
//!
//! let mut rng = SeedRng::new(42);
//! let registry = LearnerRegistry::new();
//! registry
//!     .register(
//!         DeploymentSpec::new("tenant-a", (32, 32)),
//!         OFscilModel::new(BackboneKind::Micro, 32, &mut rng),
//!     )
//!     .unwrap();
//! ServeRuntime::run(&registry, &ServeConfig::default(), |client| {
//!     let response = client.call(ServeRequest::Infer {
//!         deployment: "tenant-a".into(),
//!         image: Tensor::zeros(&[3, 32, 32]),
//!     });
//!     println!("{response:?}");
//! })
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod error;
mod journal;
mod registry;
mod request;
mod runtime;
pub mod snapshot;
pub mod traffic;

pub use config::ServeConfig;
pub use error::ServeError;
pub use journal::{CommitJournal, DurabilityStats};
pub use registry::{
    BudgetPolicy, DeploymentExport, DeploymentSpec, DeploymentStats, ExportStats,
    LearnerRegistry, RequestPricing,
};
pub use request::{PendingResponse, ServeRequest, ServeResponse};
pub use runtime::{LearnCommit, ServeClient, ServeRuntime};
pub use snapshot::{decode_explicit_memory, encode_explicit_memory, SnapshotError};

/// Result alias used across the serve crate.
pub type Result<T> = std::result::Result<T, ServeError>;
