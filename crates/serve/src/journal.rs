//! The commit-journal hook a durable store plugs into the runtime.
//!
//! The serving runtime is storage-agnostic: it exposes one narrow trait,
//! [`CommitJournal`], and calls it at the two points where durable state
//! changes — a committed `LearnOnline` (journaled **while the deployment's
//! model lock is still held**, so the journal's record order provably matches
//! the order of memory mutations) and a budget top-up (journaled by the
//! dispatcher right after the meter moves). `ofscil_store` implements the
//! trait with a per-deployment write-ahead log + checkpoint store; tests can
//! implement it with a `Vec` behind a mutex.

use crate::runtime::LearnCommit;

/// Durability counters of one deployment's journal, surfaced through the
/// `Stats` response so operators can watch log growth and checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Records currently in the write-ahead log (since the last checkpoint).
    pub wal_records: u64,
    /// Size of the write-ahead log file in bytes.
    pub wal_bytes: u64,
    /// Delta compactions performed on the log so far.
    pub compactions: u64,
    /// Replication sequence number of the latest full-snapshot checkpoint.
    pub last_checkpoint_seq: u64,
}

/// A sink for the runtime's durable state changes.
///
/// Implementations must be cheap enough to sit on the learn path (the learn
/// journal call happens under the deployment's model lock) and must be
/// callable from several threads at once for *different* deployments.
///
/// Errors are strings: a failed journal write fails the request it was part
/// of (the client learns its commit is not durable), but must not poison the
/// runtime.
pub trait CommitJournal: Sync {
    /// Journals one committed `LearnOnline`.
    ///
    /// Called while the deployment's model lock is held, after the meter
    /// settled the batch's amortized price — `spent_mj`/`budget_mj` are the
    /// post-commit meter state a recovery must restore.
    ///
    /// # Errors
    ///
    /// Returns a description of the failed write; the runtime answers the
    /// request with [`ServeError::Execution`](crate::ServeError::Execution).
    fn journal_learn(
        &self,
        commit: &LearnCommit,
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<(), String>;

    /// Journals a budget top-up. `seq` is the deployment's current
    /// replication sequence number (top-ups do not advance it).
    ///
    /// # Errors
    ///
    /// Returns a description of the failed write; the runtime answers the
    /// request with [`ServeError::Execution`](crate::ServeError::Execution).
    fn journal_top_up(
        &self,
        deployment: &str,
        seq: u64,
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<(), String>;

    /// The deployment's durability counters, if it is journaled. Feeds the
    /// `durability` field of
    /// [`DeploymentStats`](crate::DeploymentStats).
    fn durability_stats(&self, deployment: &str) -> Option<DurabilityStats>;
}
