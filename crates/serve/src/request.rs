//! The typed request/response API of the serving runtime.

use crate::registry::DeploymentStats;
use crate::{Result, ServeError};
use ofscil_data::Batch;
use ofscil_tensor::Tensor;
use std::sync::mpsc;

/// A request submitted to a [`ServeRuntime`](crate::ServeRuntime).
///
/// Every request names its target deployment; the dispatcher resolves the
/// name, prices the work on the deployment's energy budget and routes it to
/// the worker pool.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Classify one image. Concurrent `Infer` requests for the same
    /// deployment are coalesced into a single batched forward pass.
    Infer {
        /// Target deployment.
        deployment: String,
        /// Image of shape `[channels, height, width]` matching the
        /// deployment's registered input shape.
        image: Tensor,
    },
    /// Learn the classes present in a support batch online (single pass, the
    /// paper's EM update).
    LearnOnline {
        /// Target deployment.
        deployment: String,
        /// Support samples; every class in the batch gets its prototype
        /// (re)computed.
        batch: Batch,
    },
    /// Serialize the deployment's explicit memory with the snapshot codec.
    Snapshot {
        /// Target deployment.
        deployment: String,
    },
    /// Read the deployment's statistics.
    Stats {
        /// Target deployment.
        deployment: String,
    },
    /// Raise the deployment's energy budget and release deferred requests.
    TopUpBudget {
        /// Target deployment.
        deployment: String,
        /// Budget increment in millijoules.
        energy_mj: f64,
    },
}

impl ServeRequest {
    /// The deployment the request targets.
    pub fn deployment(&self) -> &str {
        match self {
            ServeRequest::Infer { deployment, .. }
            | ServeRequest::LearnOnline { deployment, .. }
            | ServeRequest::Snapshot { deployment }
            | ServeRequest::Stats { deployment }
            | ServeRequest::TopUpBudget { deployment, .. } => deployment,
        }
    }

    /// Returns `true` when the request mutates deployment state (learning or
    /// budget changes) — the requests a read-only replica rejects.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ServeRequest::LearnOnline { .. } | ServeRequest::TopUpBudget { .. }
        )
    }
}

/// A successful response to a [`ServeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Answer to `Infer`.
    Prediction {
        /// Most similar stored class.
        class: usize,
        /// Cosine similarity to that class's prototype.
        similarity: f32,
        /// Size of the coalesced forward pass this request rode in (1 when
        /// it ran alone).
        batched_with: usize,
    },
    /// Answer to `LearnOnline`.
    Learned {
        /// Classes whose prototypes were written, ascending.
        classes: Vec<usize>,
        /// Total classes now stored in the explicit memory.
        total_classes: usize,
    },
    /// Answer to `Snapshot`.
    Snapshot {
        /// The encoded explicit memory.
        bytes: Vec<u8>,
    },
    /// Answer to `Stats`.
    Stats(DeploymentStats),
    /// Answer to `TopUpBudget`.
    Budget {
        /// Energy admitted so far in millijoules.
        spent_mj: f64,
        /// Remaining budget in millijoules; `None` when unlimited.
        remaining_mj: Option<f64>,
    },
}

/// The reply channel of one in-flight request.
pub(crate) type Reply = mpsc::Sender<Result<ServeResponse>>;

/// A request plus its reply channel, as it travels to the dispatcher.
pub(crate) struct Envelope {
    pub request: ServeRequest,
    pub reply: Reply,
}

impl Envelope {
    /// Fails the request; a receiver that gave up is not an error.
    pub fn reject(self, error: ServeError) {
        let _ = self.reply.send(Err(error));
    }
}

/// The response side of a submitted request.
///
/// Dropping a `PendingResponse` abandons the request: it still executes (and
/// still spends budget) but the reply is discarded.
#[derive(Debug)]
pub struct PendingResponse {
    pub(crate) rx: mpsc::Receiver<Result<ServeResponse>>,
}

impl PendingResponse {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the request's error, or [`ServeError::ShuttingDown`] when the
    /// runtime terminated without serving it.
    pub fn wait(self) -> Result<ServeResponse> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_accessor_covers_all_variants() {
        let requests = [
            ServeRequest::Infer { deployment: "d".into(), image: Tensor::zeros(&[1, 2, 2]) },
            ServeRequest::Snapshot { deployment: "d".into() },
            ServeRequest::Stats { deployment: "d".into() },
            ServeRequest::TopUpBudget { deployment: "d".into(), energy_mj: 1.0 },
        ];
        for request in &requests {
            assert_eq!(request.deployment(), "d");
        }
    }

    #[test]
    fn write_classification_matches_replica_semantics() {
        assert!(ServeRequest::LearnOnline {
            deployment: "d".into(),
            batch: ofscil_data::Batch { images: Tensor::zeros(&[1, 3, 2, 2]), labels: vec![0] },
        }
        .is_write());
        assert!(ServeRequest::TopUpBudget { deployment: "d".into(), energy_mj: 1.0 }.is_write());
        assert!(!ServeRequest::Infer {
            deployment: "d".into(),
            image: Tensor::zeros(&[3, 2, 2])
        }
        .is_write());
        assert!(!ServeRequest::Snapshot { deployment: "d".into() }.is_write());
        assert!(!ServeRequest::Stats { deployment: "d".into() }.is_write());
    }

    #[test]
    fn dropped_runtime_yields_shutting_down() {
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let pending = PendingResponse { rx };
        assert!(matches!(pending.wait(), Err(ServeError::ShuttingDown)));
    }
}
