//! Runtime configuration for the serving loop.

use crate::{Result, ServeError};
use ofscil_tensor::recommended_threads;

/// Configuration of a [`ServeRuntime`](crate::ServeRuntime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker threads executing jobs. Workers for *different*
    /// deployments run concurrently; requests for the same deployment are
    /// serialized by the deployment's own lock.
    pub workers: usize,
    /// Maximum number of concurrent `Infer` requests for one deployment that
    /// the batcher coalesces into a single batched forward pass.
    pub max_batch: usize,
    /// Maximum number of queued envelopes the dispatcher drains per cycle
    /// before emitting jobs. Bounds the latency a burst can add to the first
    /// request of the cycle.
    pub drain_limit: usize,
    /// Maximum number of submitted-but-undispatched requests. Submissions
    /// beyond this depth are shed immediately with
    /// [`ServeError::QueueFull`](crate::ServeError::QueueFull) instead of
    /// buffering without bound — the backpressure a socket frontend needs so
    /// slow peers cannot exhaust memory. `None` means unbounded.
    pub queue_depth: Option<usize>,
    /// When `true` the runtime serves a read-only replica: `Infer`, `Stats`
    /// and `Snapshot` are served normally, while state-mutating requests
    /// (`LearnOnline`, `TopUpBudget`) are rejected with
    /// [`ServeError::ReadOnlyReplica`](crate::ServeError::ReadOnlyReplica).
    pub read_only: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: recommended_threads(),
            max_batch: 16,
            drain_limit: 256,
            queue_depth: None,
            read_only: false,
        }
    }
}

impl ServeConfig {
    /// A request-at-a-time configuration: one worker, no coalescing. This is
    /// the baseline the `serve_throughput` bench compares batching against.
    pub fn sequential() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 1,
            drain_limit: 1,
            queue_depth: None,
            read_only: false,
        }
    }

    /// Sets the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum coalesced batch size (builder style).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Bounds the dispatcher queue: submissions beyond `depth` in-flight
    /// undispatched requests are shed with `QueueFull` (builder style).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Marks the runtime as a read-only replica (builder style): writes are
    /// rejected with `ReadOnlyReplica`.
    #[must_use]
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any knob is zero.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be at least 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be at least 1".into()));
        }
        if self.drain_limit == 0 {
            return Err(ServeError::InvalidConfig("drain_limit must be at least 1".into()));
        }
        if self.queue_depth == Some(0) {
            return Err(ServeError::InvalidConfig(
                "queue_depth must be at least 1 when bounded".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ServeConfig::default().validate().unwrap();
        ServeConfig::sequential().validate().unwrap();
        assert_eq!(ServeConfig::sequential().max_batch, 1);
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServeConfig::default().with_workers(0).validate().is_err());
        assert!(ServeConfig::default().with_max_batch(0).validate().is_err());
        let config = ServeConfig { drain_limit: 0, ..ServeConfig::default() };
        assert!(config.validate().is_err());
        assert!(ServeConfig::default().with_queue_depth(0).validate().is_err());
        ServeConfig::default().with_queue_depth(1).validate().unwrap();
    }

    #[test]
    fn read_only_builder_sets_the_flag() {
        let config = ServeConfig::default().read_only();
        assert!(config.read_only);
        config.validate().unwrap();
    }
}
