//! Runtime configuration for the serving loop.

use crate::{Result, ServeError};
use ofscil_tensor::recommended_threads;

/// Configuration of a [`ServeRuntime`](crate::ServeRuntime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of worker threads executing jobs. Workers for *different*
    /// deployments run concurrently; requests for the same deployment are
    /// serialized by the deployment's own lock.
    pub workers: usize,
    /// Maximum number of concurrent `Infer` requests for one deployment that
    /// the batcher coalesces into a single batched forward pass.
    pub max_batch: usize,
    /// Maximum number of queued envelopes the dispatcher drains per cycle
    /// before emitting jobs. Bounds the latency a burst can add to the first
    /// request of the cycle.
    pub drain_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: recommended_threads(),
            max_batch: 16,
            drain_limit: 256,
        }
    }
}

impl ServeConfig {
    /// A request-at-a-time configuration: one worker, no coalescing. This is
    /// the baseline the `serve_throughput` bench compares batching against.
    pub fn sequential() -> Self {
        ServeConfig { workers: 1, max_batch: 1, drain_limit: 1 }
    }

    /// Sets the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum coalesced batch size (builder style).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any knob is zero.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be at least 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be at least 1".into()));
        }
        if self.drain_limit == 0 {
            return Err(ServeError::InvalidConfig("drain_limit must be at least 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ServeConfig::default().validate().unwrap();
        ServeConfig::sequential().validate().unwrap();
        assert_eq!(ServeConfig::sequential().max_batch, 1);
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServeConfig::default().with_workers(0).validate().is_err());
        assert!(ServeConfig::default().with_max_batch(0).validate().is_err());
        let config = ServeConfig { drain_limit: 0, ..ServeConfig::default() };
        assert!(config.validate().is_err());
    }
}
