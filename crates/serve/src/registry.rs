//! The multi-tenant learner registry: named [`OFscilModel`] deployments
//! behind sharded locks, each with its own energy budget and statistics.

use crate::snapshot::{decode_explicit_memory, encode_explicit_memory};
use crate::{Result, ServeError};
use ofscil_core::OFscilModel;
use ofscil_gap9::{
    deploy_backbone, deploy_fcr, estimate_execution, Gap9Config, NetworkWorkload, PowerModel,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// What happens to a request once a deployment's energy budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Over-budget requests are rejected with
    /// [`ServeError::BudgetExhausted`].
    Reject,
    /// Over-budget requests are parked in a per-deployment deferred queue and
    /// released in FIFO order when the budget is topped up
    /// (`ServeRequest::TopUpBudget`). Requests still deferred at shutdown are
    /// failed with [`ServeError::BudgetExhausted`] so no response is lost.
    Defer,
}

/// Registration-time description of one deployment.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Unique deployment (tenant) name.
    pub name: String,
    /// Input image height and width the deployment serves. Requests are
    /// validated against this shape at admission.
    pub image_hw: (usize, usize),
    /// Energy budget in millijoules; `None` means unlimited.
    pub energy_budget_mj: Option<f64>,
    /// Policy applied once the budget is spent.
    pub budget_policy: BudgetPolicy,
    /// Cluster cores assumed when pricing requests on the GAP9 model.
    pub cores: usize,
    /// Device model used for pricing.
    pub gap9: Gap9Config,
}

impl DeploymentSpec {
    /// Creates a spec with an unlimited budget, the full 8-core cluster and
    /// the default device model.
    pub fn new(name: &str, image_hw: (usize, usize)) -> Self {
        DeploymentSpec {
            name: name.to_string(),
            image_hw,
            energy_budget_mj: None,
            budget_policy: BudgetPolicy::Reject,
            cores: 8,
            gap9: Gap9Config::default(),
        }
    }

    /// Sets an energy budget and the policy applied once it is spent
    /// (builder style).
    #[must_use]
    pub fn with_energy_budget(mut self, budget_mj: f64, policy: BudgetPolicy) -> Self {
        self.energy_budget_mj = Some(budget_mj);
        self.budget_policy = policy;
        self
    }

    /// Sets the core count used for pricing (builder style).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }
}

/// Energy prices of one deployment's request types, derived from the GAP9
/// cost model at registration time. This is the paper's 12 mJ/class headline
/// turned into an admission-control price list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestPricing {
    /// Energy of one inference (backbone + FCR forward) in millijoules.
    pub infer_mj: f64,
    /// Energy of learning from one support sample (one backbone + FCR pass;
    /// the prototype accumulation is negligible next to it) in millijoules.
    pub learn_sample_mj: f64,
}

impl RequestPricing {
    /// A zero-cost price list (used when pricing is irrelevant, e.g. tests).
    pub fn free() -> Self {
        RequestPricing { infer_mj: 0.0, learn_sample_mj: 0.0 }
    }
}

/// Everything needed to re-derive a deployment's price list when its
/// execution precision changes (fp32 → int8 conversion).
#[derive(Debug, Clone)]
struct PricingBasis {
    gap9: Gap9Config,
    cores: usize,
    image_hw: (usize, usize),
}

/// Bytes moved per parameter/activation at fp32 relative to the int8
/// deployment the GAP9 workload descriptors assume.
const FP32_BYTES_PER_INT8: u64 = 4;

/// Scales an int8-deployed workload to fp32 byte traffic: weights and
/// activations are four bytes each instead of one, so every DMA transfer
/// quadruples. Compute (MAC count) is unchanged — on the modelled device the
/// dominant fp32 penalty is the memory traffic, which is exactly what the
/// latency model prices.
fn scale_workload_to_fp32(workload: &mut NetworkWorkload) {
    for layer in &mut workload.layers {
        layer.weight_bytes *= FP32_BYTES_PER_INT8;
        layer.input_bytes *= FP32_BYTES_PER_INT8;
        layer.output_bytes *= FP32_BYTES_PER_INT8;
    }
}

/// Energy of one forward pass of `workload` on the device model, in
/// millijoules.
fn workload_energy_mj(workload: &NetworkWorkload, basis: &PricingBasis) -> Result<f64> {
    let estimate = estimate_execution(workload, &basis.gap9, basis.cores, false)?;
    Ok(PowerModel::new(basis.gap9.clone()).energy_mj(&estimate))
}

/// Scales a single-sample workload to a coalesced batch of `batch` samples:
/// MACs, activation traffic and parallel work all grow with the batch, while
/// the weight traffic is paid **once** — the weights stream through the DMA a
/// single time and every sample in the batch reuses them. That one-time
/// weight cost is where batched inference undercuts `batch` independent
/// passes.
fn scale_workload_to_batch(workload: &mut NetworkWorkload, batch: usize) {
    let batch = batch as u64;
    for layer in &mut workload.layers {
        layer.macs *= batch;
        layer.input_bytes *= batch;
        layer.output_bytes *= batch;
        layer.parallel_units *= batch;
    }
}

/// Derives the price list for the model at its *current* execution precision:
/// an fp32 model pays fp32 byte traffic; once converted to int8 the same
/// deployment is re-priced at the cheaper quantized rate.
fn derive_pricing(model: &OFscilModel, basis: &PricingBasis) -> Result<RequestPricing> {
    let (height, width) = basis.image_hw;
    let mut backbone = deploy_backbone(model.backbone(), height, width);
    let mut fcr = deploy_fcr(model.backbone().feature_dim, model.projection_dim());
    if !model.is_int8() {
        scale_workload_to_fp32(&mut backbone);
        scale_workload_to_fp32(&mut fcr);
    }
    let per_pass_mj = workload_energy_mj(&backbone, basis)? + workload_energy_mj(&fcr, basis)?;
    Ok(RequestPricing { infer_mj: per_pass_mj, learn_sample_mj: per_pass_mj })
}

/// Device-model energy of one coalesced inference batch of `batch` samples at
/// the model's current execution precision, in millijoules.
fn derive_batched_infer_mj(
    model: &OFscilModel,
    basis: &PricingBasis,
    batch: usize,
) -> Result<f64> {
    let (height, width) = basis.image_hw;
    let mut backbone = deploy_backbone(model.backbone(), height, width);
    let mut fcr = deploy_fcr(model.backbone().feature_dim, model.projection_dim());
    if !model.is_int8() {
        scale_workload_to_fp32(&mut backbone);
        scale_workload_to_fp32(&mut fcr);
    }
    scale_workload_to_batch(&mut backbone, batch);
    scale_workload_to_batch(&mut fcr, batch);
    Ok(workload_energy_mj(&backbone, basis)? + workload_energy_mj(&fcr, basis)?)
}

/// Throughput counters carried inside a [`DeploymentExport`], mirroring the
/// per-deployment statistics: a migration adopts them on the target so the
/// tenant's accepted/rejected history survives the move instead of resetting
/// to zero (the same zero-loss property the energy meter gets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExportStats {
    /// Individual `Infer` requests served.
    pub infer_requests: u64,
    /// Batched forward passes those requests were coalesced into.
    pub infer_batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: u64,
    /// `LearnOnline` requests served.
    pub learn_requests: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// `Infer` requests refused by admission control.
    pub rejected_infer: u64,
    /// `LearnOnline` requests refused by admission control.
    pub rejected_learn: u64,
    /// Requests deferred by admission control.
    pub deferred: u64,
}

/// A deployment's migratable serving state, as produced by
/// [`LearnerRegistry::export_deployment`] and consumed by
/// [`LearnerRegistry::import_deployment`]: the bit-exact explicit-memory
/// snapshot, the replication sequence number it was taken at, and the
/// billing state (energy meter + throughput counters) so a migrated tenant
/// keeps its spend history and budget on the new shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeploymentExport {
    /// Deployment name (must be registered on the importing side).
    pub name: String,
    /// Replication sequence number the snapshot was taken at.
    pub seq: u64,
    /// `ofscil_serve::snapshot` codec bytes.
    pub snapshot: Vec<u8>,
    /// Energy admitted against the budget at export time, in millijoules.
    pub spent_mj: f64,
    /// The configured energy budget in millijoules, if any.
    pub budget_mj: Option<f64>,
    /// Throughput/admission counters at export time.
    pub stats: ExportStats,
}

/// Point-in-time statistics of one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentStats {
    /// Deployment name.
    pub name: String,
    /// Classes currently stored in the explicit memory.
    pub classes: usize,
    /// Individual `Infer` requests served.
    pub infer_requests: u64,
    /// Batched forward passes those requests were coalesced into.
    pub infer_batches: u64,
    /// Largest coalesced batch observed.
    pub largest_batch: usize,
    /// `LearnOnline` requests served.
    pub learn_requests: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// `Infer` requests refused by admission control. Kept separate from
    /// [`DeploymentStats::infer_requests`], which counts **accepted** work
    /// only — a budget-exhaustion storm must not inflate the throughput
    /// counters it was refused by.
    pub rejected_infer: u64,
    /// `LearnOnline` requests refused by admission control (same split as
    /// [`DeploymentStats::rejected_infer`]).
    pub rejected_learn: u64,
    /// Requests deferred by admission control (may since have been released).
    pub deferred: u64,
    /// Energy admitted against the budget so far, in millijoules.
    pub energy_spent_mj: f64,
    /// The configured energy budget in millijoules, if any.
    pub energy_budget_mj: Option<f64>,
    /// Durability counters of the deployment's write-ahead log; `None` when
    /// the runtime serves without a [`CommitJournal`](crate::CommitJournal).
    pub durability: Option<crate::DurabilityStats>,
}

impl DeploymentStats {
    /// Mean coalesced batch size over all served `Infer` requests.
    pub fn mean_batch(&self) -> f64 {
        if self.infer_batches == 0 {
            0.0
        } else {
            self.infer_requests as f64 / self.infer_batches as f64
        }
    }

    /// Total requests refused by admission control, across request types.
    pub fn rejected(&self) -> u64 {
        self.rejected_infer + self.rejected_learn
    }

    /// Total requests accepted and served, across request types.
    pub fn accepted(&self) -> u64 {
        self.infer_requests + self.learn_requests
    }
}

/// Mutable counters behind the deployment lock.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub infer_requests: u64,
    pub infer_batches: u64,
    pub largest_batch: usize,
    pub learn_requests: u64,
    pub snapshots: u64,
    pub rejected_infer: u64,
    pub rejected_learn: u64,
    pub deferred: u64,
}

/// The energy budget meter of one deployment.
#[derive(Debug)]
pub(crate) struct EnergyMeter {
    inner: Mutex<MeterInner>,
}

#[derive(Debug)]
struct MeterInner {
    budget_mj: Option<f64>,
    spent_mj: f64,
}

impl EnergyMeter {
    fn new(budget_mj: Option<f64>) -> Self {
        EnergyMeter { inner: Mutex::new(MeterInner { budget_mj, spent_mj: 0.0 }) }
    }

    /// Admits `cost_mj` against the budget. Returns the remaining budget on
    /// refusal.
    pub fn try_spend(&self, cost_mj: f64) -> std::result::Result<(), f64> {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        match inner.budget_mj {
            Some(budget) if inner.spent_mj + cost_mj > budget => {
                Err((budget - inner.spent_mj).max(0.0))
            }
            _ => {
                inner.spent_mj += cost_mj;
                Ok(())
            }
        }
    }

    /// Returns `mj` to the meter: the spend drops (never below zero), the
    /// budget itself is untouched. This is how amortized batch pricing is
    /// settled — admission conservatively charges the single-sample rate per
    /// request, and once a coalesced batch has actually run, the difference
    /// to the batch's cheaper amortized cost is handed back.
    pub fn refund(&self, mj: f64) {
        if !mj.is_finite() || mj <= 0.0 {
            return;
        }
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        inner.spent_mj = (inner.spent_mj - mj).max(0.0);
    }

    /// Raises the budget by `mj` (a no-op for unlimited deployments).
    pub fn top_up(&self, mj: f64) {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        if let Some(budget) = inner.budget_mj.as_mut() {
            *budget += mj;
        }
    }

    /// Returns `(spent, remaining)`; remaining is `None` for unlimited.
    pub fn state(&self) -> (f64, Option<f64>) {
        let inner = self.inner.lock().expect("meter lock poisoned");
        (inner.spent_mj, inner.budget_mj.map(|b| (b - inner.spent_mj).max(0.0)))
    }

    /// Returns `(spent, budget)` — the raw pair a durable journal records
    /// and crash recovery restores (unlike [`EnergyMeter::state`], which
    /// reports the *remaining* budget).
    pub fn spent_and_budget(&self) -> (f64, Option<f64>) {
        let inner = self.inner.lock().expect("meter lock poisoned");
        (inner.spent_mj, inner.budget_mj)
    }

    /// Overwrites the meter with journaled state — crash recovery only.
    pub fn recover(&self, spent_mj: f64, budget_mj: Option<f64>) {
        let mut inner = self.inner.lock().expect("meter lock poisoned");
        inner.spent_mj = spent_mj;
        inner.budget_mj = budget_mj;
    }

    fn budget(&self) -> Option<f64> {
        self.inner.lock().expect("meter lock poisoned").budget_mj
    }
}

/// One registered deployment: the model behind its own lock, the per-
/// deployment FIFO work queue, and the immutable admission metadata the
/// dispatcher reads without locking either.
pub(crate) struct Deployment {
    pub name: String,
    pub model: Mutex<OFscilModel>,
    pub work: Mutex<crate::batch::WorkQueue>,
    pub stats: Mutex<StatsInner>,
    pub meter: EnergyMeter,
    /// Current price list; swapped atomically when the deployment converts
    /// to int8 and is re-priced at the cheaper quantized rate.
    pub pricing: Mutex<RequestPricing>,
    pub policy: BudgetPolicy,
    /// `[channels, height, width]` every `Infer` image must match.
    pub image_dims: Vec<usize>,
    /// Replication sequence number: incremented once per committed
    /// `LearnOnline`, read/written only while the model lock is held so the
    /// sequence order matches the order of memory mutations exactly.
    pub repl_seq: Mutex<u64>,
    /// Memoized coalesced-batch energies by batch size; cleared whenever the
    /// deployment is re-priced (int8 conversion).
    batched_mj: Mutex<HashMap<usize, f64>>,
    /// Inputs for re-deriving the price list on precision changes.
    basis: PricingBasis,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("image_dims", &self.image_dims)
            .finish_non_exhaustive()
    }
}

impl Deployment {
    /// The current request price list.
    pub fn pricing(&self) -> RequestPricing {
        *self.pricing.lock().expect("pricing lock poisoned")
    }

    /// Device-model energy of one coalesced inference batch of `n` samples,
    /// in millijoules. Activations and MACs scale with the batch while the
    /// weight traffic is paid once, so this undercuts `n` single passes —
    /// the amortization the budget meter settles after the batch runs.
    /// Clamped to at most `n` single passes (refunds can never go negative)
    /// and memoized per batch size.
    pub fn batched_infer_mj(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.pricing().infer_mj;
        }
        if let Some(&mj) = self.batched_mj.lock().expect("batch cache poisoned").get(&n) {
            return mj;
        }
        // Derive and memoize while holding the model lock: int8 conversion
        // re-prices and clears this cache under the same lock, so a stale
        // fp32-derived value can never be inserted after the clear.
        let model = self.model.lock().expect("model lock poisoned");
        let single = self.pricing().infer_mj;
        let derived = derive_batched_infer_mj(&model, &self.basis, n);
        let mj = derived.unwrap_or(single * n as f64).min(single * n as f64);
        self.batched_mj.lock().expect("batch cache poisoned").insert(n, mj);
        mj
    }

    /// Energy to hand back once a coalesced batch of `n` inferences has run:
    /// admission charged `n` single-sample passes, the batch actually cost
    /// [`Deployment::batched_infer_mj`]. Zero for unbatched requests.
    pub fn infer_batch_refund_mj(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (self.pricing().infer_mj * n as f64 - self.batched_infer_mj(n)).max(0.0)
    }

    /// Device-model energy of learning from a support batch of `n` samples,
    /// in millijoules. A learn's device work per sample is the same
    /// backbone-plus-FCR forward an inference runs (the prototype
    /// accumulation is negligible next to it), and the `n` forwards of one
    /// batch stream the weights **once** — so the batched learn shares the
    /// coalesced-infer energy derivation and its memoized cache.
    pub fn batched_learn_mj(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.pricing().learn_sample_mj;
        }
        self.batched_infer_mj(n)
    }

    /// Energy to hand back once a `LearnOnline` support batch of `n` samples
    /// has run: admission charged `n` single-sample passes, the batch
    /// actually cost [`Deployment::batched_learn_mj`]. Zero for single-shot
    /// learns.
    pub fn learn_batch_refund_mj(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        (self.pricing().learn_sample_mj * n as f64 - self.batched_learn_mj(n)).max(0.0)
    }

    /// The throughput counters in exportable form (migration payload).
    pub fn export_stats(&self) -> ExportStats {
        let stats = self.stats.lock().expect("stats lock poisoned");
        ExportStats {
            infer_requests: stats.infer_requests,
            infer_batches: stats.infer_batches,
            largest_batch: stats.largest_batch as u64,
            learn_requests: stats.learn_requests,
            snapshots: stats.snapshots,
            rejected_infer: stats.rejected_infer,
            rejected_learn: stats.rejected_learn,
            deferred: stats.deferred,
        }
    }

    /// Overwrites the throughput counters with exported ones — the import
    /// side of a migration adopting the tenant's history.
    pub fn adopt_stats(&self, exported: &ExportStats) {
        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.infer_requests = exported.infer_requests;
        stats.infer_batches = exported.infer_batches;
        stats.largest_batch = usize::try_from(exported.largest_batch).unwrap_or(usize::MAX);
        stats.learn_requests = exported.learn_requests;
        stats.snapshots = exported.snapshots;
        stats.rejected_infer = exported.rejected_infer;
        stats.rejected_learn = exported.rejected_learn;
        stats.deferred = exported.deferred;
    }

    pub fn stats_snapshot(&self) -> DeploymentStats {
        let classes = self.model.lock().expect("model lock poisoned").em().num_classes();
        let stats = self.stats.lock().expect("stats lock poisoned");
        let (spent, _) = self.meter.state();
        DeploymentStats {
            name: self.name.clone(),
            classes,
            infer_requests: stats.infer_requests,
            infer_batches: stats.infer_batches,
            largest_batch: stats.largest_batch,
            learn_requests: stats.learn_requests,
            snapshots: stats.snapshots,
            rejected_infer: stats.rejected_infer,
            rejected_learn: stats.rejected_learn,
            deferred: stats.deferred,
            energy_spent_mj: spent,
            energy_budget_mj: self.meter.budget(),
            durability: None,
        }
    }
}

/// FNV-1a over a name — the shard selector.
fn shard_of(name: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// A sharded registry of independent [`OFscilModel`] deployments.
///
/// Each shard is an `RwLock` over a name → deployment map; each deployment
/// holds its model behind its own `Mutex`. Lookups take a shard read lock
/// only long enough to clone the `Arc`, so tenants on different deployments
/// infer and learn fully concurrently, and tenants on different shards even
/// register concurrently.
#[derive(Debug)]
pub struct LearnerRegistry {
    shards: Vec<RwLock<HashMap<String, Arc<Deployment>>>>,
}

impl Default for LearnerRegistry {
    fn default() -> Self {
        LearnerRegistry::new()
    }
}

impl LearnerRegistry {
    /// Creates a registry with the default shard count (8).
    pub fn new() -> Self {
        LearnerRegistry::with_shards(8)
    }

    /// Creates a registry with an explicit shard count (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        LearnerRegistry {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Registers a deployment. The request price list is derived from the
    /// model's backbone and FCR on the spec's GAP9 device model **at the
    /// model's current execution precision** (fp32 pays fp32 byte traffic;
    /// int8 the quantized rate), so the energy budget is enforced in the
    /// same millijoules the paper reports.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateDeployment`] when the name is taken and
    /// a pricing error when the spec's core count is invalid for the device.
    pub fn register(&self, spec: DeploymentSpec, model: OFscilModel) -> Result<()> {
        let basis = PricingBasis {
            gap9: spec.gap9.clone(),
            cores: spec.cores,
            image_hw: spec.image_hw,
        };
        let pricing = derive_pricing(&model, &basis)?;
        let (height, width) = spec.image_hw;
        let image_dims = vec![model.backbone().in_channels, height, width];

        let deployment = Arc::new(Deployment {
            name: spec.name.clone(),
            model: Mutex::new(model),
            work: Mutex::new(crate::batch::WorkQueue::default()),
            stats: Mutex::new(StatsInner::default()),
            meter: EnergyMeter::new(spec.energy_budget_mj),
            pricing: Mutex::new(pricing),
            policy: spec.budget_policy,
            image_dims,
            repl_seq: Mutex::new(0),
            batched_mj: Mutex::new(HashMap::new()),
            basis,
        });

        let shard = &self.shards[shard_of(&spec.name, self.shards.len())];
        let mut map = shard.write().expect("shard lock poisoned");
        if map.contains_key(&spec.name) {
            return Err(ServeError::DuplicateDeployment(spec.name));
        }
        map.insert(spec.name, deployment);
        Ok(())
    }

    /// Resolves a deployment handle by name.
    pub(crate) fn resolve(&self, name: &str) -> Result<Arc<Deployment>> {
        let shard = &self.shards[shard_of(name, self.shards.len())];
        shard
            .read()
            .expect("shard lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownDeployment(name.to_string()))
    }

    /// The sorted list of registered deployment names.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().expect("shard lock poisoned").keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered deployments.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Returns `true` when no deployment is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a closure with exclusive access to a deployment's model — the
    /// out-of-band management path (pre-loading classes, converting to int8)
    /// used before or between serving runs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn with_model<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut OFscilModel) -> T,
    ) -> Result<T> {
        let deployment = self.resolve(name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        Ok(f(&mut model))
    }

    /// Point-in-time statistics of a deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn stats(&self, name: &str) -> Result<DeploymentStats> {
        Ok(self.resolve(name)?.stats_snapshot())
    }

    /// Serializes a deployment's explicit memory with the snapshot codec.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn snapshot(&self, name: &str) -> Result<Vec<u8>> {
        self.with_model(name, |model| encode_explicit_memory(model.em()))
    }

    /// Serializes a deployment's explicit memory together with its current
    /// replication sequence number, read atomically under the model lock.
    /// This is the anchor a follower's snapshot stream starts from: deltas
    /// with a sequence number at or below the returned one are already part
    /// of the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn snapshot_with_seq(&self, name: &str) -> Result<(u64, Vec<u8>)> {
        let deployment = self.resolve(name)?;
        let model = deployment.model.lock().expect("model lock poisoned");
        let seq = *deployment.repl_seq.lock().expect("repl seq lock poisoned");
        Ok((seq, encode_explicit_memory(model.em())))
    }

    /// Exports a deployment's migratable serving state: the explicit-memory
    /// snapshot plus the replication sequence number it was taken at, read
    /// atomically under the model lock. Backbone and FCR weights are
    /// load-time artifacts every process shares; the explicit memory is the
    /// online-learned state, and it is tiny — which is exactly what makes
    /// live migration between serving processes cheap.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn export_deployment(&self, name: &str) -> Result<DeploymentExport> {
        let deployment = self.resolve(name)?;
        let (seq, snapshot) = self.snapshot_with_seq(name)?;
        let (spent_mj, budget_mj) = deployment.meter.spent_and_budget();
        Ok(DeploymentExport {
            name: name.to_string(),
            seq,
            snapshot,
            spent_mj,
            budget_mj,
            stats: deployment.export_stats(),
        })
    }

    /// Installs an exported deployment state: the snapshot is restored
    /// **bit-exactly** and the export's replication sequence number is
    /// adopted, so the imported deployment's own snapshot anchors keep their
    /// "seq `s` contains every mutation `<= s`" meaning. The sequence never
    /// moves backwards — when this deployment's local history already ran
    /// past the export's number, the import advances it by one instead
    /// (like [`LearnerRegistry::restore`]). Either way a subscriber that
    /// was already tailing this deployment observes a forward sequence jump
    /// on the next commit and resyncs from a fresh anchor instead of
    /// silently skipping deltas. The export's billing state (energy meter +
    /// throughput counters) is adopted exactly, so a migration carries the
    /// tenant's spend history with it. Returns the number of restored
    /// classes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names, a codec
    /// error for malformed snapshot bytes, and
    /// [`ServeError::InvalidRequest`] on a projection-dimension mismatch.
    pub fn import_deployment(&self, export: &DeploymentExport) -> Result<usize> {
        self.import_deployment_with(export, |_, _, _| ()).map(|(classes, ())| classes)
    }

    /// Like [`LearnerRegistry::import_deployment`], but invokes `f` with the
    /// post-install `(seq, spent_mj, budget_mj)` **while the model lock is
    /// still held** — the journaling hook. Learns journal under the same
    /// lock, so the import's WAL record and any racing learn's are appended
    /// in true sequence order; journaling after the lock is released can
    /// interleave (a learn at seq S+1 lands before the import's record at
    /// seq S, and replay then skips the import entirely).
    ///
    /// # Errors
    ///
    /// See [`LearnerRegistry::import_deployment`].
    pub fn import_deployment_with<T>(
        &self,
        export: &DeploymentExport,
        f: impl FnOnce(u64, f64, Option<f64>) -> T,
    ) -> Result<(usize, T)> {
        let em = decode_explicit_memory(&export.snapshot)?;
        let deployment = self.resolve(&export.name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        if em.dim() != model.projection_dim() {
            return Err(ServeError::InvalidRequest(format!(
                "exported snapshot dimension {} does not match deployment projection \
                 dimension {}",
                em.dim(),
                model.projection_dim()
            )));
        }
        let classes = em.num_classes();
        *model.em_mut() = em;
        let seq = {
            let mut seq = deployment.repl_seq.lock().expect("repl seq lock poisoned");
            *seq = export.seq.max(*seq + 1);
            *seq
        };
        // Billing state rides the export: the meter and throughput counters
        // are adopted exactly, so a controller-driven migration preserves the
        // tenant's spend history and budget instead of resetting them.
        deployment.meter.recover(export.spent_mj, export.budget_mj);
        deployment.adopt_stats(&export.stats);
        let (spent_mj, budget_mj) = deployment.meter.spent_and_budget();
        let value = f(seq, spent_mj, budget_mj);
        Ok((classes, value))
    }

    /// A deployment's current replication sequence number — the cheap
    /// seq-only read (no snapshot serialization) bootstrap paths use.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn replication_seq(&self, name: &str) -> Result<u64> {
        let deployment = self.resolve(name)?;
        let seq = *deployment.repl_seq.lock().expect("repl seq lock poisoned");
        Ok(seq)
    }

    /// Applies a replication delta: stores each `(class, prototype)` pair
    /// bit-exactly via [`ExplicitMemory::restore_prototype`], bypassing the
    /// storage quantizer (the values were quantized on the primary). Returns
    /// the number of classes now stored.
    ///
    /// [`ExplicitMemory::restore_prototype`]: ofscil_core::ExplicitMemory::restore_prototype
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names and a
    /// model error when a prototype's dimensionality does not match the
    /// deployment's projection head.
    pub fn apply_prototype_updates(
        &self,
        name: &str,
        updates: &[(usize, Vec<f32>)],
    ) -> Result<usize> {
        let deployment = self.resolve(name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        for (class, prototype) in updates {
            model.em_mut().restore_prototype(*class, prototype)?;
        }
        // Every explicit-memory mutation advances the replication sequence
        // (still under the model lock), so this deployment's own snapshot
        // anchor keeps its "seq s contains every mutation <= s" meaning.
        *deployment.repl_seq.lock().expect("repl seq lock poisoned") += 1;
        Ok(model.em().num_classes())
    }

    /// The deployment's current request price list.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn pricing(&self, name: &str) -> Result<RequestPricing> {
        Ok(self.resolve(name)?.pricing())
    }

    /// Converts a deployment's model to simulated int8 execution and
    /// re-derives its price list at the quantized rate, so the energy-budget
    /// meter charges subsequent requests the cheaper int8 price. Returns the
    /// new price list.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names, a model
    /// error when weight calibration fails, and a pricing error when the
    /// stored pricing basis no longer validates.
    pub fn convert_to_int8(&self, name: &str) -> Result<RequestPricing> {
        let deployment = self.resolve(name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        if !model.is_int8() {
            model.convert_to_int8()?;
        }
        let pricing = derive_pricing(&model, &deployment.basis)?;
        *deployment.pricing.lock().expect("pricing lock poisoned") = pricing;
        // The memoized batch energies were derived at the old precision.
        deployment.batched_mj.lock().expect("batch cache poisoned").clear();
        Ok(pricing)
    }

    /// Restores a deployment's explicit memory from snapshot bytes (warm
    /// restart / replication). Returns the number of restored classes.
    ///
    /// Restoring counts as a mutation: the replication sequence number
    /// advances, so a subscriber that was tailing this deployment observes a
    /// sequence gap on the next commit and halts loudly (its state can no
    /// longer be proven exact) instead of silently diverging.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed bytes and
    /// [`ServeError::InvalidRequest`] when the snapshot's dimensionality does
    /// not match the deployment's projection head.
    pub fn restore(&self, name: &str, bytes: &[u8]) -> Result<usize> {
        self.restore_inner(name, bytes, None)
    }

    /// Like [`LearnerRegistry::restore`], but adopts `seq` as the
    /// deployment's replication sequence number **exactly** instead of
    /// advancing the local one. This is how a follower applies a
    /// full-snapshot anchor: its registry then counts in the *primary's*
    /// sequence line, so a later promotion (follower → writable primary)
    /// continues that line and re-attached subscribers resume consistently.
    ///
    /// # Errors
    ///
    /// Returns a codec error for malformed bytes and
    /// [`ServeError::InvalidRequest`] when the snapshot's dimensionality does
    /// not match the deployment's projection head.
    pub fn restore_at(&self, name: &str, bytes: &[u8], seq: u64) -> Result<usize> {
        self.restore_inner(name, bytes, Some(seq))
    }

    fn restore_inner(&self, name: &str, bytes: &[u8], seq: Option<u64>) -> Result<usize> {
        let em = decode_explicit_memory(bytes)?;
        let deployment = self.resolve(name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        if em.dim() != model.projection_dim() {
            return Err(ServeError::InvalidRequest(format!(
                "snapshot dimension {} does not match deployment projection dimension {}",
                em.dim(),
                model.projection_dim()
            )));
        }
        let classes = em.num_classes();
        *model.em_mut() = em;
        let mut current = deployment.repl_seq.lock().expect("repl seq lock poisoned");
        match seq {
            Some(seq) => *current = seq,
            None => *current += 1,
        }
        Ok(classes)
    }

    /// Returns a deployment's raw `(spent, budget)` energy-meter state — the
    /// pair a durable journal checkpoints and crash recovery restores.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names.
    pub fn energy_state(&self, name: &str) -> Result<(f64, Option<f64>)> {
        Ok(self.resolve(name)?.meter.spent_and_budget())
    }

    /// Installs a deployment's durable state after a crash: the explicit
    /// memory is restored bit-exactly, and — unlike [`LearnerRegistry::restore`],
    /// which treats restoring as a live mutation and advances the sequence —
    /// the journaled replication sequence number and energy-meter state are
    /// adopted **exactly**, because recovery recreates history rather than
    /// extending it. Returns the number of restored classes.
    ///
    /// Only a durable store should call this, on a freshly constructed
    /// registry, before any traffic is served.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names, a codec
    /// error for malformed snapshot bytes, and
    /// [`ServeError::InvalidRequest`] on a projection-dimension mismatch.
    pub fn recover_deployment(
        &self,
        name: &str,
        snapshot: &[u8],
        seq: u64,
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<usize> {
        let em = decode_explicit_memory(snapshot)?;
        let deployment = self.resolve(name)?;
        let mut model = deployment.model.lock().expect("model lock poisoned");
        if em.dim() != model.projection_dim() {
            return Err(ServeError::InvalidRequest(format!(
                "recovered snapshot dimension {} does not match deployment projection \
                 dimension {}",
                em.dim(),
                model.projection_dim()
            )));
        }
        let classes = em.num_classes();
        *model.em_mut() = em;
        *deployment.repl_seq.lock().expect("repl seq lock poisoned") = seq;
        deployment.meter.recover(spent_mj, budget_mj);
        Ok(classes)
    }

    /// Raises a deployment's energy budget by `mj` out-of-band. Budget
    /// top-ups submitted through the runtime (`ServeRequest::TopUpBudget`)
    /// additionally release deferred requests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownDeployment`] for unknown names and
    /// [`ServeError::InvalidRequest`] for non-finite or negative amounts
    /// (which would otherwise corrupt the budget meter — a NaN budget admits
    /// everything forever).
    pub fn top_up(&self, name: &str, mj: f64) -> Result<()> {
        if !mj.is_finite() || mj < 0.0 {
            return Err(ServeError::InvalidRequest(format!(
                "budget top-up must be a finite non-negative amount, got {mj}"
            )));
        }
        self.resolve(name)?.meter.top_up(mj);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_nn::models::BackboneKind;
    use ofscil_tensor::SeedRng;

    fn micro_model(seed: u64) -> OFscilModel {
        let mut rng = SeedRng::new(seed);
        OFscilModel::new(BackboneKind::Micro, 16, &mut rng)
    }

    #[test]
    fn register_resolve_and_duplicates() {
        let registry = LearnerRegistry::with_shards(2);
        assert!(registry.is_empty());
        registry
            .register(DeploymentSpec::new("tenant-a", (8, 8)), micro_model(0))
            .unwrap();
        registry
            .register(DeploymentSpec::new("tenant-b", (8, 8)), micro_model(1))
            .unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["tenant-a".to_string(), "tenant-b".to_string()]);
        let err = registry
            .register(DeploymentSpec::new("tenant-a", (8, 8)), micro_model(2))
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateDeployment(_)));
        assert!(matches!(
            registry.stats("nope").unwrap_err(),
            ServeError::UnknownDeployment(_)
        ));
    }

    #[test]
    fn pricing_is_positive_and_device_derived() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("t", (8, 8)), micro_model(0))
            .unwrap();
        let deployment = registry.resolve("t").unwrap();
        let pricing = deployment.pricing();
        assert!(pricing.infer_mj > 0.0);
        assert!((pricing.learn_sample_mj - pricing.infer_mj).abs() < 1e-12);
        assert_eq!(deployment.image_dims, vec![3, 8, 8]);
    }

    #[test]
    fn int8_conversion_reprices_at_the_cheaper_quantized_rate() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("t", (8, 8)), micro_model(0))
            .unwrap();
        let fp32 = registry.pricing("t").unwrap();
        let int8 = registry.convert_to_int8("t").unwrap();
        assert!(
            int8.infer_mj < fp32.infer_mj,
            "int8 price {} must undercut fp32 price {}",
            int8.infer_mj,
            fp32.infer_mj
        );
        assert_eq!(registry.pricing("t").unwrap(), int8);
        assert!(registry.with_model("t", |m| m.is_int8()).unwrap());
        // Converting again is idempotent: same price, no double quantization.
        let again = registry.convert_to_int8("t").unwrap();
        assert_eq!(again, int8);
        // A model registered already-converted gets the int8 rate up front.
        let mut pre = micro_model(1);
        pre.convert_to_int8().unwrap();
        registry
            .register(DeploymentSpec::new("pre", (8, 8)), pre)
            .unwrap();
        let pre_pricing = registry.pricing("pre").unwrap();
        assert!((pre_pricing.infer_mj - int8.infer_mj).abs() < 1e-12);
    }

    #[test]
    fn budget_rejected_at_fp32_price_admits_after_int8_conversion() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("t", (8, 8)), micro_model(0))
            .unwrap();
        let fp32 = registry.pricing("t").unwrap();
        let int8_estimate = fp32.infer_mj / FP32_BYTES_PER_INT8 as f64;
        // A budget below the fp32 price but comfortably above the int8 one.
        let registry = LearnerRegistry::new();
        registry
            .register(
                DeploymentSpec::new("t", (8, 8))
                    .with_energy_budget(fp32.infer_mj * 0.9, BudgetPolicy::Reject),
                micro_model(0),
            )
            .unwrap();
        let deployment = registry.resolve("t").unwrap();
        assert!(deployment.meter.try_spend(registry.pricing("t").unwrap().infer_mj).is_err());
        let int8 = registry.convert_to_int8("t").unwrap();
        assert!(int8.infer_mj < fp32.infer_mj * 0.9);
        assert!(int8.infer_mj > int8_estimate * 0.5, "sanity: int8 price in plausible range");
        deployment.meter.try_spend(int8.infer_mj).unwrap();
    }

    #[test]
    fn snapshot_with_seq_and_prototype_updates_roundtrip() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("a", (8, 8)), micro_model(0))
            .unwrap();
        let (seq, bytes) = registry.snapshot_with_seq("a").unwrap();
        assert_eq!(seq, 0);
        assert_eq!(bytes, registry.snapshot("a").unwrap());
        let proto: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let classes = registry
            .apply_prototype_updates("a", &[(3, proto.clone()), (7, proto.clone())])
            .unwrap();
        assert_eq!(classes, 2);
        let stored = registry
            .with_model("a", |m| m.em().prototype(3).unwrap().to_vec())
            .unwrap();
        assert!(stored.iter().zip(&proto).all(|(a, b)| a.to_bits() == b.to_bits()));
        // Wrong dimensionality is a typed error, not a panic.
        assert!(registry.apply_prototype_updates("a", &[(0, vec![1.0; 3])]).is_err());
        assert!(matches!(
            registry.snapshot_with_seq("ghost").unwrap_err(),
            ServeError::UnknownDeployment(_)
        ));
    }

    #[test]
    fn batched_inference_is_cheaper_than_independent_passes() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("t", (8, 8)), micro_model(0))
            .unwrap();
        let deployment = registry.resolve("t").unwrap();
        let single = deployment.pricing().infer_mj;
        // n == 1 is exactly the single-sample price, refund zero.
        assert!((deployment.batched_infer_mj(1) - single).abs() < 1e-12);
        assert_eq!(deployment.infer_batch_refund_mj(1), 0.0);
        // A real batch amortizes the weight traffic: strictly cheaper than n
        // independent passes, and the per-sample price keeps falling with n.
        let batch8 = deployment.batched_infer_mj(8);
        assert!(batch8 < 8.0 * single, "batch of 8 ({batch8}) must undercut {}", 8.0 * single);
        assert!(batch8 / 8.0 < deployment.batched_infer_mj(2) / 2.0);
        let refund = deployment.infer_batch_refund_mj(8);
        assert!((refund - (8.0 * single - batch8)).abs() < 1e-9);
        // Memoized: the second call returns the identical value.
        assert_eq!(deployment.batched_infer_mj(8), batch8);
        // Int8 conversion re-derives the cache at the quantized rate.
        registry.convert_to_int8("t").unwrap();
        let int8_batch8 = deployment.batched_infer_mj(8);
        assert!(int8_batch8 < batch8, "int8 batch must be cheaper than fp32 batch");
        assert!(int8_batch8 < 8.0 * deployment.pricing().infer_mj);
    }

    #[test]
    fn meter_refund_settles_amortized_spend() {
        let meter = EnergyMeter::new(Some(100.0));
        meter.try_spend(40.0).unwrap();
        meter.refund(15.0);
        let (spent, remaining) = meter.state();
        assert!((spent - 25.0).abs() < 1e-12);
        assert!((remaining.unwrap() - 75.0).abs() < 1e-12);
        // Refunds clamp at zero and ignore junk amounts.
        meter.refund(1e9);
        assert_eq!(meter.state().0, 0.0);
        meter.refund(f64::NAN);
        meter.refund(-3.0);
        assert_eq!(meter.state().0, 0.0);
    }

    #[test]
    fn export_import_moves_state_bit_exactly_and_adopts_seq() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("a", (8, 8)), micro_model(0))
            .unwrap();
        registry
            .register(DeploymentSpec::new("b", (8, 8)), micro_model(1))
            .unwrap();
        let proto: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        registry.apply_prototype_updates("a", &[(2, proto.clone())]).unwrap();
        registry.apply_prototype_updates("a", &[(5, proto.clone())]).unwrap();

        let export = registry.export_deployment("a").unwrap();
        assert_eq!(export.name, "a");
        assert_eq!(export.seq, 2);
        let classes = registry
            .import_deployment(&DeploymentExport { name: "b".into(), ..export.clone() })
            .unwrap();
        assert_eq!(classes, 2);
        // The imported side answers with identical snapshot bytes and carries
        // the exported sequence number forward.
        assert_eq!(registry.snapshot("a").unwrap(), registry.snapshot("b").unwrap());
        let (seq, _) = registry.snapshot_with_seq("b").unwrap();
        assert_eq!(seq, 2);

        // An import can never move a deployment's sequence backwards: when
        // the local history already ran past the export's number, the seq
        // advances by one instead, so a tailing subscriber sees a forward
        // jump (gap → resync), never a silent skip.
        for _ in 0..3 {
            registry.apply_prototype_updates("b", &[(9, proto.clone())]).unwrap();
        }
        assert_eq!(registry.snapshot_with_seq("b").unwrap().0, 5);
        registry
            .import_deployment(&DeploymentExport { name: "b".into(), ..export.clone() })
            .unwrap();
        assert_eq!(registry.snapshot_with_seq("b").unwrap().0, 6);

        // Unknown target and dimension mismatches are typed errors.
        assert!(matches!(
            registry
                .import_deployment(&DeploymentExport { name: "ghost".into(), ..export.clone() })
                .unwrap_err(),
            ServeError::UnknownDeployment(_)
        ));
        let foreign = ofscil_core::ExplicitMemory::new(99);
        let bad = DeploymentExport {
            name: "b".into(),
            seq: 9,
            snapshot: encode_explicit_memory(&foreign),
            ..DeploymentExport::default()
        };
        assert!(matches!(
            registry.import_deployment(&bad).unwrap_err(),
            ServeError::InvalidRequest(_)
        ));
    }

    #[test]
    fn export_import_preserves_billing_state() {
        let registry = LearnerRegistry::new();
        registry
            .register(
                DeploymentSpec::new("a", (8, 8)).with_energy_budget(80.0, BudgetPolicy::Reject),
                micro_model(0),
            )
            .unwrap();
        registry
            .register(DeploymentSpec::new("b", (8, 8)), micro_model(0))
            .unwrap();
        let source = registry.resolve("a").unwrap();
        source.meter.try_spend(12.25).unwrap();
        {
            let mut stats = source.stats.lock().unwrap();
            stats.infer_requests = 7;
            stats.learn_requests = 3;
            stats.rejected_infer = 2;
            stats.largest_batch = 4;
        }

        let export = registry.export_deployment("a").unwrap();
        assert_eq!(export.spent_mj.to_bits(), 12.25f64.to_bits());
        assert_eq!(export.budget_mj.map(f64::to_bits), Some(80.0f64.to_bits()));
        assert_eq!(export.stats.infer_requests, 7);
        assert_eq!(export.stats.largest_batch, 4);

        registry
            .import_deployment(&DeploymentExport { name: "b".into(), ..export })
            .unwrap();
        // The target adopts the exported meter and counters exactly: the
        // tenant's billing history survives the migration.
        let (spent, budget) = registry.energy_state("b").unwrap();
        assert_eq!(spent.to_bits(), 12.25f64.to_bits());
        assert_eq!(budget.map(f64::to_bits), Some(80.0f64.to_bits()));
        let stats = registry.stats("b").unwrap();
        assert_eq!(stats.infer_requests, 7);
        assert_eq!(stats.learn_requests, 3);
        assert_eq!(stats.rejected_infer, 2);
        assert_eq!(stats.largest_batch, 4);
    }

    #[test]
    fn recover_deployment_adopts_seq_and_meter_exactly() {
        let registry = LearnerRegistry::new();
        registry
            .register(
                DeploymentSpec::new("a", (8, 8)).with_energy_budget(50.0, BudgetPolicy::Reject),
                micro_model(0),
            )
            .unwrap();
        let proto: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        registry.apply_prototype_updates("a", &[(3, proto.clone())]).unwrap();
        let snapshot = registry.snapshot("a").unwrap();

        // A second registry plays the post-crash fresh process.
        let registry2 = LearnerRegistry::new();
        registry2
            .register(DeploymentSpec::new("a", (8, 8)), micro_model(0))
            .unwrap();
        let classes = registry2
            .recover_deployment("a", &snapshot, 17, 12.5, Some(99.0))
            .unwrap();
        assert_eq!(classes, 1);
        // Unlike restore(), recovery adopts the journaled seq *exactly*.
        assert_eq!(registry2.snapshot_with_seq("a").unwrap().0, 17);
        let (spent, budget) = registry2.energy_state("a").unwrap();
        assert_eq!(spent.to_bits(), 12.5f64.to_bits());
        assert_eq!(budget.map(f64::to_bits), Some(99.0f64.to_bits()));
        assert_eq!(registry2.snapshot("a").unwrap(), snapshot);

        // Mismatched dimensionality stays a typed error.
        let foreign = ofscil_core::ExplicitMemory::new(99);
        assert!(matches!(
            registry2
                .recover_deployment("a", &encode_explicit_memory(&foreign), 1, 0.0, None)
                .unwrap_err(),
            ServeError::InvalidRequest(_)
        ));
    }

    #[test]
    fn batched_learn_shares_the_amortized_derivation() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("t", (8, 8)), micro_model(0))
            .unwrap();
        let deployment = registry.resolve("t").unwrap();
        let single = deployment.pricing().learn_sample_mj;
        assert!((deployment.batched_learn_mj(1) - single).abs() < 1e-12);
        assert_eq!(deployment.learn_batch_refund_mj(1), 0.0);
        let batch6 = deployment.batched_learn_mj(6);
        assert!(batch6 < 6.0 * single, "batched learn must undercut {} mJ", 6.0 * single);
        let refund = deployment.learn_batch_refund_mj(6);
        assert!((refund - (6.0 * single - batch6)).abs() < 1e-9);
    }

    #[test]
    fn invalid_core_count_fails_registration() {
        let registry = LearnerRegistry::new();
        let spec = DeploymentSpec::new("t", (8, 8)).with_cores(99);
        assert!(matches!(
            registry.register(spec, micro_model(0)).unwrap_err(),
            ServeError::Gap9(_)
        ));
    }

    #[test]
    fn meter_spends_tops_up_and_refuses() {
        let meter = EnergyMeter::new(Some(10.0));
        meter.try_spend(6.0).unwrap();
        let remaining = meter.try_spend(6.0).unwrap_err();
        assert!((remaining - 4.0).abs() < 1e-12);
        meter.top_up(5.0);
        meter.try_spend(6.0).unwrap();
        let (spent, remaining) = meter.state();
        assert!((spent - 12.0).abs() < 1e-12);
        assert!((remaining.unwrap() - 3.0).abs() < 1e-12);
        // Unlimited meters never refuse and ignore top-ups.
        let unlimited = EnergyMeter::new(None);
        unlimited.try_spend(1e9).unwrap();
        unlimited.top_up(1.0);
        assert_eq!(unlimited.state().1, None);
    }

    #[test]
    fn top_up_rejects_nan_and_negative_amounts() {
        let registry = LearnerRegistry::new();
        let spec = DeploymentSpec::new("t", (8, 8)).with_energy_budget(1.0, BudgetPolicy::Reject);
        registry.register(spec, micro_model(0)).unwrap();
        assert!(matches!(
            registry.top_up("t", f64::NAN).unwrap_err(),
            ServeError::InvalidRequest(_)
        ));
        assert!(matches!(
            registry.top_up("t", -5.0).unwrap_err(),
            ServeError::InvalidRequest(_)
        ));
        registry.top_up("t", 2.0).unwrap();
        let stats = registry.stats("t").unwrap();
        assert_eq!(stats.energy_budget_mj, Some(3.0));
    }

    #[test]
    fn snapshot_restore_roundtrip_through_registry() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("a", (8, 8)), micro_model(0))
            .unwrap();
        registry
            .register(DeploymentSpec::new("b", (8, 8)), micro_model(1))
            .unwrap();
        registry
            .with_model("a", |model| {
                let proto: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
                model.em_mut().set_prototype(4, &proto).unwrap();
            })
            .unwrap();
        let bytes = registry.snapshot("a").unwrap();
        let restored = registry.restore("b", &bytes).unwrap();
        assert_eq!(restored, 1);
        let classes = registry
            .with_model("b", |model| model.em().classes())
            .unwrap();
        assert_eq!(classes, vec![4]);
    }

    #[test]
    fn restore_rejects_dimension_mismatch() {
        let registry = LearnerRegistry::new();
        registry
            .register(DeploymentSpec::new("a", (8, 8)), micro_model(0))
            .unwrap();
        let foreign = ofscil_core::ExplicitMemory::new(99);
        let err = registry
            .restore("a", &encode_explicit_memory(&foreign))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
    }
}
