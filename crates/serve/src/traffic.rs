//! Synthetic serving traffic shared by the example, the `serve_throughput`
//! bench and the test suites.
//!
//! The images are "colour-dominant": each class saturates one channel, so
//! classes are separable even through an untrained backbone and a demo or
//! test can assert on *predictions*, not just on plumbing. Keeping the
//! generator in one place means the bench, example and tests all drive the
//! runtime with the same inputs.

use ofscil_data::Batch;
use ofscil_tensor::Tensor;

/// One `[3, side, side]` image dominated by the channel `class % 3`, with a
/// constant intensity `jitter` distinguishing otherwise-identical samples.
pub fn class_image(side: usize, class: usize, jitter: f32) -> Tensor {
    let mut image = Tensor::full(&[3, side, side], 0.1);
    for y in 0..side {
        for x in 0..side {
            image
                .set(&[class % 3, y, x], 0.9 + jitter)
                .expect("index within the image");
        }
    }
    image
}

/// A support batch of `shots` samples per class, with per-shot jitter so the
/// prototype mean is taken over distinct samples.
pub fn support_batch(side: usize, classes: &[usize], shots: usize) -> Batch {
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for &class in classes {
        for shot in 0..shots {
            images.push(class_image(side, class, 0.02 * shot as f32));
            labels.push(class);
        }
    }
    let refs: Vec<&Tensor> = images.iter().collect();
    Batch {
        images: Tensor::stack(&refs).expect("uniform image shapes"),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_channel_dominant_and_batches_aligned() {
        let image = class_image(4, 5, 0.0);
        assert_eq!(image.dims(), &[3, 4, 4]);
        // Class 5 dominates channel 5 % 3 == 2.
        assert!(image.at(&[2, 0, 0]).unwrap() > image.at(&[0, 0, 0]).unwrap());
        let batch = support_batch(4, &[0, 7], 3);
        assert_eq!(batch.images.dims(), &[6, 3, 4, 4]);
        assert_eq!(batch.labels, vec![0, 0, 0, 7, 7, 7]);
    }
}
