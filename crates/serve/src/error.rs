//! Error type for the serving runtime.

use crate::snapshot::SnapshotError;
use ofscil_core::CoreError;
use ofscil_gap9::Gap9Error;
use ofscil_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by the serving runtime, registry and snapshot codec.
#[derive(Debug)]
pub enum ServeError {
    /// No deployment with the given name is registered.
    UnknownDeployment(String),
    /// A deployment with the given name is already registered.
    DuplicateDeployment(String),
    /// The deployment's energy budget cannot cover the request.
    BudgetExhausted {
        /// Deployment whose budget ran out.
        deployment: String,
        /// Energy the request would have cost in millijoules.
        required_mj: f64,
        /// Energy remaining in the budget in millijoules.
        remaining_mj: f64,
    },
    /// The request payload is malformed for the target deployment (e.g. an
    /// image whose shape does not match what the deployment was registered
    /// with). Rejected at admission so one bad request can never poison a
    /// coalesced batch.
    InvalidRequest(String),
    /// The dispatcher queue is at its configured depth limit
    /// ([`ServeConfig::queue_depth`](crate::ServeConfig)); the request was
    /// shed at submission instead of buffering without bound.
    QueueFull {
        /// The configured queue depth limit.
        depth: usize,
    },
    /// The runtime serves a read-only replica: state-mutating requests
    /// (`LearnOnline`, `TopUpBudget`) are rejected. Replica state changes
    /// only by tailing its primary's snapshot stream.
    ReadOnlyReplica {
        /// Deployment the write was addressed to.
        deployment: String,
    },
    /// A replication subscriber fell behind the primary's bounded commit
    /// queue and was dropped. Typed so a follower can tell this recoverable
    /// condition (resubscribe for a fresh full-snapshot anchor) apart from a
    /// genuine execution failure.
    ReplicationLagged {
        /// Deployment whose subscription was dropped.
        deployment: String,
    },
    /// The backend shard that owns the deployment cannot be reached. Emitted
    /// by a routing layer (`ofscil_router`) sitting in front of several
    /// serving processes — it travels the wire typed so clients can
    /// distinguish "the shard is down" from a request-level failure.
    ShardUnavailable {
        /// Human-readable shard identity (index and address).
        shard: String,
        /// What failed when the shard was contacted.
        detail: String,
    },
    /// The runtime configuration is inconsistent.
    InvalidConfig(String),
    /// Executing a request against the model failed. Carries the formatted
    /// underlying error so a batched failure can be delivered to every
    /// affected requester.
    Execution(String),
    /// The runtime is shutting down (or already gone) and the request will
    /// not be served.
    ShuttingDown,
    /// Encoding or decoding an explicit-memory snapshot failed.
    Snapshot(SnapshotError),
    /// A model operation failed outside the request path (registration,
    /// direct registry access).
    Core(CoreError),
    /// Pricing a deployment on the GAP9 cost model failed.
    Gap9(Gap9Error),
    /// A tensor operation failed outside the request path.
    Tensor(TensorError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDeployment(name) => {
                write!(f, "no deployment named {name:?} is registered")
            }
            ServeError::DuplicateDeployment(name) => {
                write!(f, "a deployment named {name:?} is already registered")
            }
            ServeError::BudgetExhausted { deployment, required_mj, remaining_mj } => write!(
                f,
                "deployment {deployment:?} energy budget exhausted: request needs \
                 {required_mj:.3} mJ but only {remaining_mj:.3} mJ remain"
            ),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::QueueFull { depth } => {
                write!(f, "dispatcher queue is full ({depth} requests queued); load shed")
            }
            ServeError::ReadOnlyReplica { deployment } => write!(
                f,
                "deployment {deployment:?} is served by a read-only replica; \
                 writes must go to the primary"
            ),
            ServeError::ReplicationLagged { deployment } => write!(
                f,
                "replication subscriber for {deployment:?} lagged behind the primary's \
                 bounded commit queue and was dropped; resubscribe for a fresh snapshot \
                 anchor"
            ),
            ServeError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} is unavailable: {detail}")
            }
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Execution(msg) => write!(f, "request execution failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "the serving runtime is shutting down"),
            ServeError::Snapshot(e) => write!(f, "snapshot codec error: {e}"),
            ServeError::Core(e) => write!(f, "model error: {e}"),
            ServeError::Gap9(e) => write!(f, "deployment pricing error: {e}"),
            ServeError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Snapshot(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Gap9(e) => Some(e),
            ServeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<Gap9Error> for ServeError {
    fn from(e: Gap9Error) -> Self {
        ServeError::Gap9(e)
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ServeError::UnknownDeployment("tenant-a".into());
        assert!(e.to_string().contains("tenant-a"));
        assert!(e.source().is_none());
        let e = ServeError::BudgetExhausted {
            deployment: "t".into(),
            required_mj: 12.0,
            remaining_mj: 1.5,
        };
        assert!(e.to_string().contains("12.000"));
        let e: ServeError = CoreError::UnknownClass(3).into();
        assert!(e.source().is_some());
        let e: ServeError =
            Gap9Error::InvalidCoreCount { requested: 16, available: 8 }.into();
        assert!(e.to_string().contains("16"));
        let e = ServeError::ShardUnavailable {
            shard: "2 (tcp://127.0.0.1:4102)".into(),
            detail: "connection refused".into(),
        };
        assert!(e.to_string().contains("unavailable"));
        assert!(e.source().is_none());
        let e = ServeError::ReplicationLagged { deployment: "t".into() };
        assert!(e.to_string().contains("resubscribe"));
    }
}
