//! Request coalescing and per-deployment work queues.
//!
//! The dispatcher drains every envelope queued at the moment it wakes up and
//! feeds admitted `Infer` requests through a [`Coalescer`]. Requests for the
//! same deployment accumulate until either the configured `max_batch` is
//! reached, an ordering barrier for that deployment arrives (a `LearnOnline`
//! or `Snapshot` must observe every inference admitted before it), or the
//! drain cycle ends. One coalesced job costs one deployment-lock acquisition
//! and one batched backbone + FCR forward instead of `n`, which is where the
//! `serve_throughput` bench's speedup comes from.
//!
//! Ordering is enforced by construction, not by luck of the worker race:
//! jobs land in a per-deployment FIFO [`WorkQueue`], and the global queue
//! carries *deployment tokens* — a worker that picks a token drains that
//! deployment's jobs in admission order, and a deployment is never scheduled
//! on two workers at once. Different deployments still run fully in
//! parallel.

use crate::registry::Deployment;
use crate::request::Reply;
use ofscil_data::Batch;
use ofscil_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One admitted `Infer` request waiting to be batched.
pub(crate) struct InferItem {
    pub image: Tensor,
    pub reply: Reply,
}

/// A unit of work in a deployment's FIFO queue.
pub(crate) enum DeploymentJob {
    /// A coalesced batch of inference requests.
    InferBatch(Vec<InferItem>),
    /// A single-pass online learning request.
    Learn { batch: Batch, reply: Reply },
    /// An explicit-memory snapshot request.
    Snapshot { reply: Reply },
    /// A statistics read.
    Stats { reply: Reply },
}

/// The per-deployment job queue plus its scheduling flag. `scheduled` is
/// true while a token for this deployment sits in the global queue or a
/// worker is draining it — both states mean "do not schedule again", which
/// is what serializes a deployment onto at most one worker.
#[derive(Default)]
pub(crate) struct WorkQueue {
    pub jobs: VecDeque<DeploymentJob>,
    pub scheduled: bool,
}

/// Groups admitted inference requests per deployment up to a batch cap.
pub(crate) struct Coalescer {
    max_batch: usize,
    pending: HashMap<String, (Arc<Deployment>, Vec<InferItem>)>,
}

impl Coalescer {
    pub fn new(max_batch: usize) -> Self {
        Coalescer { max_batch: max_batch.max(1), pending: HashMap::new() }
    }

    /// Queues an admitted inference; returns a full batch once the
    /// deployment's pending batch reaches `max_batch`.
    pub fn push(
        &mut self,
        deployment: Arc<Deployment>,
        item: InferItem,
    ) -> Option<(Arc<Deployment>, DeploymentJob)> {
        let name = deployment.name.clone();
        let entry = self
            .pending
            .entry(name.clone())
            .or_insert_with(|| (deployment, Vec::new()));
        entry.1.push(item);
        if entry.1.len() >= self.max_batch {
            self.pending
                .remove(&name)
                .map(|(deployment, items)| (deployment, DeploymentJob::InferBatch(items)))
        } else {
            None
        }
    }

    /// Flushes the pending batch of one deployment — the ordering barrier in
    /// front of that deployment's learn / snapshot jobs.
    pub fn flush_deployment(
        &mut self,
        name: &str,
    ) -> Option<(Arc<Deployment>, DeploymentJob)> {
        self.pending
            .remove(name)
            .map(|(deployment, items)| (deployment, DeploymentJob::InferBatch(items)))
    }

    /// Flushes every pending batch at the end of a dispatch cycle.
    pub fn flush_all(&mut self) -> Vec<(Arc<Deployment>, DeploymentJob)> {
        self.pending
            .drain()
            .map(|(_, (deployment, items))| (deployment, DeploymentJob::InferBatch(items)))
            .collect()
    }
}
