//! Lightweight data-parallel helpers built on `std::thread::scope`.

/// Returns a reasonable number of worker threads for CPU-bound kernels.
///
/// The value is `min(available_parallelism, 8)` and never less than one; the
/// cap keeps thread spawn overhead small for the modest matrix sizes used by
/// the O-FSCIL models.
pub fn recommended_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// Splits `items` into at most `threads` contiguous chunks and runs `f` on
/// each chunk in parallel, passing the chunk's starting index.
///
/// When `threads <= 1` or the slice is small the work runs on the calling
/// thread, which keeps the fast path allocation-free.
pub fn parallel_chunks<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let threads = threads.max(1).min(len);
    if threads == 1 || len < 64 {
        f(0, items);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut start = 0usize;
        for piece in items.chunks_mut(chunk) {
            let f = &f;
            let begin = start;
            start += piece.len();
            scope.spawn(move || f(begin, piece));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_threads_is_positive() {
        assert!(recommended_threads() >= 1);
        assert!(recommended_threads() <= 8);
    }

    #[test]
    fn chunks_cover_all_elements() {
        let mut data: Vec<usize> = vec![0; 1000];
        parallel_chunks(&mut data, 4, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn single_thread_path() {
        let mut data = vec![1.0f32; 10];
        parallel_chunks(&mut data, 1, |_, chunk| {
            for x in chunk {
                *x *= 2.0;
            }
        });
        assert!(data.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn empty_slice_is_noop() {
        let mut data: Vec<f32> = vec![];
        parallel_chunks(&mut data, 4, |_, _| panic!("must not be called"));
    }
}
