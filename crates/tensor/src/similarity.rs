//! Similarity measures and pointwise nonlinearities used by the prototype
//! classifier and the losses.

use crate::{Result, Tensor, TensorError};

/// L2 (Euclidean) norm of a slice.
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine similarity between two equal-length vectors.
///
/// Returns `0.0` when either vector has (near-)zero norm, which matches the
/// behaviour expected by the explicit-memory classifier: an all-zero
/// prototype can never win a query.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::LengthMismatch { expected: a.len(), actual: b.len() });
    }
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na < 1e-12 || nb < 1e-12 {
        return Ok(0.0);
    }
    Ok(dot / (na * nb))
}

/// Rectified linear unit applied element-wise to a copy of the input.
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|x| x.max(0.0))
}

/// Numerically stable softmax over a single vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&x| x / sum.max(1e-20)).collect()
}

/// Numerically stable log-softmax over a single vector.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - max - log_sum).collect()
}

impl Tensor {
    /// Returns an L2-normalised copy of the tensor (flattened norm).
    ///
    /// A zero tensor is returned unchanged.
    pub fn l2_normalized(&self) -> Tensor {
        let n = self.norm();
        if n < 1e-12 {
            self.clone()
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Cosine similarity between this tensor and `other`, both flattened.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the lengths differ.
    pub fn cosine(&self, other: &Tensor) -> Result<f32> {
        cosine_similarity(self.as_slice(), other.as_slice())
    }

    /// Row-wise L2 normalisation of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn l2_normalize_rows(&self) -> Result<Tensor> {
        if self.dims().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.dims().len(),
                op: "l2_normalize_rows",
            });
        }
        let cols = self.dims()[1];
        let mut out = self.clone();
        for row in out.as_mut_slice().chunks_mut(cols) {
            let n = l2_norm(row);
            if n > 1e-12 {
                for x in row {
                    *x /= n;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_bounds_and_identity() {
        let a = [1.0, 2.0, 3.0];
        assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-6);
        let b = [-1.0, -2.0, -3.0];
        assert!((cosine_similarity(&a, &b).unwrap() + 1.0).abs() < 1e-6);
        let orth = [0.0, 0.0, 0.0];
        assert_eq!(cosine_similarity(&a, &orth).unwrap(), 0.0);
        assert!(cosine_similarity(&a, &[1.0]).is_err());
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let probs = softmax(&[1.0, 2.0, 3.0]);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let logits = [0.5, -1.0, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn l2_normalized_has_unit_norm() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        let n = t.l2_normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
        let z = Tensor::zeros(&[4]);
        assert_eq!(z.l2_normalized(), z);
    }

    #[test]
    fn row_normalisation() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]).unwrap();
        let n = t.l2_normalize_rows().unwrap();
        assert!((l2_norm(n.row(0).unwrap()) - 1.0).abs() < 1e-6);
        assert_eq!(n.row(1).unwrap(), &[0.0, 0.0]);
        assert!(Tensor::zeros(&[3]).l2_normalize_rows().is_err());
    }
}
