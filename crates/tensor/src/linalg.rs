//! Matrix multiplication and related linear-algebra kernels.

use crate::parallel::{parallel_chunks, recommended_threads};
use crate::{Result, Tensor, TensorError};

/// Options controlling the blocked matrix-multiplication kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulOptions {
    /// Number of worker threads; `1` forces the single-threaded path.
    pub threads: usize,
    /// Block size along the shared (K) dimension.
    pub block_k: usize,
}

impl Default for MatmulOptions {
    fn default() -> Self {
        MatmulOptions { threads: recommended_threads(), block_k: 64 }
    }
}

impl MatmulOptions {
    /// Options for a deterministic single-threaded multiplication.
    pub fn single_threaded() -> Self {
        MatmulOptions { threads: 1, ..Default::default() }
    }
}

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// Uses the default [`MatmulOptions`] (multi-threaded for large outputs).
    ///
    /// # Errors
    ///
    /// Returns an error when either operand is not a matrix or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_with(other, MatmulOptions::default())
    }

    /// Matrix product with explicit execution options.
    ///
    /// # Errors
    ///
    /// Returns an error when either operand is not a matrix or the inner
    /// dimensions disagree.
    pub fn matmul_with(&self, other: &Tensor, opts: MatmulOptions) -> Result<Tensor> {
        let (m, k) = matrix_dims(self, "matmul lhs")?;
        let (k2, n) = matrix_dims(other, "matmul rhs")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "matmul",
            });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        let block_k = opts.block_k.max(8);

        let kernel = |row_start: usize, rows: &mut [f32]| {
            let row_count = rows.len() / n;
            for bk in (0..k).step_by(block_k) {
                let k_end = (bk + block_k).min(k);
                for local_i in 0..row_count {
                    let i = row_start / n + local_i;
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut rows[local_i * n..(local_i + 1) * n];
                    for kk in bk..k_end {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n..(kk + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        };

        // Parallelise over output rows: each worker owns whole rows so no
        // synchronisation is needed.
        if opts.threads <= 1 || m * n < 4096 {
            kernel(0, &mut out);
        } else {
            let rows_per_chunk = m.div_ceil(opts.threads).max(1);
            std::thread::scope(|scope| {
                for (chunk_idx, rows) in out.chunks_mut(rows_per_chunk * n).enumerate() {
                    let kernel = &kernel;
                    scope.spawn(move || kernel(chunk_idx * rows_per_chunk * n, rows));
                }
            });
        }

        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product `self · v` for a rank-2 tensor and rank-1 vector.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a matrix or the lengths disagree.
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        let (m, k) = matrix_dims(self, "matvec lhs")?;
        if v.dims().len() != 1 || v.len() != k {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: v.dims().to_vec(),
                op: "matvec",
            });
        }
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(Tensor::from_slice(&out))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        let (m, n) = matrix_dims(self, "transpose")?;
        let src = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = src[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Outer product of two vectors, returning an `m x n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either input is not rank-1.
    pub fn outer(&self, other: &Tensor) -> Result<Tensor> {
        if self.dims().len() != 1 || other.dims().len() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: self.dims().len().max(other.dims().len()),
                op: "outer",
            });
        }
        let m = self.len();
        let n = other.len();
        let mut out = vec![0.0f32; m * n];
        let mut chunk_threads = 1;
        if m * n >= 1 << 16 {
            chunk_threads = recommended_threads();
        }
        let a = self.as_slice();
        let b = other.as_slice();
        parallel_chunks(&mut out, chunk_threads, |start, chunk| {
            for (offset, o) in chunk.iter_mut().enumerate() {
                let idx = start + offset;
                *o = a[idx / n] * b[idx % n];
            }
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Dot product of two vectors (or any two same-length tensors, flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the lengths differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
                op: "dot",
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }
}

fn matrix_dims(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.dims().len() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.dims().len(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
                out.as_mut_slice()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let c = a.matmul(&i).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = crate::SeedRng::new(7);
        let a = Tensor::from_vec((0..12 * 17).map(|_| rng.normal()).collect(), &[12, 17]).unwrap();
        let b = Tensor::from_vec((0..17 * 9).map(|_| rng.normal()).collect(), &[17, 9]).unwrap();
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_parallel_matches_single() {
        let mut rng = crate::SeedRng::new(3);
        let a = Tensor::from_vec((0..96 * 64).map(|_| rng.normal()).collect(), &[96, 64]).unwrap();
        let b = Tensor::from_vec((0..64 * 80).map(|_| rng.normal()).collect(), &[64, 80]).unwrap();
        let multi = a
            .matmul_with(&b, MatmulOptions { threads: 4, block_k: 32 })
            .unwrap();
        let single = a.matmul_with(&b, MatmulOptions::single_threaded()).unwrap();
        assert!(multi.max_abs_diff(&single).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matvec_and_dot() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let v = Tensor::from_slice(&[1.0, -1.0]);
        assert_eq!(a.matvec(&v).unwrap().as_slice(), &[-1.0, -1.0]);
        assert_eq!(v.dot(&v).unwrap(), 2.0);
        assert!(a.matvec(&Tensor::zeros(&[3])).is_err());
        assert!(v.dot(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = a.outer(&b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        assert!(a.outer(&Tensor::zeros(&[2, 2])).is_err());
    }
}
