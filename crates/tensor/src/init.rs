//! Weight initialization strategies.

use crate::{SeedRng, Tensor};

/// The initialization distribution used when creating parameter tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All elements set to the given constant.
    Constant(f32),
    /// Uniform distribution over `[-bound, bound]`.
    Uniform {
        /// Half-width of the distribution.
        bound: f32,
    },
    /// Normal distribution with the given standard deviation.
    Normal {
        /// Standard deviation of the distribution.
        std_dev: f32,
    },
    /// Kaiming/He normal initialization for layers followed by ReLU:
    /// `std = sqrt(2 / fan_in)`.
    KaimingNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Xavier/Glorot uniform initialization:
    /// `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections per output unit.
        fan_in: usize,
        /// Number of output connections per input unit.
        fan_out: usize,
    },
}

/// Creates initialized parameter tensors from an [`Init`] specification.
///
/// # Example
///
/// ```
/// use ofscil_tensor::{Init, Initializer, SeedRng};
///
/// let mut init = Initializer::new(SeedRng::new(0));
/// let w = init.tensor(&[16, 8], Init::KaimingNormal { fan_in: 8 });
/// assert_eq!(w.dims(), &[16, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Initializer {
    rng: SeedRng,
}

impl Initializer {
    /// Creates an initializer drawing randomness from `rng`.
    pub fn new(rng: SeedRng) -> Self {
        Initializer { rng }
    }

    /// Creates a tensor with the given shape and initialization.
    pub fn tensor(&mut self, dims: &[usize], init: Init) -> Tensor {
        let volume: usize = dims.iter().product();
        let data: Vec<f32> = match init {
            Init::Constant(c) => vec![c; volume],
            Init::Uniform { bound } => (0..volume)
                .map(|_| self.rng.uniform_range(-bound, bound))
                .collect(),
            Init::Normal { std_dev } => {
                (0..volume).map(|_| self.rng.normal_with(0.0, std_dev)).collect()
            }
            Init::KaimingNormal { fan_in } => {
                let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
                (0..volume).map(|_| self.rng.normal_with(0.0, std_dev)).collect()
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..volume)
                    .map(|_| self.rng.uniform_range(-bound, bound))
                    .collect()
            }
        };
        Tensor::from_vec(data, dims).expect("volume matches by construction")
    }

    /// Returns a mutable reference to the underlying RNG, e.g. to fork
    /// additional streams.
    pub fn rng_mut(&mut self) -> &mut SeedRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let mut init = Initializer::new(SeedRng::new(0));
        let t = init.tensor(&[4, 4], Init::Constant(0.5));
        assert!(t.as_slice().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut init = Initializer::new(SeedRng::new(1));
        let wide = init.tensor(&[64, 1024], Init::KaimingNormal { fan_in: 1024 });
        let narrow = init.tensor(&[64, 4], Init::KaimingNormal { fan_in: 4 });
        let std = |t: &Tensor| (t.norm_sq() / t.len() as f32).sqrt();
        assert!(std(&wide) < std(&narrow));
        assert!((std(&wide) - (2.0f32 / 1024.0).sqrt()).abs() < 0.01);
    }

    #[test]
    fn uniform_respects_bound() {
        let mut init = Initializer::new(SeedRng::new(2));
        let t = init.tensor(&[1000], Init::Uniform { bound: 0.25 });
        assert!(t.as_slice().iter().all(|x| x.abs() <= 0.25));
    }

    #[test]
    fn xavier_respects_bound() {
        let mut init = Initializer::new(SeedRng::new(3));
        let t = init.tensor(&[500], Init::XavierUniform { fan_in: 10, fan_out: 20 });
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(t.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Initializer::new(SeedRng::new(9));
        let mut b = Initializer::new(SeedRng::new(9));
        let ta = a.tensor(&[32], Init::Normal { std_dev: 1.0 });
        let tb = b.tensor(&[32], Init::Normal { std_dev: 1.0 });
        assert_eq!(ta, tb);
    }
}
