//! The owned, row-major `f32` tensor type.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned, row-major dense tensor of `f32` values.
///
/// `Tensor` is the workhorse type of the whole workspace: activations,
/// weights, gradients, prototypes and images are all `Tensor`s. The type is
/// deliberately simple — contiguous storage, explicit shapes, fallible
/// reshapes — so the numerical kernels built on top of it remain easy to
/// audit.
///
/// # Example
///
/// ```
/// use ofscil_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.volume()], shape }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![1.0; shape.volume()], shape }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.volume()], shape }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: Shape::new(&[data.len()]) }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::new(&[]) }
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension extents of the tensor.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying data as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// Reinterprets the tensor in place with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Returns the row `i` of a rank-2 tensor as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] when `i` exceeds the number of rows.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "row",
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.dims().to_vec(),
            });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Copies `src` into row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error when the tensor is not a matrix, the row index is out
    /// of range, or `src` has the wrong length.
    pub fn set_row(&mut self, i: usize, src: &[f32]) -> Result<()> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "set_row",
            });
        }
        let (rows, cols) = (self.shape.dims()[0], self.shape.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.shape.dims().to_vec(),
            });
        }
        if src.len() != cols {
            return Err(TensorError::LengthMismatch { expected: cols, actual: src.len() });
        }
        self.data[i * cols..(i + 1) * cols].copy_from_slice(src);
        Ok(())
    }

    /// Element-wise addition, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication, returning a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// In-place element-wise addition of `other` scaled by `alpha`
    /// (`self += alpha * other`), the BLAS `axpy` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns a new tensor with every element multiplied by `scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// Returns a new tensor with `scalar` added to every element.
    pub fn add_scalar(&self, scalar: f32) -> Tensor {
        self.map(|x| x + scalar)
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        op: &'static str,
        f: F,
    ) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op,
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Returns `true` when all elements are finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns the squared Frobenius norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Returns the Frobenius norm of the tensor.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Stacks tensors of identical shape along a new leading axis: `n`
    /// tensors of shape `[d0, d1, …]` become one tensor of shape
    /// `[n, d0, d1, …]`. This is the batch-assembly primitive used by
    /// request coalescing in the serving runtime.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when `tensors` is empty and
    /// [`TensorError::ShapeMismatch`] when any element's shape differs from
    /// the first.
    pub fn stack(tensors: &[&Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty("stack"))?;
        let mut data = Vec::with_capacity(tensors.len() * first.len());
        for t in tensors {
            if !t.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims().to_vec(),
                    right: t.shape.dims().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = Vec::with_capacity(first.shape.dims().len() + 1);
        dims.push(tensors.len());
        dims.extend_from_slice(first.shape.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Maximum absolute difference between two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_builds_a_batch_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let stacked = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(stacked.dims(), &[2, 2, 2]);
        assert_eq!(stacked.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // Singleton stacks still gain the leading axis.
        assert_eq!(Tensor::stack(&[&a]).unwrap().dims(), &[1, 2, 2]);
        // Mismatched shapes and empty inputs are rejected.
        assert!(Tensor::stack(&[]).is_err());
        assert!(Tensor::stack(&[&a, &Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 2.5).as_slice(), &[2.5, 2.5]);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(7.0).len(), 1);
        assert!(Tensor::from_vec(vec![1.0; 3], &[2, 2]).is_err());
    }

    #[test]
    fn indexing_and_rows() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        t.set(&[0, 1], 9.0).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 9.0, 3.0]);
        t.set_row(1, &[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[7.0, 8.0, 9.0]);
        assert!(t.row(2).is_err());
        assert!(t.set_row(0, &[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
        let c = Tensor::zeros(&[2]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn reshape_checks_volume() {
        let t = Tensor::zeros(&[2, 6]);
        assert_eq!(t.reshape(&[3, 4]).unwrap().dims(), &[3, 4]);
        assert!(t.reshape(&[5]).is_err());
        let mut t2 = t.clone();
        t2.reshape_in_place(&[12]).unwrap();
        assert_eq!(t2.dims(), &[12]);
    }

    #[test]
    fn norms_and_finiteness() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!(t.all_finite());
        let bad = Tensor::from_slice(&[f32::NAN]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[16]);
        let s = t.to_string();
        assert!(s.contains("Tensor"));
        assert!(s.contains('…'));
    }
}
