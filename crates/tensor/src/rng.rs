//! Deterministic random number generation used throughout the workspace.
//!
//! The generator is a self-contained ChaCha8 implementation (the same
//! algorithm family as `rand_chacha::ChaCha8Rng`), kept in-tree so the
//! workspace builds with no external dependencies. Streams are **not**
//! bit-compatible with `rand_chacha` (which expands seeds differently),
//! but carry the same guarantees this workspace relies on: identical
//! output for identical seeds on every platform, and statistically
//! independent forked streams.

/// A deterministic, seedable random number generator.
///
/// Wraps an in-tree ChaCha8 core so every experiment in the workspace is
/// reproducible bit-for-bit given the same seed, independent of platform.
///
/// # Example
///
/// ```
/// use ofscil_tensor::SeedRng;
///
/// let mut a = SeedRng::new(42);
/// let mut b = SeedRng::new(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: ChaCha8,
}

impl SeedRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeedRng { inner: ChaCha8::from_seed(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// component (dataset, initializer, augmentation) its own stream.
    pub fn fork(&mut self, stream: u64) -> SeedRng {
        let base = self.next_u64();
        SeedRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 32-bit word from the stream.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Next raw 64-bit word from the stream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 random bits in the mantissa: every representable value is an
        // exact multiple of 2^-24, uniformly spaced over [0, 1).
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.uniform().max(1e-12);
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Rejection sampling over u64 keeps the result exactly uniform.
        let n = n as u64;
        let limit = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < limit {
                return (x % n) as usize;
            }
        }
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Returns a uniformly shuffled copy of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics when `k > n`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct items from {n}");
        let mut perm = self.permutation(n);
        perm.truncate(k);
        perm
    }
}

/// ChaCha8 stream cipher core used as a CSPRNG (original DJB layout: four
/// constant words, eight key words, a 64-bit block counter, 64-bit nonce —
/// not the RFC 8439 32-bit-counter/96-bit-nonce variant).
#[derive(Debug, Clone)]
struct ChaCha8 {
    /// Input block: words 0–3 constants, 4–11 key, 12–13 counter, 14–15 nonce.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means the block is exhausted.
    cursor: usize,
}

impl ChaCha8 {
    /// Expands a 64-bit seed into the 256-bit ChaCha key with SplitMix64
    /// (the same construction `rand`'s `seed_from_u64` uses).
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut input = [0u32; 16];
        // "expand 32-byte k", the standard ChaCha constants.
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        input[4..12].copy_from_slice(&key);
        // Counter (words 12–13) and nonce (14–15) start at zero.
        ChaCha8 { input, block: [0; 16], cursor: 16 }
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    /// Generates the next keystream block and advances the 64-bit counter.
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.cursor = 0;
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeedRng::new(123);
        let mut b = SeedRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn matches_chacha8_reference_keystream() {
        // SplitMix64 seed expansion never yields the all-zero key, so build
        // the zero-key core directly to compare against the published
        // ChaCha8 reference keystream.
        let mut core = ChaCha8 {
            input: {
                let mut input = [0u32; 16];
                input[0] = 0x6170_7865;
                input[1] = 0x3320_646e;
                input[2] = 0x7962_2d32;
                input[3] = 0x6b20_6574;
                input
            },
            block: [0; 16],
            cursor: 16,
        };
        // ChaCha8 with zero key/nonce/counter: the ECRYPT/chacha reference
        // keystream begins with bytes `3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8
        // 1f 09 a5 a1`, i.e. these little-endian u32 words.
        let first: Vec<u32> = (0..4).map(|_| core.next_u32()).collect();
        assert_eq!(first[0], 0x2fef_003e);
        assert_eq!(first[1], 0xd640_5f89);
        assert_eq!(first[2], 0xe8b8_5b7f);
        assert_eq!(first[3], 0xa1a5_091f);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SeedRng::new(9);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = SeedRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SeedRng::new(31);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SeedRng::new(8);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        // With 56 random bits the chance of all-zero output is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn permutation_covers_all_indices() {
        let mut rng = SeedRng::new(4);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_distinct_has_no_duplicates() {
        let mut rng = SeedRng::new(5);
        let picks = rng.choose_distinct(100, 30);
        assert_eq!(picks.len(), 30);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SeedRng::new(77);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SeedRng::new(0).below(0);
    }
}
