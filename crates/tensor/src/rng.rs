//! Deterministic random number generation used throughout the workspace.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic, seedable random number generator.
///
/// Wraps `ChaCha8Rng` so every experiment in the workspace is reproducible
/// bit-for-bit given the same seed, independent of platform.
///
/// # Example
///
/// ```
/// use ofscil_tensor::SeedRng;
///
/// let mut a = SeedRng::new(42);
/// let mut b = SeedRng::new(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SeedRng {
    inner: ChaCha8Rng,
}

impl SeedRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeedRng { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// component (dataset, initializer, augmentation) its own stream.
    pub fn fork(&mut self, stream: u64) -> SeedRng {
        let base = self.inner.next_u64();
        SeedRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.uniform().max(1e-12);
        let u2: f32 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Returns a uniformly shuffled copy of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics when `k > n`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} distinct items from {n}");
        let mut perm = self.permutation(n);
        perm.truncate(k);
        perm
    }
}

impl RngCore for SeedRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeedRng::new(123);
        let mut b = SeedRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedRng::new(1);
        let mut b = SeedRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = SeedRng::new(9);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = SeedRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn permutation_covers_all_indices() {
        let mut rng = SeedRng::new(4);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_distinct_has_no_duplicates() {
        let mut rng = SeedRng::new(5);
        let picks = rng.choose_distinct(100, 30);
        assert_eq!(picks.len(), 30);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SeedRng::new(77);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let equal = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SeedRng::new(0).below(0);
    }
}
