//! Error type shared by all tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape dims.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// The tensor does not have the expected rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the provided tensor.
        actual: usize,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// An axis argument exceeded the tensor rank.
    InvalidAxis {
        /// The offending axis.
        axis: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// An operation received an empty tensor where data is required.
    Empty(&'static str),
    /// A configuration value was invalid (e.g. zero-sized kernel).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "rank mismatch in {op}: expected rank {expected}, got {actual}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for tensor of rank {rank}")
            }
            TensorError::Empty(op) => write!(f, "operation {op} requires a non-empty tensor"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::LengthMismatch { expected: 4, actual: 3 };
        assert!(err.to_string().contains('4'));
        assert!(err.to_string().contains('3'));

        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![4, 5],
            op: "matmul",
        };
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
