//! Reductions: sums, means, extrema, argmax, axis reductions.

use crate::{Result, Tensor, TensorError};

/// Identifies an axis of a tensor for axis-wise reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Axis(pub usize);

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.max(x))))
            .ok_or(TensorError::Empty("max"))
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.min(x))))
            .ok_or(TensorError::Empty("min"))
    }

    /// Index of the maximum element (first occurrence on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty("argmax"));
        }
        let mut best = 0usize;
        for (i, &x) in self.as_slice().iter().enumerate() {
            if x > self.as_slice()[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Row-wise argmax of a rank-2 tensor: one index per row.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or zero-width rows.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.dims().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.dims().len(),
                op: "argmax_rows",
            });
        }
        let cols = self.dims()[1];
        if cols == 0 {
            return Err(TensorError::Empty("argmax_rows"));
        }
        Ok(self
            .as_slice()
            .chunks(cols)
            .map(|row| {
                let mut best = 0usize;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect())
    }

    /// Sum along `axis` of a rank-2 tensor.
    ///
    /// `Axis(0)` sums over rows producing one value per column;
    /// `Axis(1)` sums over columns producing one value per row.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or an invalid axis.
    pub fn sum_axis(&self, axis: Axis) -> Result<Tensor> {
        if self.dims().len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.dims().len(),
                op: "sum_axis",
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        match axis.0 {
            0 => {
                let mut out = vec![0.0f32; cols];
                for r in 0..rows {
                    for (c, o) in out.iter_mut().enumerate() {
                        *o += self.as_slice()[r * cols + c];
                    }
                }
                Ok(Tensor::from_slice(&out))
            }
            1 => {
                let out: Vec<f32> = self
                    .as_slice()
                    .chunks(cols)
                    .map(|row| row.iter().sum())
                    .collect();
                Ok(Tensor::from_slice(&out))
            }
            a => Err(TensorError::InvalidAxis { axis: a, rank: 2 }),
        }
    }

    /// Mean along `axis` of a rank-2 tensor (see [`Tensor::sum_axis`]).
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrices or an invalid axis.
    pub fn mean_axis(&self, axis: Axis) -> Result<Tensor> {
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let summed = self.sum_axis(axis)?;
        let denom = match axis.0 {
            0 => rows,
            _ => cols,
        } as f32;
        Ok(summed.scale(1.0 / denom.max(1.0)))
    }

    /// Mean of the absolute values of all elements.
    pub fn mean_abs(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.as_slice().iter().map(|x| x.abs()).sum::<f32>() / self.len() as f32
        }
    }

    /// Maximum absolute value over all elements (`0.0` if empty).
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().map(|x| x.abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.min().unwrap(), -4.0);
        assert_eq!(t.argmax().unwrap(), 2);
        assert_eq!(t.mean_abs(), 2.5);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::from_vec(vec![], &[0]).unwrap();
        assert!(t.max().is_err());
        assert!(t.min().is_err());
        assert!(t.argmax().is_err());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis(Axis(0)).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(Axis(1)).unwrap().as_slice(), &[6.0, 15.0]);
        assert_eq!(t.mean_axis(Axis(0)).unwrap().as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(t.mean_axis(Axis(1)).unwrap().as_slice(), &[2.0, 5.0]);
        assert!(t.sum_axis(Axis(2)).is_err());
    }

    #[test]
    fn argmax_rows_ties_take_first() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 9.0, 2.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        let v = Tensor::from_slice(&[1.0]);
        assert!(v.argmax_rows().is_err());
    }
}
