//! Convolution lowering: `im2col` / `col2im` and output-geometry helpers.
//!
//! Convolutions in the nn crate are executed as matrix multiplications over
//! patch matrices produced here. Keeping the lowering in the tensor crate
//! lets the quantized execution path and the GAP9 tiling model reuse the same
//! geometry calculations.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Spatial geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding along both spatial axes.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a square-kernel geometry.
    pub fn new(in_h: usize, in_w: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dGeometry { in_h, in_w, kernel_h: kernel, kernel_w: kernel, stride, padding }
    }

    /// Output height of the convolution.
    pub fn out_h(&self) -> usize {
        conv_out(self.in_h, self.kernel_h, self.stride, self.padding)
    }

    /// Output width of the convolution.
    pub fn out_w(&self) -> usize {
        conv_out(self.in_w, self.kernel_w, self.stride, self.padding)
    }

    /// Number of output pixels (`out_h * out_w`).
    pub fn out_pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validates that the geometry produces a non-empty output.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when the kernel is larger than
    /// the padded input or the stride is zero.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be nonzero".into()));
        }
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidArgument("kernel must be nonzero".into()));
        }
        if self.in_h + 2 * self.padding < self.kernel_h
            || self.in_w + 2 * self.padding < self.kernel_w
        {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kernel_h,
                self.kernel_w,
                self.in_h + 2 * self.padding,
                self.in_w + 2 * self.padding
            )));
        }
        Ok(())
    }
}

fn conv_out(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    if input + 2 * padding < kernel || stride == 0 {
        return 0;
    }
    (input + 2 * padding - kernel) / stride + 1
}

/// Lowers one image of shape `[channels, in_h, in_w]` into a patch matrix of
/// shape `[channels * kernel_h * kernel_w, out_h * out_w]`.
///
/// # Errors
///
/// Returns an error when `image` is not rank-3, its spatial extents disagree
/// with `geom`, or the geometry is invalid.
pub fn im2col(image: &Tensor, channels: usize, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    if image.dims().len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: image.dims().len(),
            op: "im2col",
        });
    }
    if image.dims() != [channels, geom.in_h, geom.in_w] {
        return Err(TensorError::ShapeMismatch {
            left: image.dims().to_vec(),
            right: vec![channels, geom.in_h, geom.in_w],
            op: "im2col",
        });
    }
    let out_h = geom.out_h();
    let out_w = geom.out_w();
    let patch_len = channels * geom.kernel_h * geom.kernel_w;
    let mut out = vec![0.0f32; patch_len * out_h * out_w];
    let src = image.as_slice();
    let (in_h, in_w) = (geom.in_h as isize, geom.in_w as isize);

    for c in 0..channels {
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let patch_row = (c * geom.kernel_h + kh) * geom.kernel_w + kw;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                        let dst_idx = patch_row * out_h * out_w + oy * out_w + ox;
                        if iy >= 0 && iy < in_h && ix >= 0 && ix < in_w {
                            out[dst_idx] =
                                src[c * geom.in_h * geom.in_w + iy as usize * geom.in_w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[patch_len, out_h * out_w])
}

/// Accumulates a patch matrix (shape `[channels * kh * kw, out_h * out_w]`)
/// back into an image of shape `[channels, in_h, in_w]` — the adjoint of
/// [`im2col`], used by the convolution backward pass.
///
/// # Errors
///
/// Returns an error when the patch-matrix shape disagrees with `geom` or the
/// geometry is invalid.
pub fn col2im(cols: &Tensor, channels: usize, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    let out_h = geom.out_h();
    let out_w = geom.out_w();
    let patch_len = channels * geom.kernel_h * geom.kernel_w;
    if cols.dims() != [patch_len, out_h * out_w] {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: vec![patch_len, out_h * out_w],
            op: "col2im",
        });
    }
    let mut out = vec![0.0f32; channels * geom.in_h * geom.in_w];
    let src = cols.as_slice();
    let (in_h, in_w) = (geom.in_h as isize, geom.in_w as isize);

    for c in 0..channels {
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                let patch_row = (c * geom.kernel_h + kh) * geom.kernel_w + kw;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + kh) as isize - geom.padding as isize;
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kw) as isize - geom.padding as isize;
                        if iy >= 0 && iy < in_h && ix >= 0 && ix < in_w {
                            let dst =
                                c * geom.in_h * geom.in_w + iy as usize * geom.in_w + ix as usize;
                            out[dst] += src[patch_row * out_h * out_w + oy * out_w + ox];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[channels, geom.in_h, geom.in_w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let g = Conv2dGeometry::new(32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = Conv2dGeometry::new(32, 32, 3, 2, 1);
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        let g = Conv2dGeometry::new(7, 7, 7, 1, 0);
        assert_eq!(g.out_pixels(), 1);
        assert!(Conv2dGeometry::new(4, 4, 5, 1, 0).validate().is_err());
        assert!(Conv2dGeometry { stride: 0, ..Conv2dGeometry::new(4, 4, 3, 1, 1) }
            .validate()
            .is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: the patch matrix is the image
        // flattened per channel.
        let img = Tensor::from_vec((0..2 * 3 * 3).map(|x| x as f32).collect(), &[2, 3, 3]).unwrap();
        let g = Conv2dGeometry::new(3, 3, 1, 1, 0);
        let cols = im2col(&img, 2, &g).unwrap();
        assert_eq!(cols.dims(), &[2, 9]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_known_values() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no padding.
        let img = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 3, 3],
        )
        .unwrap();
        let g = Conv2dGeometry { kernel_h: 2, kernel_w: 2, ..Conv2dGeometry::new(3, 3, 2, 1, 0) };
        let cols = im2col(&img, 1, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // Patch rows: top-left, top-right, bottom-left, bottom-right of each
        // 2x2 window, windows in row-major output order.
        assert_eq!(cols.row(0).unwrap(), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cols.row(1).unwrap(), &[2.0, 3.0, 5.0, 6.0]);
        assert_eq!(cols.row(2).unwrap(), &[4.0, 5.0, 7.0, 8.0]);
        assert_eq!(cols.row(3).unwrap(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let img = Tensor::ones(&[1, 2, 2]);
        let g = Conv2dGeometry::new(2, 2, 3, 1, 1);
        let cols = im2col(&img, 1, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Centre tap of the kernel always hits the image: row 4 is all ones.
        assert_eq!(cols.row(4).unwrap(), &[1.0, 1.0, 1.0, 1.0]);
        // Top-left tap only hits the image for the bottom-right output pixel.
        assert_eq!(cols.row(0).unwrap(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop requires.
        let mut rng = crate::SeedRng::new(21);
        let g = Conv2dGeometry::new(5, 6, 3, 2, 1);
        let channels = 3;
        let x = Tensor::from_vec(
            (0..channels * 5 * 6).map(|_| rng.normal()).collect(),
            &[channels, 5, 6],
        )
        .unwrap();
        let cols = im2col(&x, channels, &g).unwrap();
        let y = Tensor::from_vec(
            (0..cols.len()).map(|_| rng.normal()).collect(),
            cols.dims(),
        )
        .unwrap();
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, channels, &g).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn shape_mismatches_error() {
        let img = Tensor::ones(&[1, 4, 4]);
        let g = Conv2dGeometry::new(5, 5, 3, 1, 1);
        assert!(im2col(&img, 1, &g).is_err());
        let cols = Tensor::ones(&[9, 9]);
        assert!(col2im(&cols, 1, &g).is_err());
        assert!(im2col(&Tensor::ones(&[4, 4]), 1, &g).is_err());
    }
}
