//! Shape descriptor for row-major tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Shapes are stored row-major; the last dimension is contiguous in memory.
///
/// # Example
///
/// ```
/// use ofscil_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Self { dims: dims.to_vec() }
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements described by this shape.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] when `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis { axis, rank: self.rank() })
    }

    /// Computes the row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index rank does not
    /// match or any component exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len()
            || index.iter().zip(&self.dims).any(|(i, d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(index
            .iter()
            .zip(self.strides())
            .map(|(i, s)| i * s)
            .sum())
    }

    /// Returns `true` when the two shapes describe the same extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(s.dim(3).is_err());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
        assert!(s.offset(&[0, 3, 0]).is_err());
        assert!(s.offset(&[0, 0]).is_err());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn display_formats_dims() {
        let s = Shape::new(&[8, 3, 32, 32]);
        assert_eq!(s.to_string(), "(8x3x32x32)");
    }
}
