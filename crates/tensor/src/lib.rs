//! Dense tensor math substrate for the O-FSCIL reproduction.
//!
//! This crate provides the numerical foundation used by every other crate in
//! the workspace: an owned, row-major [`Tensor`] of `f32` values together with
//! the linear-algebra, convolution-lowering, reduction and similarity kernels
//! needed to train and evaluate the O-FSCIL models, plus deterministic random
//! initialization utilities.
//!
//! The design goals, in order, are correctness, determinism (every stochastic
//! routine takes an explicit seed or RNG), and reasonable single-node
//! performance (blocked matrix multiplication, optionally parallelised with
//! `std::thread::scope`).
//!
//! # Example
//!
//! ```
//! use ofscil_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod init;
mod linalg;
mod parallel;
mod reduce;
mod rng;
mod shape;
mod similarity;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use init::{Init, Initializer};
pub use linalg::MatmulOptions;
pub use parallel::{parallel_chunks, recommended_threads};
pub use reduce::Axis;
pub use rng::SeedRng;
pub use shape::Shape;
pub use similarity::{cosine_similarity, l2_norm, log_softmax, relu, softmax};
pub use tensor::Tensor;

/// Result alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
