//! Property-based tests for the tensor substrate.

use ofscil_tensor::{cosine_similarity, im2col, softmax, Conv2dGeometry, MatmulOptions, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative(data in prop::collection::vec(-1e3f32..1e3, 1..64)) {
        let a = Tensor::from_slice(&data);
        let b = a.scale(0.5);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn scale_then_norm_scales_norm(data in prop::collection::vec(-10.0f32..10.0, 1..64), k in 0.1f32..4.0) {
        let t = Tensor::from_slice(&data);
        let scaled = t.scale(k);
        prop_assert!((scaled.norm() - k * t.norm()).abs() < 1e-2 * (1.0 + t.norm()));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_vec(6 * 4), b in small_vec(4 * 5), c in small_vec(4 * 5)
    ) {
        let a = Tensor::from_vec(a, &[6, 4]).unwrap();
        let b = Tensor::from_vec(b, &[4, 5]).unwrap();
        let c = Tensor::from_vec(c, &[4, 5]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-1);
    }

    #[test]
    fn matmul_threading_is_equivalent(a in small_vec(32 * 16), b in small_vec(16 * 24)) {
        let a = Tensor::from_vec(a, &[32, 16]).unwrap();
        let b = Tensor::from_vec(b, &[16, 24]).unwrap();
        let single = a.matmul_with(&b, MatmulOptions::single_threaded()).unwrap();
        let multi = a.matmul_with(&b, MatmulOptions { threads: 4, block_k: 16 }).unwrap();
        prop_assert!(single.max_abs_diff(&multi).unwrap() < 1e-3);
    }

    #[test]
    fn transpose_is_involution(data in small_vec(7 * 9)) {
        let t = Tensor::from_vec(data, &[7, 9]).unwrap();
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn cosine_similarity_is_bounded(a in small_vec(16), b in small_vec(16)) {
        let c = cosine_similarity(&a, &b).unwrap();
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
    }

    #[test]
    fn cosine_is_scale_invariant(a in small_vec(16), k in 0.1f32..10.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let c1 = cosine_similarity(&a, &a).unwrap();
        let c2 = cosine_similarity(&a, &scaled).unwrap();
        prop_assert!((c1 - c2).abs() < 1e-3);
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..32)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn l2_normalized_rows_have_unit_or_zero_norm(data in small_vec(8 * 6)) {
        let t = Tensor::from_vec(data, &[8, 6]).unwrap();
        let n = t.l2_normalize_rows().unwrap();
        for i in 0..8 {
            let norm = ofscil_tensor::l2_norm(n.row(i).unwrap());
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_preserves_energy_without_padding_stride_kernel(
        data in prop::collection::vec(-5.0f32..5.0, 2 * 6 * 6)
    ) {
        // With a 1x1 kernel and stride 1 the lowering is a permutation, so the
        // sum of elements must be preserved exactly.
        let img = Tensor::from_vec(data, &[2, 6, 6]).unwrap();
        let g = Conv2dGeometry::new(6, 6, 1, 1, 0);
        let cols = im2col(&img, 2, &g).unwrap();
        prop_assert!((cols.sum() - img.sum()).abs() < 1e-3);
    }

    #[test]
    fn reshape_preserves_data(data in small_vec(24)) {
        let t = Tensor::from_vec(data.clone(), &[2, 3, 4]).unwrap();
        let r = t.reshape(&[6, 4]).unwrap();
        prop_assert_eq!(r.as_slice(), &data[..]);
    }
}
