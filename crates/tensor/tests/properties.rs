//! Property-based tests for the tensor substrate.
//!
//! `proptest` is unavailable offline, so these are hand-rolled randomized
//! property checks: each property is evaluated over `CASES` independent
//! inputs drawn from a seeded [`SeedRng`], so failures are reproducible.

use ofscil_tensor::{
    cosine_similarity, im2col, softmax, Conv2dGeometry, MatmulOptions, SeedRng, Tensor,
};

const CASES: usize = 64;

/// Uniform vector in `[lo, hi)` of the given length.
fn rand_vec(rng: &mut SeedRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
}

fn small_vec(rng: &mut SeedRng, len: usize) -> Vec<f32> {
    rand_vec(rng, len, -100.0, 100.0)
}

/// Random length in `[min, max)`.
fn rand_len(rng: &mut SeedRng, min: usize, max: usize) -> usize {
    min + rng.below(max - min)
}

#[test]
fn add_is_commutative() {
    let mut rng = SeedRng::new(0xADD);
    for case in 0..CASES {
        let len = rand_len(&mut rng, 1, 64);
        let data = rand_vec(&mut rng, len, -1e3, 1e3);
        let a = Tensor::from_slice(&data);
        let b = a.scale(0.5);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        assert_eq!(ab, ba, "case {case}");
    }
}

#[test]
fn scale_then_norm_scales_norm() {
    let mut rng = SeedRng::new(0x5CA1E);
    for case in 0..CASES {
        let len = rand_len(&mut rng, 1, 64);
        let t = Tensor::from_slice(&rand_vec(&mut rng, len, -10.0, 10.0));
        let k = rng.uniform_range(0.1, 4.0);
        let scaled = t.scale(k);
        assert!(
            (scaled.norm() - k * t.norm()).abs() < 1e-2 * (1.0 + t.norm()),
            "case {case}"
        );
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = SeedRng::new(0xAA77);
    for case in 0..CASES {
        let a = Tensor::from_vec(small_vec(&mut rng, 6 * 4), &[6, 4]).unwrap();
        let b = Tensor::from_vec(small_vec(&mut rng, 4 * 5), &[4, 5]).unwrap();
        let c = Tensor::from_vec(small_vec(&mut rng, 4 * 5), &[4, 5]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-1, "case {case}");
    }
}

#[test]
fn matmul_threading_is_equivalent() {
    let mut rng = SeedRng::new(0x7EAD);
    for case in 0..CASES {
        let a = Tensor::from_vec(small_vec(&mut rng, 32 * 16), &[32, 16]).unwrap();
        let b = Tensor::from_vec(small_vec(&mut rng, 16 * 24), &[16, 24]).unwrap();
        let single = a.matmul_with(&b, MatmulOptions::single_threaded()).unwrap();
        let multi = a.matmul_with(&b, MatmulOptions { threads: 4, block_k: 16 }).unwrap();
        assert!(single.max_abs_diff(&multi).unwrap() < 1e-3, "case {case}");
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = SeedRng::new(0x7A05);
    for case in 0..CASES {
        let t = Tensor::from_vec(small_vec(&mut rng, 7 * 9), &[7, 9]).unwrap();
        assert_eq!(t.transpose().unwrap().transpose().unwrap(), t, "case {case}");
    }
}

#[test]
fn cosine_similarity_is_bounded() {
    let mut rng = SeedRng::new(0xC05);
    for case in 0..CASES {
        let a = small_vec(&mut rng, 16);
        let b = small_vec(&mut rng, 16);
        let c = cosine_similarity(&a, &b).unwrap();
        assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c), "case {case}: {c}");
    }
}

#[test]
fn cosine_is_scale_invariant() {
    let mut rng = SeedRng::new(0x5CA1E2);
    for case in 0..CASES {
        let a = small_vec(&mut rng, 16);
        let k = rng.uniform_range(0.1, 10.0);
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let c1 = cosine_similarity(&a, &a).unwrap();
        let c2 = cosine_similarity(&a, &scaled).unwrap();
        assert!((c1 - c2).abs() < 1e-3, "case {case}");
    }
}

#[test]
fn softmax_is_a_distribution() {
    let mut rng = SeedRng::new(0x50F7);
    for case in 0..CASES {
        let len = rand_len(&mut rng, 1, 32);
        let logits = rand_vec(&mut rng, len, -20.0, 20.0);
        let p = softmax(&logits);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4, "case {case}");
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "case {case}");
    }
}

#[test]
fn l2_normalized_rows_have_unit_or_zero_norm() {
    let mut rng = SeedRng::new(0x12);
    for case in 0..CASES {
        let t = Tensor::from_vec(small_vec(&mut rng, 8 * 6), &[8, 6]).unwrap();
        let n = t.l2_normalize_rows().unwrap();
        for i in 0..8 {
            let norm = ofscil_tensor::l2_norm(n.row(i).unwrap());
            assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-3, "case {case} row {i}");
        }
    }
}

#[test]
fn im2col_preserves_energy_without_padding_stride_kernel() {
    let mut rng = SeedRng::new(0x132C);
    for case in 0..CASES {
        // With a 1x1 kernel and stride 1 the lowering is a permutation, so the
        // sum of elements must be preserved exactly.
        let img = Tensor::from_vec(rand_vec(&mut rng, 2 * 6 * 6, -5.0, 5.0), &[2, 6, 6]).unwrap();
        let g = Conv2dGeometry::new(6, 6, 1, 1, 0);
        let cols = im2col(&img, 2, &g).unwrap();
        assert!((cols.sum() - img.sum()).abs() < 1e-3, "case {case}");
    }
}

#[test]
fn reshape_preserves_data() {
    let mut rng = SeedRng::new(0x2E5);
    for case in 0..CASES {
        let data = small_vec(&mut rng, 24);
        let t = Tensor::from_vec(data.clone(), &[2, 3, 4]).unwrap();
        let r = t.reshape(&[6, 4]).unwrap();
        assert_eq!(r.as_slice(), &data[..], "case {case}");
    }
}
