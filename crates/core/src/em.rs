//! The Explicit Memory (EM): an expandable store of class prototypes queried
//! by cosine similarity.

use crate::{CoreError, Result};
use ofscil_quant::{ExplicitMemoryFootprint, PrototypePrecision};
use ofscil_tensor::cosine_similarity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Explicit Memory.
///
/// Each known class owns one prototype vector of dimension d_p, computed as
/// the mean of the FCR features of its support samples (a single pass — no
/// sample is ever stored). Queries are classified by the prototype with the
/// highest cosine similarity (paper Fig. 1a).
///
/// Prototypes may be stored at reduced precision (Fig. 3); the reduction is
/// applied when the prototype is written, matching the on-device bit-shift
/// division.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplicitMemory {
    dim: usize,
    precision: PrototypePrecision,
    prototypes: BTreeMap<usize, Vec<f32>>,
}

impl ExplicitMemory {
    /// Creates an empty explicit memory for prototypes of dimension `dim`
    /// stored at full (32-bit) precision.
    pub fn new(dim: usize) -> Self {
        ExplicitMemory {
            dim,
            precision: PrototypePrecision::new(32).expect("32 bits is always valid"),
            prototypes: BTreeMap::new(),
        }
    }

    /// Creates an empty explicit memory with reduced-precision storage.
    pub fn with_precision(dim: usize, precision: PrototypePrecision) -> Self {
        ExplicitMemory { dim, precision, prototypes: BTreeMap::new() }
    }

    /// Prototype dimensionality d_p.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The storage precision.
    pub fn precision(&self) -> PrototypePrecision {
        self.precision
    }

    /// Number of stored class prototypes.
    pub fn num_classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Returns `true` when no prototype is stored.
    pub fn is_empty(&self) -> bool {
        self.prototypes.is_empty()
    }

    /// The sorted list of classes with a stored prototype.
    pub fn classes(&self) -> Vec<usize> {
        self.prototypes.keys().copied().collect()
    }

    /// Returns the stored prototype of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClass`] when the class has no prototype.
    pub fn prototype(&self, class: usize) -> Result<&[f32]> {
        self.prototypes
            .get(&class)
            .map(Vec::as_slice)
            .ok_or(CoreError::UnknownClass(class))
    }

    /// Writes (or overwrites) the prototype of `class` as the mean of the
    /// given feature vectors — the paper's single-pass EM update (Fig. 1b).
    ///
    /// # Errors
    ///
    /// Returns an error when `features` is empty or any vector has the wrong
    /// dimension.
    pub fn update_class(&mut self, class: usize, features: &[&[f32]]) -> Result<()> {
        if features.is_empty() {
            return Err(CoreError::InvalidConfig(format!(
                "class {class} update requires at least one feature vector"
            )));
        }
        let mut mean = vec![0.0f32; self.dim];
        for feature in features {
            if feature.len() != self.dim {
                return Err(CoreError::InvalidConfig(format!(
                    "feature dimension {} does not match EM dimension {}",
                    feature.len(),
                    self.dim
                )));
            }
            for (m, &v) in mean.iter_mut().zip(*feature) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= features.len() as f32;
        }
        self.prototypes.insert(class, self.precision.quantize(&mean));
        Ok(())
    }

    /// Stores an externally computed prototype (used by the FCR fine-tuning
    /// path and by baseline heads).
    ///
    /// # Errors
    ///
    /// Returns an error when the dimension is wrong.
    pub fn set_prototype(&mut self, class: usize, prototype: &[f32]) -> Result<()> {
        if prototype.len() != self.dim {
            return Err(CoreError::InvalidConfig(format!(
                "prototype dimension {} does not match EM dimension {}",
                prototype.len(),
                self.dim
            )));
        }
        self.prototypes.insert(class, self.precision.quantize(prototype));
        Ok(())
    }

    /// Stores a prototype exactly as given, bypassing the storage-precision
    /// quantizer. This is the deserialization path of snapshot codecs: the
    /// values are assumed to already be at the memory's storage precision
    /// (they were quantized when first written), and re-quantizing them would
    /// not be bit-exact because the quantizer's clip search depends on the
    /// input distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when the dimension is wrong.
    pub fn restore_prototype(&mut self, class: usize, prototype: &[f32]) -> Result<()> {
        if prototype.len() != self.dim {
            return Err(CoreError::InvalidConfig(format!(
                "prototype dimension {} does not match EM dimension {}",
                prototype.len(),
                self.dim
            )));
        }
        self.prototypes.insert(class, prototype.to_vec());
        Ok(())
    }

    /// Iterates over `(class, prototype)` pairs in ascending class order —
    /// the serialization path of snapshot codecs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.prototypes.iter().map(|(&c, p)| (c, p.as_slice()))
    }

    /// Removes every stored prototype.
    pub fn clear(&mut self) {
        self.prototypes.clear();
    }

    /// Re-quantizes every stored prototype at a new precision (the Fig. 3
    /// sweep re-uses one trained memory across precisions).
    pub fn requantize(&mut self, precision: PrototypePrecision) {
        self.precision = precision;
        let classes: Vec<usize> = self.classes();
        for class in classes {
            let proto = self.prototypes.remove(&class).expect("class listed");
            self.prototypes.insert(class, precision.quantize(&proto));
        }
    }

    /// Cosine-similarity logits of a query feature against every stored
    /// prototype, in ascending class order. Returns `(classes, similarities)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the query dimension is wrong or the memory is
    /// empty.
    pub fn similarities(&self, query: &[f32]) -> Result<(Vec<usize>, Vec<f32>)> {
        if query.len() != self.dim {
            return Err(CoreError::InvalidConfig(format!(
                "query dimension {} does not match EM dimension {}",
                query.len(),
                self.dim
            )));
        }
        if self.prototypes.is_empty() {
            return Err(CoreError::InvalidConfig("explicit memory is empty".into()));
        }
        let mut classes = Vec::with_capacity(self.prototypes.len());
        let mut sims = Vec::with_capacity(self.prototypes.len());
        for (&class, proto) in &self.prototypes {
            classes.push(class);
            sims.push(cosine_similarity(query, proto).map_err(CoreError::Tensor)?);
        }
        Ok((classes, sims))
    }

    /// Classifies a query feature: returns the class of the most similar
    /// prototype and the similarity value.
    ///
    /// # Errors
    ///
    /// Returns an error when the query dimension is wrong or the memory is
    /// empty.
    pub fn classify(&self, query: &[f32]) -> Result<(usize, f32)> {
        let (classes, sims) = self.similarities(query)?;
        let mut best = 0usize;
        for (i, &s) in sims.iter().enumerate() {
            if s > sims[best] {
                best = i;
            }
        }
        Ok((classes[best], sims[best]))
    }

    /// Returns the bipolarised (+1 / −1) version of a class prototype, the
    /// fine-tuning target of the paper's Mode-2 FCR update.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClass`] when the class has no prototype.
    pub fn bipolarized(&self, class: usize) -> Result<Vec<f32>> {
        let proto = self.prototype(class)?;
        Ok(proto.iter().map(|&v| if v >= 0.0 { 1.0 } else { -1.0 }).collect())
    }

    /// Storage footprint of the memory at its current precision.
    pub fn footprint(&self) -> ExplicitMemoryFootprint {
        ExplicitMemoryFootprint::new(self.num_classes(), self.dim, self.precision.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_classify() {
        let mut em = ExplicitMemory::new(4);
        em.update_class(0, &[&[1.0, 0.0, 0.0, 0.0], &[0.8, 0.2, 0.0, 0.0]]).unwrap();
        em.update_class(5, &[&[0.0, 1.0, 0.0, 0.0]]).unwrap();
        assert_eq!(em.num_classes(), 2);
        assert_eq!(em.classes(), vec![0, 5]);
        let (class, sim) = em.classify(&[1.0, 0.1, 0.0, 0.0]).unwrap();
        assert_eq!(class, 0);
        assert!(sim > 0.9);
        let (class, _) = em.classify(&[0.0, 2.0, 0.0, 0.0]).unwrap();
        assert_eq!(class, 5);
    }

    #[test]
    fn prototype_is_mean_of_features() {
        let mut em = ExplicitMemory::new(2);
        em.update_class(3, &[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(em.prototype(3).unwrap(), &[0.5, 0.5]);
        assert!(em.prototype(1).is_err());
    }

    #[test]
    fn dimension_checks() {
        let mut em = ExplicitMemory::new(3);
        assert!(em.update_class(0, &[&[1.0, 2.0]]).is_err());
        assert!(em.update_class(0, &[]).is_err());
        assert!(em.set_prototype(0, &[1.0]).is_err());
        em.set_prototype(0, &[1.0, 0.0, 0.0]).unwrap();
        assert!(em.similarities(&[1.0]).is_err());
        assert!(ExplicitMemory::new(3).classify(&[1.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn low_precision_storage_preserves_classification() {
        let p3 = PrototypePrecision::new(3).unwrap();
        let mut em = ExplicitMemory::with_precision(8, p3);
        em.update_class(0, &[&[1.0, 0.8, -0.2, 0.1, 0.0, 0.3, -0.1, 0.5]]).unwrap();
        em.update_class(1, &[&[-0.9, 0.1, 0.7, -0.4, 0.2, -0.6, 0.3, -0.2]]).unwrap();
        let (class, _) = em.classify(&[0.9, 0.7, -0.1, 0.2, 0.1, 0.2, 0.0, 0.4]).unwrap();
        assert_eq!(class, 0);
        assert_eq!(em.precision().bits(), 3);
    }

    #[test]
    fn requantize_and_footprint() {
        let mut em = ExplicitMemory::new(256);
        for class in 0..100usize {
            let proto: Vec<f32> = (0..256).map(|i| ((i + class) % 7) as f32 - 3.0).collect();
            em.set_prototype(class, &proto).unwrap();
        }
        assert!((em.footprint().kilobytes() - 102.4).abs() < 1e-6);
        em.requantize(PrototypePrecision::new(3).unwrap());
        assert!((em.footprint().kilobytes() - 9.6).abs() < 1e-6);
        assert_eq!(em.num_classes(), 100);
    }

    #[test]
    fn bipolarized_prototype() {
        let mut em = ExplicitMemory::new(4);
        em.set_prototype(2, &[0.5, -0.1, 0.0, -2.0]).unwrap();
        assert_eq!(em.bipolarized(2).unwrap(), vec![1.0, -1.0, 1.0, -1.0]);
        assert!(em.bipolarized(9).is_err());
    }

    #[test]
    fn restore_bypasses_quantization() {
        let p3 = PrototypePrecision::new(3).unwrap();
        let mut em = ExplicitMemory::with_precision(4, p3);
        // set_prototype quantizes; restore_prototype must not.
        let raw = [0.123, -0.456, 0.789, -0.012];
        em.restore_prototype(7, &raw).unwrap();
        assert_eq!(em.prototype(7).unwrap(), &raw);
        assert!(em.restore_prototype(7, &[1.0]).is_err());
        let pairs: Vec<(usize, &[f32])> = em.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 7);
    }

    #[test]
    fn clear_empties_memory() {
        let mut em = ExplicitMemory::new(2);
        em.set_prototype(0, &[1.0, 0.0]).unwrap();
        em.clear();
        assert!(em.is_empty());
    }
}
