//! Optional on-device FCR fine-tuning (paper §V-B, the "+FT" rows).
//!
//! The backbone stays frozen. For every known class the activation memory
//! holds the mean backbone feature θ_a,i; the FCR is updated by gradient
//! descent to maximise the cosine similarity between `FCR(θ_a,i)` and the
//! *bipolarised* class prototype. Work proceeds in sub-batches of classes so
//! the accumulated gradient of `N` classes is applied at once, reducing
//! memory traffic on the device (the paper's sub-batching scheme). After
//! fine-tuning the explicit memory stores the bipolarised prototypes, which
//! the re-trained FCR now maps queries towards.

use crate::cosine::{cosine_logits, cosine_logits_backward};
use crate::{CoreError, OFscilModel, Result};
use ofscil_nn::optim::Sgd;
use ofscil_nn::Mode;
use ofscil_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// FCR fine-tuning hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Number of passes over the stored class activations (paper: 100).
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Classes per accumulated gradient step (the sub-batch size N).
    pub sub_batch: usize,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig { epochs: 100, learning_rate: 0.01, sub_batch: 8 }
    }
}

impl FinetuneConfig {
    /// A short schedule for tests and the micro profile.
    pub fn micro() -> Self {
        FinetuneConfig { epochs: 20, learning_rate: 0.02, sub_batch: 8 }
    }
}

/// Summary of a fine-tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneReport {
    /// Mean cosine alignment between `FCR(θ_a,i)` and the bipolarised
    /// prototypes before fine-tuning.
    pub initial_alignment: f32,
    /// Mean cosine alignment after fine-tuning.
    pub final_alignment: f32,
    /// Number of epochs executed.
    pub epochs_run: usize,
    /// Number of classes fine-tuned against.
    pub classes: usize,
}

/// Fine-tunes the FCR of `model` against its stored class prototypes.
///
/// # Errors
///
/// Returns an error when the model has no stored prototypes / activations or
/// a forward/backward pass fails.
pub fn finetune_fcr(model: &mut OFscilModel, config: &FinetuneConfig) -> Result<FinetuneReport> {
    if config.sub_batch == 0 {
        return Err(CoreError::InvalidConfig("sub_batch must be nonzero".into()));
    }
    let d_p = model.projection_dim();
    let (fcr, em, activation_means) = model.finetune_parts();
    let classes: Vec<usize> = em.classes();
    if classes.is_empty() {
        return Err(CoreError::InvalidConfig(
            "fine-tuning requires at least one learned class".into(),
        ));
    }
    let d_a = fcr.feature_dim();

    // Assemble the activation matrix [C, d_a] and bipolarised targets [C, d_p].
    let mut activations = Tensor::zeros(&[classes.len(), d_a]);
    let mut targets = Tensor::zeros(&[classes.len(), d_p]);
    for (row, class) in classes.iter().enumerate() {
        let theta_a = activation_means.get(class).ok_or(CoreError::UnknownClass(*class))?;
        if theta_a.len() != d_a {
            return Err(CoreError::InvalidConfig(format!(
                "stored activation of class {class} has dimension {}, expected {d_a}",
                theta_a.len()
            )));
        }
        activations.set_row(row, theta_a)?;
        targets.set_row(row, &em.bipolarized(*class)?)?;
    }

    let alignment = |fcr: &mut crate::Fcr, activations: &Tensor| -> Result<f32> {
        let projected = fcr.forward(activations, Mode::Eval)?;
        let mut total = 0.0f32;
        for row in 0..classes.len() {
            let p = Tensor::from_slice(&projected.as_slice()[row * d_p..(row + 1) * d_p]);
            let t = Tensor::from_slice(&targets.as_slice()[row * d_p..(row + 1) * d_p]);
            total += p.cosine(&t)?;
        }
        Ok(total / classes.len() as f32)
    };

    let initial_alignment = alignment(fcr, &activations)?;
    let mut optimizer = Sgd::new(config.learning_rate, 0.9, 0.0);

    for _ in 0..config.epochs {
        let order: Vec<usize> = (0..classes.len()).collect();
        for chunk in order.chunks(config.sub_batch) {
            // Sub-batch of class activations and their targets.
            let mut theta_a = Tensor::zeros(&[chunk.len(), d_a]);
            let mut chunk_targets = Tensor::zeros(&[chunk.len(), d_p]);
            for (i, &row) in chunk.iter().enumerate() {
                theta_a.set_row(i, &activations.as_slice()[row * d_a..(row + 1) * d_a])?;
                chunk_targets.set_row(i, &targets.as_slice()[row * d_p..(row + 1) * d_p])?;
            }
            let projected = fcr.forward(&theta_a, Mode::Train)?;
            // Maximise the diagonal of the cosine matrix between projections
            // and their own bipolarised targets: L = 1 − mean(cos_ii).
            let logits = cosine_logits(&projected, &chunk_targets)?;
            let mut grad_logits = Tensor::zeros(logits.dims());
            for i in 0..chunk.len() {
                grad_logits.set(&[i, i], -1.0 / chunk.len() as f32)?;
            }
            let grad_projected = cosine_logits_backward(&projected, &chunk_targets, &grad_logits)?;
            fcr.backward(&grad_projected)?;
            optimizer.step(fcr.layer_mut());
        }
    }

    let final_alignment = alignment(fcr, &activations)?;

    // The explicit memory now stores the bipolarised prototypes the FCR was
    // aligned to (C-FSCIL "mode 2" behaviour).
    for (row, class) in classes.iter().enumerate() {
        em.set_prototype(*class, &targets.as_slice()[row * d_p..(row + 1) * d_p])?;
    }

    Ok(FinetuneReport {
        initial_alignment,
        final_alignment,
        epochs_run: config.epochs,
        classes: classes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_data::{Dataset, Sample};
    use ofscil_nn::models::BackboneKind;
    use ofscil_tensor::SeedRng;

    fn learned_model() -> OFscilModel {
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let mut ds = Dataset::new(&[3, 8, 8]);
        let mut data_rng = SeedRng::new(5);
        for class in 0..4usize {
            for _ in 0..5 {
                let mut img = Tensor::full(&[3, 8, 8], 0.2);
                for y in 0..8 {
                    for x in 0..8 {
                        img.set(&[class % 3, y, x], 0.8 + 0.1 * data_rng.normal()).unwrap();
                    }
                }
                ds.push(Sample { image: img, label: class }).unwrap();
            }
        }
        model.learn_classes_online(&ds.full_batch().unwrap()).unwrap();
        model
    }

    #[test]
    fn finetuning_improves_alignment() {
        let mut model = learned_model();
        let report = finetune_fcr(&mut model, &FinetuneConfig::micro()).unwrap();
        assert_eq!(report.classes, 4);
        assert_eq!(report.epochs_run, FinetuneConfig::micro().epochs);
        assert!(
            report.final_alignment > report.initial_alignment,
            "alignment did not improve: {} -> {}",
            report.initial_alignment,
            report.final_alignment
        );
        // Prototypes are now bipolar (±1 entries only).
        let proto = model.em().prototype(0).unwrap();
        assert!(proto.iter().all(|v| (v.abs() - 1.0).abs() < 1e-6));
    }

    #[test]
    fn requires_learned_classes() {
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        assert!(finetune_fcr(&mut model, &FinetuneConfig::micro()).is_err());
        let mut model = learned_model();
        let bad = FinetuneConfig { sub_batch: 0, ..FinetuneConfig::micro() };
        assert!(finetune_fcr(&mut model, &bad).is_err());
    }

    #[test]
    fn zero_epochs_only_bipolarises() {
        let mut model = learned_model();
        let config = FinetuneConfig { epochs: 0, ..FinetuneConfig::micro() };
        let report = finetune_fcr(&mut model, &config).unwrap();
        assert_eq!(report.epochs_run, 0);
        assert!((report.final_alignment - report.initial_alignment).abs() < 1e-6);
    }
}
