//! End-to-end experiment driver: pretrain → metalearn → (quantize) →
//! incremental protocol.

use crate::{
    metalearn, pretrain, run_fscil_protocol, EvalPrecision, ExperimentConfig, MetalearnReport,
    OFscilModel, PretrainReport, Result, SessionResults,
};
use ofscil_data::FscilBenchmark;
use ofscil_quant::PrototypePrecision;
use ofscil_tensor::SeedRng;

/// Everything produced by one experiment run. The trained model and the
/// generated benchmark are returned so downstream sweeps (e.g. the Fig. 3
/// prototype-precision sweep) can reuse them without retraining.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// The trained (and possibly quantized) model with its populated memory.
    pub model: OFscilModel,
    /// The benchmark the model was trained and evaluated on.
    pub benchmark: FscilBenchmark,
    /// Pretraining summary.
    pub pretrain: PretrainReport,
    /// Metalearning summary (when metalearning was enabled).
    pub metalearn: Option<MetalearnReport>,
    /// Per-session accuracies of the incremental protocol.
    pub sessions: SessionResults,
}

impl ExperimentOutcome {
    /// Size of the populated explicit memory in kilobytes.
    pub fn em_kilobytes(&self) -> f64 {
        self.model.em().footprint().kilobytes()
    }
}

/// Runs a complete O-FSCIL experiment from a configuration.
///
/// # Errors
///
/// Returns an error when the configuration is invalid or any stage fails.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentOutcome> {
    config.validate()?;
    let benchmark = FscilBenchmark::generate(&config.fscil, config.seed)?;
    let mut rng = SeedRng::new(config.seed ^ 0x0F5C_11AA);
    let mut model = OFscilModel::new(config.backbone, config.projection_dim, &mut rng);

    let pretrain_report = pretrain(
        &mut model,
        benchmark.base_train(),
        config.fscil.num_base_classes,
        &config.pretrain,
        &mut rng,
    )?;

    let metalearn_report = match &config.metalearn {
        Some(meta_config) => Some(metalearn(
            &mut model,
            benchmark.base_train(),
            meta_config,
            &mut rng,
        )?),
        None => None,
    };

    if config.eval_precision == EvalPrecision::Int8 {
        model.convert_to_int8()?;
    }
    if config.prototype_bits != 32 {
        model.set_prototype_precision(PrototypePrecision::new(config.prototype_bits)?);
    }

    let sessions = run_fscil_protocol(&mut model, &benchmark, 64, config.finetune.as_ref())?;

    Ok(ExperimentOutcome {
        model,
        benchmark,
        pretrain: pretrain_report,
        metalearn: metalearn_report,
        sessions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FinetuneConfig, MetalearnConfig, PretrainConfig};
    use ofscil_data::FscilConfig;
    use ofscil_nn::models::BackboneKind;

    /// A very small experiment configuration shared by the tests.
    fn tiny_config(seed: u64) -> ExperimentConfig {
        let mut fscil = FscilConfig::micro();
        fscil.synthetic.num_classes = 12;
        fscil.synthetic.image_size = 12;
        fscil.num_base_classes = 6;
        fscil.num_sessions = 3;
        fscil.ways = 2;
        fscil.base_train_per_class = 10;
        fscil.test_per_class = 4;
        ExperimentConfig {
            seed,
            backbone: BackboneKind::Micro,
            projection_dim: 16,
            fscil,
            pretrain: PretrainConfig { epochs: 2, batch_size: 16, ..PretrainConfig::micro() },
            metalearn: Some(MetalearnConfig { iterations: 5, ..MetalearnConfig::micro() }),
            eval_precision: EvalPrecision::Fp32,
            prototype_bits: 32,
            finetune: None,
        }
    }

    #[test]
    fn full_pipeline_runs_and_learns() {
        let outcome = run_experiment(&tiny_config(3)).unwrap();
        assert_eq!(outcome.sessions.accuracies.len(), 4);
        assert_eq!(outcome.model.em().num_classes(), 12);
        assert!(outcome.metalearn.is_some());
        assert!(outcome.em_kilobytes() > 0.0);
        // A pretrained model must beat random guessing on the base session.
        assert!(
            outcome.sessions.session0() > 1.0 / 6.0,
            "base-session accuracy {}",
            outcome.sessions.session0()
        );
    }

    #[test]
    fn int8_and_low_precision_prototypes_run() {
        let config = tiny_config(4)
            .with_precision(EvalPrecision::Int8)
            .with_prototype_bits(3);
        let outcome = run_experiment(&config).unwrap();
        assert!(outcome.model.is_int8());
        assert_eq!(outcome.model.em().precision().bits(), 3);
        assert!(outcome.sessions.average() > 0.0);
    }

    #[test]
    fn finetune_variant_runs() {
        let config = tiny_config(5)
            .with_finetune(FinetuneConfig { epochs: 2, ..FinetuneConfig::micro() });
        let outcome = run_experiment(&config).unwrap();
        assert_eq!(outcome.sessions.accuracies.len(), 4);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = run_experiment(&tiny_config(7)).unwrap();
        let b = run_experiment(&tiny_config(7)).unwrap();
        assert_eq!(a.sessions.accuracies, b.sessions.accuracies);
    }
}
