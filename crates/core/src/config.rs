//! Experiment configuration: profiles, precisions and component toggles.

use crate::{FinetuneConfig, MetalearnConfig, PretrainConfig};
use ofscil_data::FscilConfig;
use ofscil_nn::models::BackboneKind;
use serde::{Deserialize, Serialize};

/// Numerical precision of the evaluated (deployed) model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalPrecision {
    /// Floating-point evaluation (the paper's FP32 rows, run on a GPU).
    Fp32,
    /// Simulated int8 evaluation: weights and prototype features pass through
    /// a TQT-style quantize–dequantize step (the paper's INT8 rows on GAP9).
    Int8,
}

/// The loss used during metalearning (Table III compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaLoss {
    /// The paper's multi-margin loss on ReLU-sharpened cosine logits (Eq. 4).
    MultiMargin,
    /// Plain cross entropy on the cosine logits (the ablation baseline that
    /// the paper shows *degrades* generalisation).
    CrossEntropy,
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Laptop-scale: micro backbone, reduced synthetic protocol. Runs the
    /// entire pipeline in seconds; used by tests and default benches.
    Micro,
    /// Full-scale: the paper's backbone and protocol sizes. Orders of
    /// magnitude slower in this pure-Rust engine; exposed for completeness.
    Full,
}

/// Complete configuration of one O-FSCIL experiment (pretraining,
/// metalearning, incremental protocol and deployment precision).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Backbone family.
    pub backbone: BackboneKind,
    /// FCR output dimensionality d_p.
    pub projection_dim: usize,
    /// The FSCIL data protocol.
    pub fscil: FscilConfig,
    /// Pretraining options (paper §IV-B).
    pub pretrain: PretrainConfig,
    /// Metalearning options (paper §IV-C); `None` skips metalearning.
    pub metalearn: Option<MetalearnConfig>,
    /// Deployed precision for evaluation.
    pub eval_precision: EvalPrecision,
    /// Storage precision of the explicit memory (bits per element; 32 = FP).
    pub prototype_bits: u8,
    /// Optional on-device FCR fine-tuning (paper §V-B, the "+FT" rows).
    pub finetune: Option<FinetuneConfig>,
}

impl ExperimentConfig {
    /// The laptop-scale configuration used by tests, examples and the default
    /// benchmark profile: micro backbone, micro FSCIL protocol, short
    /// pretraining and metalearning schedules.
    pub fn micro(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            backbone: BackboneKind::Micro,
            projection_dim: 32,
            fscil: FscilConfig::micro(),
            pretrain: PretrainConfig::micro(),
            metalearn: Some(MetalearnConfig::micro()),
            eval_precision: EvalPrecision::Fp32,
            prototype_bits: 32,
            finetune: None,
        }
    }

    /// The paper-scale configuration (MobileNetV2 x4, 60 base classes, eight
    /// 5-way 5-shot sessions). Provided for completeness; running it with the
    /// pure-Rust engine takes hours.
    pub fn full(seed: u64, backbone: BackboneKind) -> Self {
        ExperimentConfig {
            seed,
            backbone,
            projection_dim: match backbone {
                BackboneKind::ResNet12 => 512,
                _ => 256,
            },
            fscil: FscilConfig::cifar100(),
            pretrain: PretrainConfig::full(),
            metalearn: Some(MetalearnConfig::full()),
            eval_precision: EvalPrecision::Fp32,
            prototype_bits: 32,
            finetune: None,
        }
    }

    /// Switches the evaluated precision (builder style).
    #[must_use]
    pub fn with_precision(mut self, precision: EvalPrecision) -> Self {
        self.eval_precision = precision;
        self
    }

    /// Sets the explicit-memory storage bits (builder style).
    #[must_use]
    pub fn with_prototype_bits(mut self, bits: u8) -> Self {
        self.prototype_bits = bits;
        self
    }

    /// Enables FCR fine-tuning (builder style).
    #[must_use]
    pub fn with_finetune(mut self, finetune: FinetuneConfig) -> Self {
        self.finetune = Some(finetune);
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration cannot be run.
    pub fn validate(&self) -> crate::Result<()> {
        if self.projection_dim == 0 {
            return Err(crate::CoreError::InvalidConfig(
                "projection_dim must be nonzero".into(),
            ));
        }
        if self.prototype_bits != 32 && !(1..=8).contains(&self.prototype_bits) {
            return Err(crate::CoreError::InvalidConfig(format!(
                "prototype_bits must be 1..=8 or 32, got {}",
                self.prototype_bits
            )));
        }
        self.fscil.validate().map_err(crate::CoreError::Data)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_is_valid() {
        let config = ExperimentConfig::micro(0);
        config.validate().unwrap();
        assert_eq!(config.backbone, BackboneKind::Micro);
        assert!(config.metalearn.is_some());
    }

    #[test]
    fn full_config_matches_paper_dimensions() {
        let config = ExperimentConfig::full(0, BackboneKind::MobileNetV2X4);
        assert_eq!(config.projection_dim, 256);
        assert_eq!(config.fscil.num_base_classes, 60);
        assert_eq!(config.fscil.num_sessions, 8);
        let resnet = ExperimentConfig::full(0, BackboneKind::ResNet12);
        assert_eq!(resnet.projection_dim, 512);
    }

    #[test]
    fn builders_and_validation() {
        let config = ExperimentConfig::micro(1)
            .with_precision(EvalPrecision::Int8)
            .with_prototype_bits(3);
        assert_eq!(config.eval_precision, EvalPrecision::Int8);
        config.validate().unwrap();

        let bad = ExperimentConfig::micro(1).with_prototype_bits(12);
        assert!(bad.validate().is_err());
        let mut bad = ExperimentConfig::micro(1);
        bad.projection_dim = 0;
        assert!(bad.validate().is_err());
    }
}
