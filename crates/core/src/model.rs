//! The assembled O-FSCIL model: backbone + FCR + explicit memory.

use crate::{CoreError, ExplicitMemory, Fcr, Result};
use ofscil_data::{Batch, Dataset};
use ofscil_nn::models::{Backbone, BackboneKind};
use ofscil_nn::Mode;
use ofscil_quant::{quantize_layer_weights, FakeQuant, PrototypePrecision};
use ofscil_tensor::{SeedRng, Tensor};
use std::collections::BTreeMap;

/// The deployable O-FSCIL model (paper Fig. 1).
///
/// * inference: image → backbone → θ_a → FCR → θ_p → cosine similarity
///   against the explicit memory → predicted class,
/// * online learning: the θ_p features of the S support samples of a new
///   class are averaged into a prototype in a single pass; the backbone and
///   FCR stay frozen,
/// * the per-class mean θ_a activations are cached in an *activation memory*
///   so the optional FCR fine-tuning (§V-B) never needs the raw samples.
#[derive(Debug)]
pub struct OFscilModel {
    backbone: Backbone,
    fcr: Fcr,
    em: ExplicitMemory,
    activation_means: BTreeMap<usize, Vec<f32>>,
    activation_quant: Option<FakeQuant>,
}

impl OFscilModel {
    /// Builds a model with a freshly initialised backbone and FCR.
    pub fn new(kind: BackboneKind, projection_dim: usize, rng: &mut SeedRng) -> Self {
        let backbone = kind.build(rng);
        let fcr = Fcr::new(backbone.feature_dim, projection_dim, rng);
        let em = ExplicitMemory::new(projection_dim);
        OFscilModel {
            backbone,
            fcr,
            em,
            activation_means: BTreeMap::new(),
            activation_quant: None,
        }
    }

    /// The backbone (read access; deployment cost models need the layer
    /// structure without mutating the model).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The backbone.
    pub fn backbone_mut(&mut self) -> &mut Backbone {
        &mut self.backbone
    }

    /// The FCR.
    pub fn fcr_mut(&mut self) -> &mut Fcr {
        &mut self.fcr
    }

    /// The explicit memory (read access).
    pub fn em(&self) -> &ExplicitMemory {
        &self.em
    }

    /// The explicit memory (mutable access).
    pub fn em_mut(&mut self) -> &mut ExplicitMemory {
        &mut self.em
    }

    /// The cached per-class mean backbone activations θ_a.
    pub fn activation_means(&self) -> &BTreeMap<usize, Vec<f32>> {
        &self.activation_means
    }

    /// The FCR projection dimensionality d_p.
    pub fn projection_dim(&self) -> usize {
        self.fcr.projection_dim()
    }

    /// Splits the model into the parts the training loops need to borrow
    /// simultaneously (backbone, FCR and the optional activation quantizer).
    pub(crate) fn training_parts(&mut self) -> (&mut Backbone, &mut Fcr, Option<FakeQuant>) {
        (&mut self.backbone, &mut self.fcr, self.activation_quant)
    }

    /// Splits the model into the parts the FCR fine-tuning loop needs: the
    /// FCR, the explicit memory and the cached per-class activations.
    pub(crate) fn finetune_parts(
        &mut self,
    ) -> (&mut Fcr, &mut ExplicitMemory, &BTreeMap<usize, Vec<f32>>) {
        (&mut self.fcr, &mut self.em, &self.activation_means)
    }

    /// Switches the explicit memory to a reduced storage precision,
    /// re-quantizing existing prototypes.
    pub fn set_prototype_precision(&mut self, precision: PrototypePrecision) {
        self.em.requantize(precision);
    }

    /// Converts the model to simulated int8 execution: all backbone and FCR
    /// weights are passed through a TQT-style quantize–dequantize step and
    /// prototype features are quantized at extraction time.
    ///
    /// # Errors
    ///
    /// Returns an error when weight calibration fails.
    pub fn convert_to_int8(&mut self) -> Result<()> {
        quantize_layer_weights(&mut self.backbone.net, 8)?;
        quantize_layer_weights(self.fcr.layer_mut(), 8)?;
        self.activation_quant = Some(FakeQuant::new(8)?);
        Ok(())
    }

    /// Returns `true` when the model simulates int8 execution.
    pub fn is_int8(&self) -> bool {
        self.activation_quant.is_some()
    }

    /// Runs the backbone, returning θ_a of shape `[batch, d_a]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the image batch is incompatible with the
    /// backbone.
    pub fn extract_backbone_features(&mut self, images: &Tensor, mode: Mode) -> Result<Tensor> {
        let theta_a = self.backbone.forward(images, mode)?;
        Ok(match &self.activation_quant {
            Some(q) => q.apply(&theta_a),
            None => theta_a,
        })
    }

    /// Runs backbone + FCR, returning θ_p of shape `[batch, d_p]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the image batch is incompatible.
    pub fn extract_features(&mut self, images: &Tensor, mode: Mode) -> Result<Tensor> {
        let theta_a = self.extract_backbone_features(images, mode)?;
        let theta_p = self.fcr.forward(&theta_a, mode)?;
        Ok(match &self.activation_quant {
            Some(q) => q.apply(&theta_p),
            None => theta_p,
        })
    }

    /// Learns the classes present in `batch` with a single pass (paper
    /// Fig. 1b): features are grouped by label, averaged into prototypes and
    /// written into the explicit memory. Also updates the activation memory
    /// with the per-class mean θ_a.
    ///
    /// Classes already known are overwritten — the caller controls whether a
    /// batch refines or replaces previous knowledge.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch is empty or incompatible.
    pub fn learn_classes_online(&mut self, batch: &Batch) -> Result<()> {
        if batch.is_empty() {
            return Err(CoreError::InvalidConfig("cannot learn from an empty batch".into()));
        }
        let theta_a = self.extract_backbone_features(&batch.images, Mode::Eval)?;
        let theta_p = {
            let projected = self.fcr.forward(&theta_a, Mode::Eval)?;
            match &self.activation_quant {
                Some(q) => q.apply(&projected),
                None => projected,
            }
        };
        let d_a = theta_a.dims()[1];
        let d_p = theta_p.dims()[1];

        let mut classes: Vec<usize> = batch.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        for class in classes {
            let rows: Vec<usize> = batch
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| i)
                .collect();
            let features: Vec<&[f32]> = rows
                .iter()
                .map(|&r| &theta_p.as_slice()[r * d_p..(r + 1) * d_p])
                .collect();
            self.em.update_class(class, &features)?;

            let mut mean_a = vec![0.0f32; d_a];
            for &r in &rows {
                for (m, &v) in mean_a.iter_mut().zip(&theta_a.as_slice()[r * d_a..(r + 1) * d_a]) {
                    *m += v;
                }
            }
            for m in &mut mean_a {
                *m /= rows.len() as f32;
            }
            self.activation_means.insert(class, mean_a);
        }
        Ok(())
    }

    /// Predicts the class of every image in the batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the explicit memory is empty or shapes are
    /// incompatible.
    pub fn predict(&mut self, images: &Tensor) -> Result<Vec<usize>> {
        let theta_p = self.extract_features(images, Mode::Eval)?;
        let d_p = theta_p.dims()[1];
        let mut predictions = Vec::with_capacity(theta_p.dims()[0]);
        for row in 0..theta_p.dims()[0] {
            let query = &theta_p.as_slice()[row * d_p..(row + 1) * d_p];
            let (class, _) = self.em.classify(query)?;
            predictions.push(class);
        }
        Ok(predictions)
    }

    /// Evaluates classification accuracy on a dataset, processing
    /// `batch_size` images at a time.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset is empty or incompatible.
    pub fn evaluate(&mut self, dataset: &Dataset, batch_size: usize) -> Result<f32> {
        if dataset.is_empty() {
            return Err(CoreError::InvalidConfig("cannot evaluate on an empty dataset".into()));
        }
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let mut correct = 0usize;
        for chunk in indices.chunks(batch_size.max(1)) {
            let batch = dataset.batch(chunk)?;
            let predictions = self.predict(&batch.images)?;
            correct += predictions
                .iter()
                .zip(&batch.labels)
                .filter(|(p, l)| p == l)
                .count();
        }
        Ok(correct as f32 / dataset.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_data::{Dataset, Sample};

    /// A dataset of three linearly separable "colour" classes: each class has
    /// one dominant channel, so even an untrained backbone separates them.
    fn colour_dataset(per_class: usize, size: usize) -> Dataset {
        let mut ds = Dataset::new(&[3, size, size]);
        let mut rng = SeedRng::new(9);
        for class in 0..3usize {
            for _ in 0..per_class {
                let mut img = Tensor::full(&[3, size, size], 0.1);
                for y in 0..size {
                    for x in 0..size {
                        img.set(&[class, y, x], 0.9 + 0.05 * rng.normal()).unwrap();
                    }
                }
                ds.push(Sample { image: img, label: class }).unwrap();
            }
        }
        ds
    }

    #[test]
    fn online_learning_and_prediction() {
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let train = colour_dataset(5, 8);
        model.learn_classes_online(&train.full_batch().unwrap()).unwrap();
        assert_eq!(model.em().num_classes(), 3);
        assert_eq!(model.activation_means().len(), 3);

        let test = colour_dataset(4, 8);
        let accuracy = model.evaluate(&test, 6).unwrap();
        // Colour classes are separable even through a random backbone.
        assert!(accuracy > 0.5, "accuracy {accuracy}");
    }

    #[test]
    fn empty_batch_and_dataset_are_rejected() {
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let empty = Batch { images: Tensor::zeros(&[0, 3, 8, 8]), labels: vec![] };
        assert!(model.learn_classes_online(&empty).is_err());
        assert!(model.evaluate(&Dataset::new(&[3, 8, 8]), 4).is_err());
        // Prediction before any class is learned fails.
        assert!(model.predict(&Tensor::ones(&[1, 3, 8, 8])).is_err());
    }

    #[test]
    fn int8_conversion_keeps_predictions_reasonable() {
        let mut rng = SeedRng::new(2);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let train = colour_dataset(5, 8);
        let test = colour_dataset(4, 8);
        model.learn_classes_online(&train.full_batch().unwrap()).unwrap();
        let fp32_accuracy = model.evaluate(&test, 6).unwrap();
        assert!(!model.is_int8());
        model.convert_to_int8().unwrap();
        assert!(model.is_int8());
        // Re-learn with quantized features (as the deployed device would).
        model.learn_classes_online(&train.full_batch().unwrap()).unwrap();
        let int8_accuracy = model.evaluate(&test, 6).unwrap();
        assert!(int8_accuracy >= fp32_accuracy - 0.25, "fp32 {fp32_accuracy} int8 {int8_accuracy}");
    }

    #[test]
    fn prototype_precision_reduction_is_applied() {
        let mut rng = SeedRng::new(3);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let train = colour_dataset(3, 8);
        model.learn_classes_online(&train.full_batch().unwrap()).unwrap();
        model.set_prototype_precision(PrototypePrecision::new(3).unwrap());
        assert_eq!(model.em().precision().bits(), 3);
        let test = colour_dataset(2, 8);
        let accuracy = model.evaluate(&test, 4).unwrap();
        assert!(accuracy > 0.4, "accuracy {accuracy}");
    }
}
