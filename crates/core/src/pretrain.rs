//! Supervised pretraining on the base session (paper §IV-B).
//!
//! The explicit memory is replaced by a Fully Connected Classifier (FCC) and
//! backbone + FCR + FCC are trained jointly with cross entropy, Mixup/CutMix
//! feature interpolation and the feature-orthogonality regulariser
//! `L_pre = L_ce + λ_ortho · L_ortho` (Eq. 2).

use crate::{CoreError, OFscilModel, Result};
use ofscil_data::{Augmenter, AugmenterConfig, CutMix, Dataset, Mixup};
use ofscil_nn::layers::Linear;
use ofscil_nn::loss::{accuracy, cross_entropy_soft, one_hot, orthogonality_loss};
use ofscil_nn::optim::{clip_gradient_norm, Sgd};
use ofscil_nn::{Layer, Mode};
use ofscil_tensor::SeedRng;
use serde::{Deserialize, Serialize};

/// Pretraining hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Number of passes over the base session.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Orthogonality regularisation strength λ_ortho (Eq. 2); 0 disables it.
    pub lambda_ortho: f32,
    /// Enables the traditional augmentations (flip / crop / blur).
    pub augment: bool,
    /// Enables Mixup / CutMix feature interpolation.
    pub feature_interpolation: bool,
    /// Probability of applying Mixup or CutMix to a batch (paper: 0.4).
    pub interpolation_probability: f32,
    /// Maximum global gradient norm per component per step (keeps short,
    /// aggressive schedules stable).
    pub gradient_clip: f32,
}

impl PretrainConfig {
    /// Short schedule for the laptop-scale profile.
    pub fn micro() -> Self {
        PretrainConfig {
            epochs: 4,
            batch_size: 32,
            learning_rate: 0.03,
            momentum: 0.9,
            weight_decay: 5e-4,
            lambda_ortho: 0.1,
            augment: true,
            feature_interpolation: true,
            interpolation_probability: 0.4,
            gradient_clip: 5.0,
        }
    }

    /// The paper-scale schedule.
    pub fn full() -> Self {
        PretrainConfig { epochs: 100, batch_size: 128, ..PretrainConfig::micro() }
    }

    /// Disables every optional component (the ablation baseline row).
    #[must_use]
    pub fn bare(mut self) -> Self {
        self.augment = false;
        self.feature_interpolation = false;
        self.lambda_ortho = 0.0;
        self
    }
}

/// Summary of a pretraining run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean orthogonality loss per epoch (zero when disabled).
    pub epoch_ortho_losses: Vec<f32>,
    /// Training accuracy of the final epoch (on clean, non-interpolated
    /// batches only).
    pub final_train_accuracy: f32,
}

/// Pretrains the model's backbone and FCR (together with a temporary FCC) on
/// the base-session data.
///
/// # Errors
///
/// Returns an error when the dataset is empty, labels exceed
/// `num_base_classes`, or a forward/backward pass fails.
pub fn pretrain(
    model: &mut OFscilModel,
    base_train: &Dataset,
    num_base_classes: usize,
    config: &PretrainConfig,
    rng: &mut SeedRng,
) -> Result<PretrainReport> {
    if base_train.is_empty() {
        return Err(CoreError::InvalidConfig("pretraining dataset is empty".into()));
    }
    if config.epochs == 0 {
        return Ok(PretrainReport {
            epoch_losses: vec![],
            epoch_ortho_losses: vec![],
            final_train_accuracy: 0.0,
        });
    }
    let projection_dim = model.projection_dim();
    let mut fcc = Linear::new(projection_dim, num_base_classes, true, rng);
    let mut backbone_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let mut fcr_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let mut fcc_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let augmenter = Augmenter::new(AugmenterConfig::default());
    let mixup = Mixup::default();
    let cutmix = CutMix;

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut epoch_ortho = Vec::with_capacity(config.epochs);
    let mut final_accuracy = 0.0f32;

    for _epoch in 0..config.epochs {
        let mut loss_sum = 0.0f32;
        let mut ortho_sum = 0.0f32;
        let mut batch_count = 0usize;
        let mut accuracy_sum = 0.0f32;
        let mut accuracy_batches = 0usize;

        let batches = base_train.shuffled_batches(config.batch_size, rng)?;
        for mut batch in batches {
            if config.augment {
                augmenter.augment(&mut batch, rng)?;
            }
            // Feature interpolation: Mixup and CutMix are used exclusively of
            // each other, with the configured probability (paper §IV-B).
            let interpolate = config.feature_interpolation
                && rng.chance(config.interpolation_probability);
            let (images, targets, hard_labels) = if interpolate {
                let (images, soft) = if rng.chance(0.5) {
                    mixup.apply(&batch, num_base_classes, rng)?
                } else {
                    cutmix.apply(&batch, num_base_classes, rng)?
                };
                (images, soft, None)
            } else {
                let targets = one_hot(&batch.labels, num_base_classes)?;
                (batch.images.clone(), targets, Some(batch.labels.clone()))
            };

            let (backbone, fcr, _quant) = model.training_parts();
            let theta_a = backbone.forward(&images, Mode::Train)?;
            let theta_p = fcr.forward(&theta_a, Mode::Train)?;
            let logits = fcc.forward(&theta_p, Mode::Train)?;

            let (ce_loss, grad_logits) = cross_entropy_soft(&logits, &targets)?;
            let mut grad_theta_p = fcc.backward(&grad_logits)?;
            let mut ortho_value = 0.0f32;
            if config.lambda_ortho > 0.0 {
                let (ortho, ortho_grad) = orthogonality_loss(&theta_p)?;
                ortho_value = ortho;
                grad_theta_p.axpy(config.lambda_ortho, &ortho_grad)?;
            }
            let grad_theta_a = fcr.backward(&grad_theta_p)?;
            backbone.backward(&grad_theta_a)?;

            if config.gradient_clip > 0.0 {
                clip_gradient_norm(&mut backbone.net, config.gradient_clip);
                clip_gradient_norm(fcr.layer_mut(), config.gradient_clip);
                clip_gradient_norm(&mut fcc, config.gradient_clip);
            }
            backbone_opt.step(&mut backbone.net);
            fcr_opt.step(fcr.layer_mut());
            fcc_opt.step(&mut fcc);

            loss_sum += ce_loss + config.lambda_ortho * ortho_value;
            ortho_sum += ortho_value;
            batch_count += 1;
            if let Some(labels) = hard_labels {
                accuracy_sum += accuracy(&logits, &labels)?;
                accuracy_batches += 1;
            }
        }
        epoch_losses.push(loss_sum / batch_count.max(1) as f32);
        epoch_ortho.push(ortho_sum / batch_count.max(1) as f32);
        if accuracy_batches > 0 {
            final_accuracy = accuracy_sum / accuracy_batches as f32;
        }
    }

    Ok(PretrainReport {
        epoch_losses,
        epoch_ortho_losses: epoch_ortho,
        final_train_accuracy: final_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_data::{FscilBenchmark, FscilConfig};
    use ofscil_nn::models::BackboneKind;

    fn tiny_benchmark() -> FscilBenchmark {
        let mut config = FscilConfig::micro();
        config.synthetic.num_classes = 12;
        config.synthetic.image_size = 12;
        config.num_base_classes = 6;
        config.num_sessions = 3;
        config.base_train_per_class = 10;
        config.test_per_class = 4;
        FscilBenchmark::generate(&config, 3).unwrap()
    }

    #[test]
    fn pretraining_reduces_loss() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let config = PretrainConfig { epochs: 5, batch_size: 16, ..PretrainConfig::micro() };
        let report = pretrain(&mut model, bench.base_train(), 6, &config, &mut rng).unwrap();
        assert_eq!(report.epoch_losses.len(), 5);
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(report.final_train_accuracy > 1.0 / 6.0);
    }

    #[test]
    fn orthogonality_term_is_reported() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let with_ortho = PretrainConfig { epochs: 1, batch_size: 16, ..PretrainConfig::micro() };
        let report = pretrain(&mut model, bench.base_train(), 6, &with_ortho, &mut rng).unwrap();
        assert!(report.epoch_ortho_losses[0] > 0.0);

        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let without = PretrainConfig {
            epochs: 1,
            batch_size: 16,
            lambda_ortho: 0.0,
            ..PretrainConfig::micro()
        };
        let report = pretrain(&mut model, bench.base_train(), 6, &without, &mut rng).unwrap();
        assert_eq!(report.epoch_ortho_losses[0], 0.0);
    }

    #[test]
    fn empty_dataset_and_zero_epochs() {
        let mut rng = SeedRng::new(2);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let empty = Dataset::new(&[3, 12, 12]);
        assert!(pretrain(&mut model, &empty, 4, &PretrainConfig::micro(), &mut rng).is_err());

        let bench = tiny_benchmark();
        let zero = PretrainConfig { epochs: 0, ..PretrainConfig::micro() };
        let report = pretrain(&mut model, bench.base_train(), 6, &zero, &mut rng).unwrap();
        assert!(report.epoch_losses.is_empty());
    }

    #[test]
    fn bare_config_disables_components() {
        let config = PretrainConfig::micro().bare();
        assert!(!config.augment);
        assert!(!config.feature_interpolation);
        assert_eq!(config.lambda_ortho, 0.0);
    }
}
