//! The component ablation of Table III: augmentation (AG), orthogonality
//! regularisation (OR), multi-margin metalearning (MM), cross-entropy
//! metalearning (CE) and incremental fine-tuning (FT).

use crate::{
    run_experiment, ExperimentConfig, FinetuneConfig, MetaLoss, MetalearnConfig, Result,
};
use serde::{Deserialize, Serialize};

/// One row of the ablation table: which components are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationVariant {
    /// AG: traditional augmentation + Mixup/CutMix feature interpolation.
    pub augmentation: bool,
    /// OR: feature-orthogonality regularisation during pretraining.
    pub orthogonality: bool,
    /// MM: multi-margin metalearning.
    pub multi_margin: bool,
    /// CE: cross-entropy metalearning.
    pub cross_entropy: bool,
    /// FT: incremental FCR fine-tuning.
    pub finetune: bool,
}

impl AblationVariant {
    /// The seven rows of the paper's Table III, in order.
    pub fn table3_rows() -> Vec<AblationVariant> {
        let base = AblationVariant {
            augmentation: false,
            orthogonality: false,
            multi_margin: false,
            cross_entropy: false,
            finetune: false,
        };
        vec![
            base,
            AblationVariant { augmentation: true, ..base },
            AblationVariant { augmentation: true, orthogonality: true, ..base },
            AblationVariant { augmentation: true, multi_margin: true, ..base },
            AblationVariant { augmentation: true, orthogonality: true, multi_margin: true, ..base },
            AblationVariant { augmentation: true, orthogonality: true, cross_entropy: true, ..base },
            AblationVariant {
                augmentation: true,
                orthogonality: true,
                multi_margin: true,
                finetune: true,
                ..base
            },
        ]
    }

    /// A compact label such as `"AG+OR+MM"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.augmentation {
            parts.push("AG");
        }
        if self.orthogonality {
            parts.push("OR");
        }
        if self.multi_margin {
            parts.push("MM");
        }
        if self.cross_entropy {
            parts.push("CE");
        }
        if self.finetune {
            parts.push("FT");
        }
        if parts.is_empty() {
            "baseline".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Applies the variant's toggles to an experiment configuration.
    pub fn apply(&self, mut config: ExperimentConfig) -> ExperimentConfig {
        config.pretrain.augment = self.augmentation;
        config.pretrain.feature_interpolation = self.augmentation;
        config.pretrain.lambda_ortho = if self.orthogonality {
            config.pretrain.lambda_ortho.max(0.05)
        } else {
            0.0
        };
        config.metalearn = if self.multi_margin {
            Some(
                config
                    .metalearn
                    .clone()
                    .unwrap_or_else(MetalearnConfig::micro)
                    .with_loss(MetaLoss::MultiMargin),
            )
        } else if self.cross_entropy {
            Some(
                config
                    .metalearn
                    .clone()
                    .unwrap_or_else(MetalearnConfig::micro)
                    .with_loss(MetaLoss::CrossEntropy),
            )
        } else {
            None
        };
        config.finetune = self.finetune.then(FinetuneConfig::micro);
        config
    }
}

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Which components were enabled.
    pub variant: AblationVariant,
    /// Compact component label.
    pub label: String,
    /// Base-session accuracy.
    pub session0: f32,
    /// Accuracy after the final session.
    pub last_session: f32,
    /// Average accuracy over all sessions.
    pub average: f32,
}

/// Runs every listed ablation variant on top of the given base configuration.
///
/// # Errors
///
/// Returns an error when any underlying experiment fails.
pub fn run_ablation(
    base_config: &ExperimentConfig,
    variants: &[AblationVariant],
) -> Result<Vec<AblationResult>> {
    let mut results = Vec::with_capacity(variants.len());
    for variant in variants {
        let config = variant.apply(base_config.clone());
        let outcome = run_experiment(&config)?;
        results.push(AblationResult {
            variant: *variant,
            label: variant.label(),
            session0: outcome.sessions.session0(),
            last_session: outcome.sessions.last_session(),
            average: outcome.sessions.average(),
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalPrecision, PretrainConfig};
    use ofscil_data::FscilConfig;
    use ofscil_nn::models::BackboneKind;

    #[test]
    fn table3_has_seven_distinct_rows() {
        let rows = AblationVariant::table3_rows();
        assert_eq!(rows.len(), 7);
        let labels: std::collections::HashSet<String> =
            rows.iter().map(AblationVariant::label).collect();
        assert_eq!(labels.len(), 7);
        assert_eq!(rows[0].label(), "baseline");
        assert_eq!(rows[4].label(), "AG+OR+MM");
        assert_eq!(rows[6].label(), "AG+OR+MM+FT");
    }

    #[test]
    fn apply_toggles_components() {
        let config = ExperimentConfig::micro(0);
        let bare = AblationVariant::table3_rows()[0].apply(config.clone());
        assert!(!bare.pretrain.augment);
        assert_eq!(bare.pretrain.lambda_ortho, 0.0);
        assert!(bare.metalearn.is_none());
        assert!(bare.finetune.is_none());

        let full = AblationVariant::table3_rows()[6].apply(config.clone());
        assert!(full.pretrain.augment);
        assert!(full.pretrain.lambda_ortho > 0.0);
        assert_eq!(full.metalearn.as_ref().unwrap().loss, MetaLoss::MultiMargin);
        assert!(full.finetune.is_some());

        let ce = AblationVariant::table3_rows()[5].apply(config);
        assert_eq!(ce.metalearn.as_ref().unwrap().loss, MetaLoss::CrossEntropy);
    }

    #[test]
    fn ablation_runner_produces_results() {
        // Use an extremely small setup: two variants only, tiny data.
        let mut fscil = FscilConfig::micro();
        fscil.synthetic.num_classes = 10;
        fscil.synthetic.image_size = 12;
        fscil.num_base_classes = 6;
        fscil.num_sessions = 2;
        fscil.ways = 2;
        fscil.base_train_per_class = 8;
        fscil.test_per_class = 3;
        let base = ExperimentConfig {
            seed: 1,
            backbone: BackboneKind::Micro,
            projection_dim: 16,
            fscil,
            pretrain: PretrainConfig { epochs: 1, batch_size: 16, ..PretrainConfig::micro() },
            metalearn: Some(MetalearnConfig { iterations: 2, ..MetalearnConfig::micro() }),
            eval_precision: EvalPrecision::Fp32,
            prototype_bits: 32,
            finetune: None,
        };
        let variants = [AblationVariant::table3_rows()[0], AblationVariant::table3_rows()[4]];
        let results = run_ablation(&base, &variants).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| (0.0..=1.0).contains(&r.average)));
        assert_eq!(results[0].label, "baseline");
    }
}
