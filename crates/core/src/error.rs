//! Error type for the core crate.

use ofscil_data::DataError;
use ofscil_nn::NnError;
use ofscil_quant::QuantError;
use ofscil_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by O-FSCIL training, learning and evaluation routines.
#[derive(Debug)]
pub enum CoreError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// A quantization operation failed.
    Quant(QuantError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The experiment configuration is inconsistent.
    InvalidConfig(String),
    /// A class id was used before being learned, or is otherwise unknown.
    UnknownClass(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Quant(e) => write!(f, "quantization error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid experiment configuration: {msg}"),
            CoreError::UnknownClass(c) => write!(f, "class {c} has no stored prototype"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Quant(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<QuantError> for CoreError {
    fn from(e: QuantError) -> Self {
        CoreError::Quant(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network"));
        assert!(e.source().is_some());
        let e = CoreError::UnknownClass(42);
        assert!(e.to_string().contains("42"));
        assert!(e.source().is_none());
    }
}
