//! Episodic metalearning on the base session (paper §IV-C).
//!
//! Every iteration re-generates the class prototypes from `N` freshly sampled
//! meta-samples per class, computes ReLU-sharpened cosine logits for a query
//! batch (Eq. 3) and updates the backbone and FCR with the multi-margin loss
//! (Eq. 4) — or cross entropy, for the Table III ablation that shows CE
//! metalearning hurts generalisation.

use crate::cosine::{cosine_logits, cosine_logits_backward};
use crate::{CoreError, MetaLoss, OFscilModel, Result};
use ofscil_data::Dataset;
use ofscil_nn::loss::{accuracy, cross_entropy, multi_margin_loss};
use ofscil_nn::optim::{clip_gradient_norm, Sgd};
use ofscil_nn::Mode;
use ofscil_tensor::{SeedRng, Tensor};
use serde::{Deserialize, Serialize};

/// Metalearning hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetalearnConfig {
    /// Number of metalearning iterations.
    pub iterations: usize,
    /// Meta-samples per class used to build the episode prototypes (N).
    pub meta_samples_per_class: usize,
    /// Query samples per class per iteration.
    pub queries_per_class: usize,
    /// Multi-margin margin value m (paper: 0.1 after grid search).
    pub margin: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// The metalearning loss.
    pub loss: crate::MetaLoss,
}

impl MetalearnConfig {
    /// Short schedule for the laptop-scale profile.
    pub fn micro() -> Self {
        MetalearnConfig {
            iterations: 30,
            meta_samples_per_class: 5,
            queries_per_class: 2,
            margin: 0.1,
            learning_rate: 0.01,
            momentum: 0.9,
            loss: MetaLoss::MultiMargin,
        }
    }

    /// The paper-scale schedule.
    pub fn full() -> Self {
        MetalearnConfig { iterations: 2000, ..MetalearnConfig::micro() }
    }

    /// Switches the metalearning loss (builder style).
    #[must_use]
    pub fn with_loss(mut self, loss: MetaLoss) -> Self {
        self.loss = loss;
        self
    }
}

/// Summary of a metalearning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetalearnReport {
    /// Loss value per iteration.
    pub iteration_losses: Vec<f32>,
    /// Query accuracy per iteration.
    pub iteration_accuracies: Vec<f32>,
}

impl MetalearnReport {
    /// Mean query accuracy over the last quarter of the iterations.
    pub fn late_accuracy(&self) -> f32 {
        if self.iteration_accuracies.is_empty() {
            return 0.0;
        }
        let tail = (self.iteration_accuracies.len() / 4).max(1);
        let start = self.iteration_accuracies.len() - tail;
        self.iteration_accuracies[start..].iter().sum::<f32>() / tail as f32
    }
}

/// Runs episodic metalearning on the base-session data, updating the model's
/// backbone and FCR in place.
///
/// # Errors
///
/// Returns an error when the dataset cannot provide the requested number of
/// meta-samples or queries per class, or a forward/backward pass fails.
pub fn metalearn(
    model: &mut OFscilModel,
    base_train: &Dataset,
    config: &MetalearnConfig,
    rng: &mut SeedRng,
) -> Result<MetalearnReport> {
    if base_train.is_empty() {
        return Err(CoreError::InvalidConfig("metalearning dataset is empty".into()));
    }
    if config.meta_samples_per_class == 0 || config.queries_per_class == 0 {
        return Err(CoreError::InvalidConfig(
            "meta_samples_per_class and queries_per_class must be nonzero".into(),
        ));
    }
    let classes = base_train.classes();
    let d_p = model.projection_dim();
    let mut backbone_opt = Sgd::new(config.learning_rate, config.momentum, 0.0);
    let mut fcr_opt = Sgd::new(config.learning_rate, config.momentum, 0.0);

    let mut iteration_losses = Vec::with_capacity(config.iterations);
    let mut iteration_accuracies = Vec::with_capacity(config.iterations);

    for _ in 0..config.iterations {
        // 1. Build episode prototypes from meta-samples (no gradient).
        let support =
            base_train.sample_support(&classes, config.meta_samples_per_class, rng)?;
        let support_features = model.extract_features(&support.images, Mode::Eval)?;
        let mut prototypes = Tensor::zeros(&[classes.len(), d_p]);
        for (class_idx, class) in classes.iter().enumerate() {
            let rows: Vec<usize> = support
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == *class)
                .map(|(i, _)| i)
                .collect();
            let mut mean = vec![0.0f32; d_p];
            for &r in &rows {
                for (m, &v) in mean
                    .iter_mut()
                    .zip(&support_features.as_slice()[r * d_p..(r + 1) * d_p])
                {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= rows.len().max(1) as f32;
            }
            prototypes.set_row(class_idx, &mean)?;
        }

        // 2. Query batch with gradient tracking through backbone and FCR.
        let queries = base_train.sample_support(&classes, config.queries_per_class, rng)?;
        let query_labels: Vec<usize> = queries
            .labels
            .iter()
            .map(|l| classes.iter().position(|c| c == l).expect("label comes from classes"))
            .collect();

        let (backbone, fcr, quant) = model.training_parts();
        let theta_a = backbone.forward(&queries.images, Mode::Train)?;
        let theta_a = match &quant {
            Some(q) => q.apply(&theta_a),
            None => theta_a,
        };
        let theta_p = fcr.forward(&theta_a, Mode::Train)?;

        // 3. ReLU-sharpened cosine logits (Eq. 3).
        let raw_logits = cosine_logits(&theta_p, &prototypes)?;
        let sharpened = raw_logits.map(|v| v.max(0.0));

        // 4. Loss and gradient with respect to the sharpened logits.
        let (loss, grad_sharpened) = match config.loss {
            MetaLoss::MultiMargin => multi_margin_loss(&sharpened, &query_labels, config.margin)?,
            MetaLoss::CrossEntropy => cross_entropy(&sharpened, &query_labels)?,
        };
        let query_accuracy = accuracy(&sharpened, &query_labels)?;

        // 5. Backward: through the ReLU sharpening, the cosine similarity and
        //    then the FCR / backbone.
        let grad_raw = grad_sharpened.zip_with(&raw_logits, "relu_mask", |g, raw| {
            if raw > 0.0 {
                g
            } else {
                0.0
            }
        })?;
        let grad_theta_p = cosine_logits_backward(&theta_p, &prototypes, &grad_raw)?;
        let grad_theta_a = fcr.backward(&grad_theta_p)?;
        backbone.backward(&grad_theta_a)?;
        clip_gradient_norm(&mut backbone.net, 5.0);
        clip_gradient_norm(fcr.layer_mut(), 5.0);
        backbone_opt.step(&mut backbone.net);
        fcr_opt.step(fcr.layer_mut());

        iteration_losses.push(loss);
        iteration_accuracies.push(query_accuracy);
    }

    Ok(MetalearnReport { iteration_losses, iteration_accuracies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_data::{FscilBenchmark, FscilConfig};
    use ofscil_nn::models::BackboneKind;

    fn tiny_benchmark() -> FscilBenchmark {
        let mut config = FscilConfig::micro();
        config.synthetic.num_classes = 10;
        config.synthetic.image_size = 12;
        config.num_base_classes = 5;
        config.num_sessions = 2;
        config.base_train_per_class = 12;
        config.test_per_class = 4;
        FscilBenchmark::generate(&config, 1).unwrap()
    }

    #[test]
    fn metalearning_runs_and_reports() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let config = MetalearnConfig { iterations: 8, ..MetalearnConfig::micro() };
        let report = metalearn(&mut model, bench.base_train(), &config, &mut rng).unwrap();
        assert_eq!(report.iteration_losses.len(), 8);
        assert_eq!(report.iteration_accuracies.len(), 8);
        assert!(report.iteration_losses.iter().all(|l| l.is_finite()));
        assert!(report.late_accuracy() >= 0.0);
    }

    #[test]
    fn cross_entropy_variant_runs() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let config = MetalearnConfig {
            iterations: 3,
            ..MetalearnConfig::micro().with_loss(MetaLoss::CrossEntropy)
        };
        let report = metalearn(&mut model, bench.base_train(), &config, &mut rng).unwrap();
        assert_eq!(report.iteration_losses.len(), 3);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(2);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let mut config = MetalearnConfig::micro();
        config.meta_samples_per_class = 0;
        assert!(metalearn(&mut model, bench.base_train(), &config, &mut rng).is_err());
        let empty = Dataset::new(&[3, 12, 12]);
        assert!(metalearn(&mut model, &empty, &MetalearnConfig::micro(), &mut rng).is_err());
        // Requesting more meta-samples than available fails inside sampling.
        let mut config = MetalearnConfig::micro();
        config.meta_samples_per_class = 1000;
        config.iterations = 1;
        assert!(metalearn(&mut model, bench.base_train(), &config, &mut rng).is_err());
    }

    #[test]
    fn empty_report_late_accuracy_is_zero() {
        let report = MetalearnReport { iteration_losses: vec![], iteration_accuracies: vec![] };
        assert_eq!(report.late_accuracy(), 0.0);
    }
}
