//! O-FSCIL: Online Few-Shot Class-Incremental Learning.
//!
//! This crate implements the paper's primary contribution on top of the
//! workspace substrates:
//!
//! * [`Fcr`] — the Fully Connected Reductor projecting backbone features θ_a
//!   (dimension d_a) to prototypical features θ_p (dimension d_p),
//! * [`ExplicitMemory`] — the expandable prototype store queried by cosine
//!   similarity, with optional reduced-precision storage,
//! * [`OFscilModel`] — backbone + FCR + EM, with *online* (single-pass) new
//!   class learning and batch evaluation,
//! * [`pretrain`] — supervised pretraining on the base session with Mixup /
//!   CutMix feature interpolation and the feature-orthogonality regulariser
//!   (paper Eq. 1–2),
//! * [`metalearn`] — episodic metalearning with ReLU-sharpened cosine logits
//!   and the multi-margin loss (paper Eq. 3–4), or cross entropy for the
//!   ablation,
//! * [`finetune_fcr`] — the optional on-device FCR fine-tuning against
//!   bipolarised prototypes (paper §V-B, "Mode 2"),
//! * [`run_fscil_protocol`] — the full FSCIL session evaluator producing the
//!   per-session accuracies of Table II,
//! * [`run_ablation`] — the component toggles of Table III.
//!
//! # Example
//!
//! ```no_run
//! use ofscil_core::{ExperimentConfig, run_experiment};
//!
//! let config = ExperimentConfig::micro(7);
//! let outcome = run_experiment(&config).unwrap();
//! println!("average accuracy: {:.2}%", 100.0 * outcome.sessions.average());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod config;
mod cosine;
mod em;
mod error;
mod experiment;
mod fcr;
mod finetune;
mod metalearn;
mod model;
mod pretrain;
mod session;

pub use ablation::{run_ablation, AblationResult, AblationVariant};
pub use config::{EvalPrecision, ExperimentConfig, MetaLoss, Profile};
pub use em::ExplicitMemory;
pub use error::CoreError;
pub use experiment::{run_experiment, ExperimentOutcome};
pub use fcr::Fcr;
pub use finetune::{finetune_fcr, FinetuneConfig, FinetuneReport};
pub use metalearn::{metalearn, MetalearnConfig, MetalearnReport};
pub use model::OFscilModel;
pub use pretrain::{pretrain, PretrainConfig, PretrainReport};
pub use session::{run_fscil_protocol, SessionResults};

/// Result alias used across the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
