//! Cosine-similarity logits with an explicit backward pass.
//!
//! During metalearning the prototypes are treated as constants within an
//! iteration (they are re-generated from meta-samples every iteration, as in
//! MANN-style explicit memories); gradients flow through the query features
//! only.

use crate::{CoreError, Result};
use ofscil_tensor::{l2_norm, Tensor};

/// Cosine-similarity logits between the rows of `features` (`[batch, d]`) and
/// the rows of `prototypes` (`[classes, d]`), producing `[batch, classes]`.
///
/// # Errors
///
/// Returns an error when the dimensionalities disagree.
pub(crate) fn cosine_logits(features: &Tensor, prototypes: &Tensor) -> Result<Tensor> {
    check_dims(features, prototypes)?;
    let (batch, dim) = (features.dims()[0], features.dims()[1]);
    let classes = prototypes.dims()[0];
    let mut logits = Tensor::zeros(&[batch, classes]);
    for b in 0..batch {
        let f = &features.as_slice()[b * dim..(b + 1) * dim];
        let nf = l2_norm(f).max(1e-12);
        for c in 0..classes {
            let p = &prototypes.as_slice()[c * dim..(c + 1) * dim];
            let np = l2_norm(p).max(1e-12);
            let dot: f32 = f.iter().zip(p).map(|(a, b)| a * b).sum();
            logits.set(&[b, c], dot / (nf * np))?;
        }
    }
    Ok(logits)
}

/// Gradient of a scalar loss with respect to the query features, given the
/// loss gradient with respect to the cosine logits. Prototypes are constants.
///
/// For one feature `f` and prototype `p` with `l = f·p / (|f||p|)`:
/// `∂l/∂f = p / (|f||p|) − l · f / |f|²`.
///
/// # Errors
///
/// Returns an error when shapes disagree.
pub(crate) fn cosine_logits_backward(
    features: &Tensor,
    prototypes: &Tensor,
    grad_logits: &Tensor,
) -> Result<Tensor> {
    check_dims(features, prototypes)?;
    let (batch, dim) = (features.dims()[0], features.dims()[1]);
    let classes = prototypes.dims()[0];
    if grad_logits.dims() != [batch, classes] {
        return Err(CoreError::InvalidConfig(format!(
            "grad_logits shape {:?} does not match [{batch}, {classes}]",
            grad_logits.dims()
        )));
    }
    let mut grad_features = Tensor::zeros(features.dims());
    for b in 0..batch {
        let f = &features.as_slice()[b * dim..(b + 1) * dim];
        let nf = l2_norm(f).max(1e-12);
        for c in 0..classes {
            let g = grad_logits.as_slice()[b * classes + c];
            if g == 0.0 {
                continue;
            }
            let p = &prototypes.as_slice()[c * dim..(c + 1) * dim];
            let np = l2_norm(p).max(1e-12);
            let dot: f32 = f.iter().zip(p).map(|(a, b)| a * b).sum();
            let logit = dot / (nf * np);
            for d in 0..dim {
                let dl_df = p[d] / (nf * np) - logit * f[d] / (nf * nf);
                grad_features.as_mut_slice()[b * dim + d] += g * dl_df;
            }
        }
    }
    Ok(grad_features)
}

fn check_dims(features: &Tensor, prototypes: &Tensor) -> Result<()> {
    if features.dims().len() != 2
        || prototypes.dims().len() != 2
        || features.dims()[1] != prototypes.dims()[1]
    {
        return Err(CoreError::InvalidConfig(format!(
            "cosine logits need [batch, d] features and [classes, d] prototypes, got {:?} and {:?}",
            features.dims(),
            prototypes.dims()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn logits_are_cosines() {
        let features = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let prototypes = Tensor::from_vec(vec![2.0, 0.0, 1.0, 1.0], &[2, 2]).unwrap();
        let logits = cosine_logits(&features, &prototypes).unwrap();
        assert!((logits.at(&[0, 0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((logits.at(&[0, 1]).unwrap() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-5);
        assert!((logits.at(&[1, 0]).unwrap()).abs() < 1e-6);
        assert!(cosine_logits(&features, &Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SeedRng::new(5);
        let features =
            Tensor::from_vec((0..3 * 4).map(|_| rng.normal()).collect(), &[3, 4]).unwrap();
        let prototypes =
            Tensor::from_vec((0..2 * 4).map(|_| rng.normal()).collect(), &[2, 4]).unwrap();
        let upstream =
            Tensor::from_vec((0..3 * 2).map(|_| rng.uniform_range(-1.0, 1.0)).collect(), &[3, 2])
                .unwrap();
        let grad = cosine_logits_backward(&features, &prototypes, &upstream).unwrap();

        let loss = |f: &Tensor| -> f32 {
            cosine_logits(f, &prototypes)
                .unwrap()
                .mul(&upstream)
                .unwrap()
                .sum()
        };
        let eps = 1e-3;
        for idx in 0..features.len() {
            let mut fp = features.clone();
            fp.as_mut_slice()[idx] += eps;
            let mut fm = features.clone();
            fm.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&fp) - loss(&fm)) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} analytic {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn backward_rejects_bad_upstream_shape() {
        let features = Tensor::ones(&[2, 3]);
        let prototypes = Tensor::ones(&[4, 3]);
        let bad = Tensor::ones(&[2, 3]);
        assert!(cosine_logits_backward(&features, &prototypes, &bad).is_err());
    }
}
