//! The FSCIL session evaluator: runs the full incremental protocol and
//! reports per-session accuracies (the columns of Table II).

use crate::{FinetuneConfig, OFscilModel, Result};
use ofscil_data::FscilBenchmark;
use serde::{Deserialize, Serialize};

/// Per-session accuracies of one FSCIL run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResults {
    /// Accuracy after each session, starting with the base session (index 0).
    pub accuracies: Vec<f32>,
}

impl SessionResults {
    /// Accuracy on the base session (session 0).
    pub fn session0(&self) -> f32 {
        self.accuracies.first().copied().unwrap_or(0.0)
    }

    /// Accuracy after the last incremental session.
    pub fn last_session(&self) -> f32 {
        self.accuracies.last().copied().unwrap_or(0.0)
    }

    /// Average accuracy over all sessions (the paper's "Avg." column).
    pub fn average(&self) -> f32 {
        if self.accuracies.is_empty() {
            return 0.0;
        }
        self.accuracies.iter().sum::<f32>() / self.accuracies.len() as f32
    }

    /// Formats the results as a table row: one value per session plus the
    /// average, in percent.
    pub fn to_row(&self) -> String {
        let mut cells: Vec<String> = self
            .accuracies
            .iter()
            .map(|a| format!("{:5.2}", 100.0 * a))
            .collect();
        cells.push(format!("{:5.2}", 100.0 * self.average()));
        cells.join("  ")
    }
}

/// Runs the complete FSCIL protocol with an already pretrained / metalearned
/// model:
///
/// 1. the base classes are written into the explicit memory (one single pass
///    per class over the base training data),
/// 2. the model is evaluated on the test samples of the known classes,
/// 3. every incremental session learns its `ways × shots` support set online
///    (optionally followed by FCR fine-tuning) and is evaluated on all classes
///    seen so far.
///
/// # Errors
///
/// Returns an error when the benchmark and model are incompatible or any
/// evaluation fails.
pub fn run_fscil_protocol(
    model: &mut OFscilModel,
    benchmark: &FscilBenchmark,
    eval_batch_size: usize,
    finetune: Option<&FinetuneConfig>,
) -> Result<SessionResults> {
    let mut accuracies = Vec::with_capacity(benchmark.config().num_sessions + 1);

    // Session 0: populate the explicit memory with the base classes.
    let base_train = benchmark.base_train();
    for class in base_train.classes() {
        let indices = base_train.indices_of_class(class);
        let batch = base_train.batch(&indices)?;
        model.learn_classes_online(&batch)?;
    }
    if let Some(config) = finetune {
        crate::finetune_fcr(model, config)?;
    }
    let test0 = benchmark.test_after_session(0)?;
    accuracies.push(model.evaluate(&test0, eval_batch_size)?);

    // Incremental sessions.
    for session in benchmark.sessions() {
        let support = session.support.full_batch()?;
        model.learn_classes_online(&support)?;
        if let Some(config) = finetune {
            crate::finetune_fcr(model, config)?;
        }
        let test = benchmark.test_after_session(session.index)?;
        accuracies.push(model.evaluate(&test, eval_batch_size)?);
    }

    Ok(SessionResults { accuracies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_data::FscilConfig;
    use ofscil_nn::models::BackboneKind;
    use ofscil_tensor::SeedRng;

    fn tiny_benchmark() -> FscilBenchmark {
        let mut config = FscilConfig::micro();
        config.synthetic.num_classes = 12;
        config.synthetic.image_size = 12;
        config.num_base_classes = 6;
        config.num_sessions = 3;
        config.ways = 2;
        config.base_train_per_class = 8;
        config.test_per_class = 4;
        FscilBenchmark::generate(&config, 2).unwrap()
    }

    #[test]
    fn protocol_produces_one_accuracy_per_session() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let results = run_fscil_protocol(&mut model, &bench, 16, None).unwrap();
        assert_eq!(results.accuracies.len(), 4);
        assert!(results.accuracies.iter().all(|a| (0.0..=1.0).contains(a)));
        // After the protocol every class has a prototype.
        assert_eq!(model.em().num_classes(), bench.config().total_classes());
        // Accuracy must beat random guessing over 12 classes even without any
        // pretraining, because the synthetic classes are colour/texture coded.
        assert!(results.last_session() > 1.0 / 12.0);
        assert!(results.average() > 0.0);
        let row = results.to_row();
        assert_eq!(row.split_whitespace().count(), 5);
    }

    #[test]
    fn finetuning_variant_runs() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let ft = FinetuneConfig { epochs: 2, ..FinetuneConfig::micro() };
        let results = run_fscil_protocol(&mut model, &bench, 16, Some(&ft)).unwrap();
        assert_eq!(results.accuracies.len(), 4);
    }

    #[test]
    fn empty_results_are_safe() {
        let results = SessionResults { accuracies: vec![] };
        assert_eq!(results.average(), 0.0);
        assert_eq!(results.session0(), 0.0);
        assert_eq!(results.last_session(), 0.0);
    }
}
