//! The Fully Connected Reductor (FCR).

use crate::Result;
use ofscil_nn::layers::Linear;
use ofscil_nn::{Layer, Mode};
use ofscil_tensor::{SeedRng, Tensor};

/// The Fully Connected Reductor: a single linear projection from backbone
/// features θ_a ∈ R^{d_a} to prototypical features θ_p ∈ R^{d_p} with
/// d_p < d_a (paper §IV).
///
/// The FCR is trained during pretraining and metalearning, frozen during
/// online class learning, and optionally fine-tuned on device against
/// bipolarised prototypes (§V-B).
#[derive(Debug)]
pub struct Fcr {
    linear: Linear,
}

impl Fcr {
    /// Creates an FCR projecting `feature_dim` (d_a) to `projection_dim` (d_p).
    pub fn new(feature_dim: usize, projection_dim: usize, rng: &mut SeedRng) -> Self {
        Fcr { linear: Linear::new(feature_dim, projection_dim, true, rng) }
    }

    /// Input dimensionality d_a.
    pub fn feature_dim(&self) -> usize {
        self.linear.in_features()
    }

    /// Output dimensionality d_p.
    pub fn projection_dim(&self) -> usize {
        self.linear.out_features()
    }

    /// Projects a batch of backbone features `[batch, d_a]` to `[batch, d_p]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input width is not d_a.
    pub fn forward(&mut self, features: &Tensor, mode: Mode) -> Result<Tensor> {
        Ok(self.linear.forward(features, mode)?)
    }

    /// Backpropagates through the projection (training-mode forward required).
    ///
    /// # Errors
    ///
    /// Returns an error when no forward pass was cached.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        Ok(self.linear.backward(grad)?)
    }

    /// Access to the underlying layer (for optimizers and quantization).
    pub fn layer_mut(&mut self) -> &mut dyn Layer {
        &mut self.linear
    }

    /// Number of trainable parameters.
    pub fn param_count(&mut self) -> u64 {
        self.linear.param_count()
    }

    /// Number of MACs for one sample.
    pub fn macs(&self) -> u64 {
        (self.feature_dim() * self.projection_dim()) as u64
    }

    /// Freezes or unfreezes the FCR parameters.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.linear.set_trainable(trainable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_to_lower_dimension() {
        let mut rng = SeedRng::new(0);
        let mut fcr = Fcr::new(64, 16, &mut rng);
        assert_eq!(fcr.feature_dim(), 64);
        assert_eq!(fcr.projection_dim(), 16);
        let x = Tensor::ones(&[3, 64]);
        let y = fcr.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 16]);
        assert!(fcr.forward(&Tensor::ones(&[3, 32]), Mode::Eval).is_err());
        assert_eq!(fcr.macs(), 1024);
        assert_eq!(fcr.param_count(), 64 * 16 + 16);
    }

    #[test]
    fn backward_needs_training_forward() {
        let mut rng = SeedRng::new(1);
        let mut fcr = Fcr::new(8, 4, &mut rng);
        assert!(fcr.backward(&Tensor::ones(&[1, 4])).is_err());
        let x = Tensor::ones(&[2, 8]);
        fcr.forward(&x, Mode::Train).unwrap();
        let g = fcr.backward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(g.dims(), &[2, 8]);
    }

    #[test]
    fn freezing_stops_updates() {
        let mut rng = SeedRng::new(2);
        let mut fcr = Fcr::new(8, 4, &mut rng);
        fcr.set_trainable(false);
        let mut trainable = 0;
        fcr.layer_mut().visit_params(&mut |p| {
            if p.trainable {
                trainable += 1;
            }
        });
        assert_eq!(trainable, 0);
    }
}
