//! Runs a baseline head through the same FSCIL session schedule as the core
//! evaluator.

use crate::{BaselineHead, FeatureSpace, Result};
use ofscil_core::{OFscilModel, SessionResults};
use ofscil_data::{Dataset, FscilBenchmark};
use ofscil_nn::Mode;
use ofscil_tensor::Tensor;

/// Runs the FSCIL protocol with a baseline head on top of the shared
/// backbone / FCR feature extractor of `model`.
///
/// The schedule is identical to [`ofscil_core::run_fscil_protocol`]: the base
/// classes are learned from the full base-session data, each incremental
/// session provides only its few-shot support set, and after every session
/// the head is evaluated on the test samples of all classes seen so far.
///
/// # Errors
///
/// Returns an error when feature extraction or the head fails.
pub fn run_baseline_protocol(
    model: &mut OFscilModel,
    benchmark: &FscilBenchmark,
    head: &mut dyn BaselineHead,
    space: FeatureSpace,
    eval_batch_size: usize,
) -> Result<SessionResults> {
    let mut accuracies = Vec::with_capacity(benchmark.config().num_sessions + 1);

    // Base session: presented to the head as a single labeled batch, so heads
    // that fit a joint alignment over all base classes (e.g. the ETF head's
    // ridge regression) see the whole session at once. Features are extracted
    // in chunks to bound peak memory.
    let base_train = benchmark.base_train();
    {
        let indices: Vec<usize> = (0..base_train.len()).collect();
        let dim = match space {
            FeatureSpace::Backbone => {
                // Probe the backbone feature dimensionality from one sample.
                let probe = base_train.batch(&indices[..1])?;
                extract(model, &probe.images, space)?.dims()[1]
            }
            FeatureSpace::Projected => model.projection_dim(),
        };
        let mut features = Tensor::zeros(&[base_train.len(), dim]);
        let mut labels = Vec::with_capacity(base_train.len());
        for chunk in indices.chunks(eval_batch_size.max(1)) {
            let batch = base_train.batch(chunk)?;
            let chunk_features = extract(model, &batch.images, space)?;
            for (offset, row) in chunk.iter().enumerate() {
                features.set_row(*row, chunk_features.row(offset)?)?;
            }
            labels.extend(batch.labels);
        }
        // Rows were written by index, so labels must follow the same order.
        let mut ordered_labels = vec![0usize; base_train.len()];
        for (position, &index) in indices.iter().enumerate() {
            ordered_labels[index] = labels[position];
        }
        head.learn_classes(&features, &ordered_labels)?;
    }
    accuracies.push(evaluate(model, &benchmark.test_after_session(0)?, head, space, eval_batch_size)?);

    // Incremental sessions.
    for session in benchmark.sessions() {
        let support = session.support.full_batch()?;
        let features = extract(model, &support.images, space)?;
        head.learn_classes(&features, &support.labels)?;
        let test = benchmark.test_after_session(session.index)?;
        accuracies.push(evaluate(model, &test, head, space, eval_batch_size)?);
    }

    Ok(SessionResults { accuracies })
}

fn extract(model: &mut OFscilModel, images: &Tensor, space: FeatureSpace) -> Result<Tensor> {
    match space {
        FeatureSpace::Backbone => model.extract_backbone_features(images, Mode::Eval),
        FeatureSpace::Projected => model.extract_features(images, Mode::Eval),
    }
}

fn evaluate(
    model: &mut OFscilModel,
    dataset: &Dataset,
    head: &dyn BaselineHead,
    space: FeatureSpace,
    batch_size: usize,
) -> Result<f32> {
    let indices: Vec<usize> = (0..dataset.len()).collect();
    let mut correct = 0usize;
    for chunk in indices.chunks(batch_size.max(1)) {
        let batch = dataset.batch(chunk)?;
        let features = extract(model, &batch.images, space)?;
        let predictions = head.predict(&features)?;
        correct += predictions
            .iter()
            .zip(&batch.labels)
            .filter(|(p, l)| p == l)
            .count();
    }
    Ok(correct as f32 / dataset.len().max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EtfHead, NearestClassMean, SimilarityMetric};
    use ofscil_data::FscilConfig;
    use ofscil_nn::models::BackboneKind;
    use ofscil_tensor::SeedRng;

    fn tiny_benchmark() -> FscilBenchmark {
        let mut config = FscilConfig::micro();
        config.synthetic.num_classes = 10;
        config.synthetic.image_size = 12;
        config.num_base_classes = 6;
        config.num_sessions = 2;
        config.ways = 2;
        config.base_train_per_class = 8;
        config.test_per_class = 4;
        FscilBenchmark::generate(&config, 5).unwrap()
    }

    #[test]
    fn ncm_baseline_runs_full_protocol() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(0);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let mut head = NearestClassMean::new(SimilarityMetric::Cosine);
        let results =
            run_baseline_protocol(&mut model, &bench, &mut head, FeatureSpace::Backbone, 16)
                .unwrap();
        assert_eq!(results.accuracies.len(), 3);
        assert_eq!(head.num_classes(), 10);
        assert!(results.last_session() > 1.0 / 10.0);
    }

    #[test]
    fn etf_baseline_runs_on_projected_features() {
        let bench = tiny_benchmark();
        let mut rng = SeedRng::new(1);
        let mut model = OFscilModel::new(BackboneKind::Micro, 16, &mut rng);
        let mut head = EtfHead::new(16, 10, 3);
        let results =
            run_baseline_protocol(&mut model, &bench, &mut head, FeatureSpace::Projected, 16)
                .unwrap();
        assert_eq!(results.accuracies.len(), 3);
        assert_eq!(head.num_classes(), 10);
        assert!(results.accuracies.iter().all(|a| (0.0..=1.0).contains(a)));
    }
}
