//! Baseline FSCIL classifier heads used for the Table II comparison.
//!
//! The published baselines (C-FSCIL, NC-FSCIL, SAVC, ALICE, LIMIT, MetaFSCIL)
//! cannot be re-run offline, so this crate re-implements the *classifier /
//! memory side* of the most relevant families on top of the same backbone,
//! FCR and data protocol used by O-FSCIL:
//!
//! * [`NearestClassMean`] — prototype averaging with cosine or Euclidean
//!   matching (the classical NCM / ProtoNet head; also C-FSCIL "mode 1" when
//!   run on FCR features),
//! * [`EtfHead`] — an NC-FSCIL-style head: class targets are fixed,
//!   pre-assigned equiangular (simplex-ETF-like) directions and a ridge
//!   regression aligns the base-session features to them; incremental classes
//!   are assigned the next free target without any retraining,
//! * [`run_baseline_protocol`] — runs any [`BaselineHead`] through the same
//!   FSCIL session schedule as the core evaluator, producing per-session
//!   accuracies comparable with O-FSCIL's.
//!
//! # Example
//!
//! ```no_run
//! use ofscil_baselines::{run_baseline_protocol, FeatureSpace, NearestClassMean, SimilarityMetric};
//! use ofscil_core::{ExperimentConfig, OFscilModel};
//! use ofscil_data::FscilBenchmark;
//! use ofscil_tensor::SeedRng;
//!
//! let config = ExperimentConfig::micro(0);
//! let benchmark = FscilBenchmark::generate(&config.fscil, 0).unwrap();
//! let mut rng = SeedRng::new(0);
//! let mut model = OFscilModel::new(config.backbone, config.projection_dim, &mut rng);
//! let mut head = NearestClassMean::new(SimilarityMetric::Cosine);
//! let results = run_baseline_protocol(
//!     &mut model, &benchmark, &mut head, FeatureSpace::Backbone, 32,
//! ).unwrap();
//! println!("{}", results.to_row());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod etf;
mod head;
mod ncm;
mod protocol;
mod ridge;

pub use etf::EtfHead;
pub use head::{BaselineHead, FeatureSpace, SimilarityMetric};
pub use ncm::NearestClassMean;
pub use protocol::run_baseline_protocol;
pub use ridge::ridge_regression;

/// Result alias used across the baselines crate.
pub type Result<T> = std::result::Result<T, ofscil_core::CoreError>;
