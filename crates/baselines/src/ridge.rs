//! Small dense ridge-regression solver used by the ETF head.

use crate::Result;
use ofscil_core::CoreError;
use ofscil_tensor::Tensor;

/// Solves the ridge regression `W = argmin ||X·W − Y||² + λ||W||²` for dense
/// matrices `X` (`[n, d]`) and `Y` (`[n, k]`), returning `W` (`[d, k]`).
///
/// The normal equations `(XᵀX + λI) W = Xᵀ Y` are solved by Gaussian
/// elimination with partial pivoting; the feature dimension `d` is small
/// (tens to a few hundred) in every use inside this workspace.
///
/// # Errors
///
/// Returns an error when the shapes disagree or the system is singular even
/// after regularisation.
pub fn ridge_regression(x: &Tensor, y: &Tensor, lambda: f32) -> Result<Tensor> {
    if x.dims().len() != 2 || y.dims().len() != 2 || x.dims()[0] != y.dims()[0] {
        return Err(CoreError::InvalidConfig(format!(
            "ridge regression needs aligned [n, d] and [n, k] matrices, got {:?} and {:?}",
            x.dims(),
            y.dims()
        )));
    }
    if lambda < 0.0 {
        return Err(CoreError::InvalidConfig("lambda must be non-negative".into()));
    }
    let d = x.dims()[1];
    let k = y.dims()[1];
    let xt = x.transpose().map_err(CoreError::Tensor)?;
    let mut gram = xt.matmul(x).map_err(CoreError::Tensor)?;
    for i in 0..d {
        let idx = i * d + i;
        gram.as_mut_slice()[idx] += lambda.max(1e-8);
    }
    let rhs = xt.matmul(y).map_err(CoreError::Tensor)?;

    // Gaussian elimination with partial pivoting on the augmented system.
    let mut a = gram.as_slice().to_vec();
    let mut b = rhs.as_slice().to_vec();
    for col in 0..d {
        // Pivot selection.
        let mut pivot = col;
        for row in col + 1..d {
            if a[row * d + col].abs() > a[pivot * d + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * d + col].abs() < 1e-12 {
            return Err(CoreError::InvalidConfig(
                "ridge regression system is singular".into(),
            ));
        }
        if pivot != col {
            for j in 0..d {
                a.swap(col * d + j, pivot * d + j);
            }
            for j in 0..k {
                b.swap(col * k + j, pivot * k + j);
            }
        }
        // Eliminate below.
        let pivot_value = a[col * d + col];
        for row in col + 1..d {
            let factor = a[row * d + col] / pivot_value;
            if factor == 0.0 {
                continue;
            }
            for j in col..d {
                a[row * d + j] -= factor * a[col * d + j];
            }
            for j in 0..k {
                b[row * k + j] -= factor * b[col * k + j];
            }
        }
    }
    // Back substitution.
    let mut w = vec![0.0f32; d * k];
    for col in (0..d).rev() {
        for j in 0..k {
            let mut acc = b[col * k + j];
            for other in col + 1..d {
                acc -= a[col * d + other] * w[other * k + j];
            }
            w[col * k + j] = acc / a[col * d + col];
        }
    }
    Tensor::from_vec(w, &[d, k]).map_err(CoreError::Tensor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn recovers_exact_linear_map_without_regularisation() {
        let mut rng = SeedRng::new(0);
        let x = Tensor::from_vec((0..20 * 4).map(|_| rng.normal()).collect(), &[20, 4]).unwrap();
        let w_true =
            Tensor::from_vec((0..4 * 3).map(|_| rng.normal()).collect(), &[4, 3]).unwrap();
        let y = x.matmul(&w_true).unwrap();
        let w = ridge_regression(&x, &y, 0.0).unwrap();
        assert!(w.max_abs_diff(&w_true).unwrap() < 1e-2);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let mut rng = SeedRng::new(1);
        let x = Tensor::from_vec((0..30 * 5).map(|_| rng.normal()).collect(), &[30, 5]).unwrap();
        let y = Tensor::from_vec((0..30 * 2).map(|_| rng.normal()).collect(), &[30, 2]).unwrap();
        let w0 = ridge_regression(&x, &y, 1e-6).unwrap();
        let w1 = ridge_regression(&x, &y, 100.0).unwrap();
        assert!(w1.norm() < w0.norm());
    }

    #[test]
    fn shape_and_lambda_validation() {
        let x = Tensor::ones(&[4, 2]);
        let y = Tensor::ones(&[3, 2]);
        assert!(ridge_regression(&x, &y, 0.1).is_err());
        let y = Tensor::ones(&[4, 2]);
        assert!(ridge_regression(&x, &y, -1.0).is_err());
    }

    #[test]
    fn handles_rank_deficient_inputs_with_regularisation() {
        // Duplicate column makes XᵀX singular; ridge must still solve.
        let x = Tensor::from_vec(vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[3, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
        let w = ridge_regression(&x, &y, 0.1).unwrap();
        assert!(w.all_finite());
    }
}
