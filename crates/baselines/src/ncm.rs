//! Nearest-class-mean prototype head.

use crate::{BaselineHead, Result, SimilarityMetric};
use ofscil_core::CoreError;
use ofscil_tensor::{cosine_similarity, Tensor};
use std::collections::BTreeMap;

/// Nearest-class-mean classifier: one mean feature vector per class, queries
/// matched by cosine similarity or (negative) Euclidean distance.
///
/// Run on backbone features this is the classical NCM/ProtoNet baseline; run
/// on FCR features with cosine matching it reproduces the behaviour of
/// C-FSCIL mode 1 (frozen backbone, averaged prototypes, no extra training).
#[derive(Debug, Clone)]
pub struct NearestClassMean {
    metric: SimilarityMetric,
    prototypes: BTreeMap<usize, Vec<f32>>,
}

impl NearestClassMean {
    /// Creates an empty head with the given similarity metric.
    pub fn new(metric: SimilarityMetric) -> Self {
        NearestClassMean { metric, prototypes: BTreeMap::new() }
    }

    /// The similarity metric in use.
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    fn score(&self, query: &[f32], prototype: &[f32]) -> Result<f32> {
        match self.metric {
            SimilarityMetric::Cosine => {
                cosine_similarity(query, prototype).map_err(CoreError::Tensor)
            }
            SimilarityMetric::Euclidean => Ok(-query
                .iter()
                .zip(prototype)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()),
        }
    }
}

impl BaselineHead for NearestClassMean {
    fn name(&self) -> String {
        match self.metric {
            SimilarityMetric::Cosine => "NCM (cosine)".into(),
            SimilarityMetric::Euclidean => "NCM (euclidean)".into(),
        }
    }

    fn learn_classes(&mut self, features: &Tensor, labels: &[usize]) -> Result<()> {
        if features.dims().len() != 2 || features.dims()[0] != labels.len() {
            return Err(CoreError::InvalidConfig(format!(
                "features {:?} incompatible with {} labels",
                features.dims(),
                labels.len()
            )));
        }
        let dim = features.dims()[1];
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        for class in classes {
            let rows: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == class)
                .map(|(i, _)| i)
                .collect();
            let mut mean = vec![0.0f32; dim];
            for &r in &rows {
                for (m, &v) in mean.iter_mut().zip(&features.as_slice()[r * dim..(r + 1) * dim]) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= rows.len() as f32;
            }
            self.prototypes.insert(class, mean);
        }
        Ok(())
    }

    fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        if self.prototypes.is_empty() {
            return Err(CoreError::InvalidConfig("no classes learned yet".into()));
        }
        let dim = features.dims()[1];
        let mut predictions = Vec::with_capacity(features.dims()[0]);
        for row in 0..features.dims()[0] {
            let query = &features.as_slice()[row * dim..(row + 1) * dim];
            let mut best_class = 0usize;
            let mut best_score = f32::NEG_INFINITY;
            for (&class, prototype) in &self.prototypes {
                let score = self.score(query, prototype)?;
                if score > best_score {
                    best_score = score;
                    best_class = class;
                }
            }
            predictions.push(best_class);
        }
        Ok(predictions)
    }

    fn num_classes(&self) -> usize {
        self.prototypes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_features() -> (Tensor, Vec<usize>) {
        let features = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, //
                0.9, 0.1, 0.0, //
                0.0, 1.0, 0.0, //
                0.1, 0.9, 0.0, //
            ],
            &[4, 3],
        )
        .unwrap();
        (features, vec![0, 0, 7, 7])
    }

    #[test]
    fn learns_means_and_classifies() {
        for metric in [SimilarityMetric::Cosine, SimilarityMetric::Euclidean] {
            let (features, labels) = toy_features();
            let mut head = NearestClassMean::new(metric);
            head.learn_classes(&features, &labels).unwrap();
            assert_eq!(head.num_classes(), 2);
            let queries =
                Tensor::from_vec(vec![0.95, 0.05, 0.0, 0.0, 0.8, 0.1], &[2, 3]).unwrap();
            assert_eq!(head.predict(&queries).unwrap(), vec![0, 7]);
        }
    }

    #[test]
    fn incremental_classes_extend_the_head() {
        let (features, labels) = toy_features();
        let mut head = NearestClassMean::new(SimilarityMetric::Cosine);
        head.learn_classes(&features, &labels).unwrap();
        let new = Tensor::from_vec(vec![0.0, 0.0, 1.0], &[1, 3]).unwrap();
        head.learn_classes(&new, &[3]).unwrap();
        assert_eq!(head.num_classes(), 3);
        let query = Tensor::from_vec(vec![0.0, 0.1, 0.9], &[1, 3]).unwrap();
        assert_eq!(head.predict(&query).unwrap(), vec![3]);
    }

    #[test]
    fn errors_on_mismatch_and_empty() {
        let mut head = NearestClassMean::new(SimilarityMetric::Cosine);
        assert!(head.learn_classes(&Tensor::ones(&[2, 3]), &[0]).is_err());
        assert!(head.predict(&Tensor::ones(&[1, 3])).is_err());
        assert!(head.name().contains("NCM"));
    }
}
