//! NC-FSCIL-style head: fixed equiangular class targets plus a ridge-learned
//! feature alignment.

use crate::{ridge_regression, BaselineHead, Result};
use ofscil_core::CoreError;
use ofscil_tensor::{cosine_similarity, l2_norm, SeedRng, Tensor};
use std::collections::BTreeMap;

/// An NC-FSCIL-inspired head.
///
/// Every class (base or incremental) is pre-assigned a fixed target direction
/// drawn from a near-equiangular frame, mirroring NC-FSCIL's neural-collapse
/// placeholder prototypes. The base session fits a linear alignment from
/// features to their class targets by ridge regression; incremental sessions
/// only *assign* the next free target — no parameter changes — so adding
/// classes never perturbs previously learned ones.
#[derive(Debug, Clone)]
pub struct EtfHead {
    feature_dim: usize,
    targets: Vec<Vec<f32>>,
    assigned: BTreeMap<usize, usize>,
    alignment: Option<Tensor>,
    ridge_lambda: f32,
}

impl EtfHead {
    /// Creates a head for features of `feature_dim` dimensions with capacity
    /// for `max_classes` classes.
    pub fn new(feature_dim: usize, max_classes: usize, seed: u64) -> Self {
        EtfHead {
            feature_dim,
            targets: equiangular_targets(max_classes, feature_dim, seed),
            assigned: BTreeMap::new(),
            alignment: None,
            ridge_lambda: 1.0,
        }
    }

    /// The maximum number of classes the pre-assigned frame supports.
    pub fn capacity(&self) -> usize {
        self.targets.len()
    }

    /// Fits the base-session alignment: ridge regression from the given
    /// features to the targets of their (newly assigned) classes.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes disagree or the capacity is exceeded.
    pub fn fit_base(&mut self, features: &Tensor, labels: &[usize]) -> Result<()> {
        self.assign_classes(labels)?;
        let dim = self.check_features(features, labels)?;
        let mut target_matrix = Tensor::zeros(&[labels.len(), self.feature_dim_targets()]);
        for (row, label) in labels.iter().enumerate() {
            let slot = self.assigned[label];
            target_matrix.set_row(row, &self.targets[slot]).map_err(CoreError::Tensor)?;
        }
        debug_assert_eq!(dim, self.feature_dim);
        self.alignment = Some(ridge_regression(features, &target_matrix, self.ridge_lambda)?);
        Ok(())
    }

    fn feature_dim_targets(&self) -> usize {
        self.targets.first().map_or(0, Vec::len)
    }

    fn assign_classes(&mut self, labels: &[usize]) -> Result<()> {
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        for class in classes {
            if self.assigned.contains_key(&class) {
                continue;
            }
            let next = self.assigned.len();
            if next >= self.targets.len() {
                return Err(CoreError::InvalidConfig(format!(
                    "ETF head capacity {} exceeded",
                    self.targets.len()
                )));
            }
            self.assigned.insert(class, next);
        }
        Ok(())
    }

    fn check_features(&self, features: &Tensor, labels: &[usize]) -> Result<usize> {
        if features.dims().len() != 2
            || features.dims()[0] != labels.len()
            || features.dims()[1] != self.feature_dim
        {
            return Err(CoreError::InvalidConfig(format!(
                "expected [{}, {}] features, got {:?}",
                labels.len(),
                self.feature_dim,
                features.dims()
            )));
        }
        Ok(features.dims()[1])
    }

    fn align(&self, features: &Tensor) -> Result<Tensor> {
        match &self.alignment {
            Some(w) => features.matmul(w).map_err(CoreError::Tensor),
            None => Ok(features.clone()),
        }
    }
}

impl BaselineHead for EtfHead {
    fn name(&self) -> String {
        "ETF head (NC-FSCIL-style)".into()
    }

    fn learn_classes(&mut self, features: &Tensor, labels: &[usize]) -> Result<()> {
        self.check_features(features, labels)?;
        if self.alignment.is_none() {
            // First call defines the base session: fit the alignment.
            return self.fit_base(features, labels);
        }
        // Incremental sessions only assign targets to the new classes.
        self.assign_classes(labels)
    }

    fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        if self.assigned.is_empty() {
            return Err(CoreError::InvalidConfig("no classes learned yet".into()));
        }
        let aligned = self.align(features)?;
        let dim = aligned.dims()[1];
        let mut predictions = Vec::with_capacity(aligned.dims()[0]);
        for row in 0..aligned.dims()[0] {
            let query = &aligned.as_slice()[row * dim..(row + 1) * dim];
            let mut best_class = 0usize;
            let mut best_score = f32::NEG_INFINITY;
            for (&class, &slot) in &self.assigned {
                let score =
                    cosine_similarity(query, &self.targets[slot]).map_err(CoreError::Tensor)?;
                if score > best_score {
                    best_score = score;
                    best_class = class;
                }
            }
            predictions.push(best_class);
        }
        Ok(predictions)
    }

    fn num_classes(&self) -> usize {
        self.assigned.len()
    }
}

/// Generates `count` unit-norm target directions in `dim` dimensions that are
/// as mutually equiangular as cheaply possible: random Gaussian directions
/// followed by a few rounds of pairwise repulsion. For `count <= dim` the
/// result is close to orthonormal, mirroring the neural-collapse simplex ETF.
fn equiangular_targets(count: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeedRng::new(seed ^ 0xE7F0);
    let mut targets: Vec<Vec<f32>> = (0..count)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
            let n = l2_norm(&v).max(1e-12);
            v.iter_mut().for_each(|x| *x /= n);
            v
        })
        .collect();
    // Repulsion rounds: push each vector away from its most-aligned peer.
    for _ in 0..20 {
        for i in 0..count {
            let mut worst = None;
            let mut worst_cos = -1.0f32;
            for j in 0..count {
                if i == j {
                    continue;
                }
                let cos: f32 = targets[i].iter().zip(&targets[j]).map(|(a, b)| a * b).sum();
                if cos > worst_cos {
                    worst_cos = cos;
                    worst = Some(j);
                }
            }
            if let Some(j) = worst {
                let other = targets[j].clone();
                let step = 0.1;
                for (a, b) in targets[i].iter_mut().zip(&other) {
                    *a -= step * worst_cos.max(0.0) * b;
                }
                let n = l2_norm(&targets[i]).max(1e-12);
                targets[i].iter_mut().for_each(|x| *x /= n);
            }
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn targets_are_unit_norm_and_spread() {
        let targets = equiangular_targets(10, 16, 3);
        assert_eq!(targets.len(), 10);
        for t in &targets {
            assert!((l2_norm(t) - 1.0).abs() < 1e-4);
        }
        // Average pairwise |cos| stays small when count <= dim.
        let mut total = 0.0f32;
        let mut pairs = 0;
        for i in 0..10 {
            for j in i + 1..10 {
                total += targets[i]
                    .iter()
                    .zip(&targets[j])
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    .abs();
                pairs += 1;
            }
        }
        assert!((total / pairs as f32) < 0.35);
    }

    #[test]
    fn base_fit_plus_incremental_assignment() {
        let mut rng = SeedRng::new(0);
        // Three Gaussian clusters in 8 dimensions.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let centres = [
            [2.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        for (class, centre) in centres.iter().enumerate() {
            for _ in 0..10 {
                for &c in centre {
                    features.push(c + 0.2 * rng.normal());
                }
                labels.push(class);
            }
        }
        let features = Tensor::from_vec(features, &[30, 8]).unwrap();
        let mut head = EtfHead::new(8, 10, 1);
        head.learn_classes(&features, &labels).unwrap();
        assert_eq!(head.num_classes(), 3);

        // Queries from the known classes are classified correctly.
        let queries = Tensor::from_vec(
            vec![
                2.1, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, //
                0.0, 0.0, 1.9, 0.1, 0.0, 0.0, 0.0, 0.0,
            ],
            &[2, 8],
        )
        .unwrap();
        assert_eq!(head.predict(&queries).unwrap(), vec![0, 2]);

        // An incremental class is assigned a fresh target without refitting.
        let novel = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 8],
        )
        .unwrap();
        head.learn_classes(&novel, &[7]).unwrap();
        assert_eq!(head.num_classes(), 4);
    }

    #[test]
    fn capacity_and_shape_errors() {
        let mut head = EtfHead::new(4, 2, 0);
        assert_eq!(head.capacity(), 2);
        // Prediction before any class is learned fails.
        assert!(head.predict(&Tensor::ones(&[1, 4])).is_err());
        let features = Tensor::ones(&[3, 4]);
        // More classes than the pre-assigned frame supports.
        assert!(head.learn_classes(&features, &[0, 1, 2]).is_err());
        // Wrong feature dimensionality.
        assert!(head.learn_classes(&Tensor::ones(&[2, 5]), &[0, 1]).is_err());
    }
}
