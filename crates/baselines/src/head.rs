//! The common interface of baseline classifier heads.

use crate::Result;
use ofscil_tensor::Tensor;

/// Which feature space a baseline head consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSpace {
    /// Raw backbone features θ_a (dimension d_a).
    Backbone,
    /// FCR-projected features θ_p (dimension d_p) — the space O-FSCIL uses.
    Projected,
}

/// Similarity metric used by prototype-based heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityMetric {
    /// Cosine similarity (angle only).
    Cosine,
    /// Negative squared Euclidean distance.
    Euclidean,
}

/// A baseline classification head: learns classes from labeled feature
/// batches and predicts labels for query features.
///
/// Heads never see images — the shared backbone/FCR produce the features —
/// so every method is compared on identical representations.
pub trait BaselineHead: Send {
    /// Human-readable method name (used in the Table II rows).
    fn name(&self) -> String;

    /// Learns (or re-learns) the classes present in the labeled batch.
    ///
    /// # Errors
    ///
    /// Returns an error when the features and labels disagree in length or a
    /// head-specific capacity is exceeded.
    fn learn_classes(&mut self, features: &Tensor, labels: &[usize]) -> Result<()>;

    /// Predicts a class for every row of `features`.
    ///
    /// # Errors
    ///
    /// Returns an error when no class has been learned yet.
    fn predict(&self, features: &Tensor) -> Result<Vec<usize>>;

    /// Number of classes currently known to the head.
    fn num_classes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enums_are_compact_and_distinct() {
        assert_ne!(FeatureSpace::Backbone, FeatureSpace::Projected);
        assert_ne!(SimilarityMetric::Cosine, SimilarityMetric::Euclidean);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_h: &mut dyn BaselineHead) {}
    }
}
