//! O-FSCIL — Online Few-Shot Class-Incremental Learning, reproduced in Rust.
//!
//! This facade crate re-exports the whole workspace behind a single
//! dependency and provides a [`prelude`] with the types most applications
//! need. See the individual crates for the full APIs:
//!
//! * [`tensor`] — dense tensor math, RNG, initialisers,
//! * [`nn`] — the layer-wise training engine, backbones, losses, optimizers,
//! * [`quant`] — int8 quantization and explicit-memory precision reduction,
//! * [`data`] — the synthetic CIFAR100-like dataset and the FSCIL protocol,
//! * [`core`] — the O-FSCIL method itself (FCR, explicit memory, pretraining,
//!   metalearning, online learning, fine-tuning, the session evaluator),
//! * [`baselines`] — comparison classifier heads,
//! * [`gap9`] — the GAP9-class MCU deployment and energy model (the crate's
//!   module docs walk through the full latency/power/energy pipeline and its
//!   calibration),
//! * [`obs`] — the columnar time-series event store for cluster
//!   observability: non-blocking event sinks on the serving hot path,
//!   chunked time-sorted storage with a byte budget, per-minute rollups
//!   that remember what GC forgot, and range/aggregate timeline queries
//!   (raw, rollup or auto resolution) that merge across shards,
//! * [`serve`] — the multi-tenant serving runtime: request batching,
//!   energy-budget admission and explicit-memory snapshots for long-lived
//!   deployments,
//! * [`store`] — the durable WAL + checkpoint store: per-deployment
//!   write-ahead logs with delta compaction, full-snapshot checkpoints,
//!   bit-exact crash recovery and the bootstrap path follower promotion
//!   rides on,
//! * [`wire`] — cross-process serving: the checksummed binary wire protocol,
//!   the blocking TCP / Unix-socket server and client, and the
//!   snapshot-replicated read-only follower mode,
//! * [`router`] — consistent-hash sharding for multi-process deployments:
//!   one client-facing wire address in front of N backend serving
//!   processes, with pooled connections, shard health probing,
//!   scatter-gather cluster statistics and live explicit-memory migration
//!   between shards,
//! * [`ctrl`] — the self-driving control plane above the router: a
//!   deterministic, tick-driven loop that watches breaker dwell times,
//!   advertised followers and trailing request rates, and auto-heals
//!   (follower promotion, store restart) and auto-rebalances (hot
//!   deployment migration) with hysteresis, cooldowns and bounded retries —
//!   no operator calls.
//!
//! # Quickstart
//!
//! ```no_run
//! use ofscil::prelude::*;
//!
//! // Pretrain + metalearn a micro backbone, then run the incremental
//! // protocol, evaluating after every session.
//! let config = ExperimentConfig::micro(42);
//! let outcome = run_experiment(&config).unwrap();
//! println!("per-session accuracy: {}", outcome.sessions.to_row());
//!
//! // Estimate what one FCR inference costs on the MCU model.
//! let executor = Gap9Executor::new(Gap9Config::default());
//! let cost = executor.fcr_inference(1280, 256, 8).unwrap();
//! println!("FCR inference: {:.2} ms, {:.2} mJ", cost.time_ms, cost.energy_mj);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ofscil_baselines as baselines;
pub use ofscil_core as core;
pub use ofscil_ctrl as ctrl;
pub use ofscil_data as data;
pub use ofscil_gap9 as gap9;
pub use ofscil_nn as nn;
pub use ofscil_obs as obs;
pub use ofscil_quant as quant;
pub use ofscil_router as router;
pub use ofscil_serve as serve;
pub use ofscil_store as store;
pub use ofscil_tensor as tensor;
pub use ofscil_wire as wire;

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use ofscil_baselines::{
        run_baseline_protocol, BaselineHead, EtfHead, FeatureSpace, NearestClassMean,
        SimilarityMetric,
    };
    pub use ofscil_core::{
        finetune_fcr, metalearn, pretrain, run_ablation, run_experiment, run_fscil_protocol,
        AblationVariant, EvalPrecision, ExperimentConfig, ExplicitMemory, Fcr, FinetuneConfig,
        MetaLoss, MetalearnConfig, OFscilModel, PretrainConfig, SessionResults,
    };
    pub use ofscil_ctrl::{
        ClusterSnapshot, ControlAction, Controller, CtrlConfig, CtrlError, FollowerProcess,
        Planner, RateFeed, ShardState, StandbyFleet,
    };
    pub use ofscil_data::{
        Augmenter, AugmenterConfig, Batch, CutMix, Dataset, FscilBenchmark, FscilConfig, Mixup,
        Sample, SyntheticCifar, SyntheticConfig,
    };
    pub use ofscil_gap9::{
        deploy_backbone, deploy_fcr, estimate_execution, Gap9Config, Gap9Executor, OperationCost,
        PowerModel,
    };
    pub use ofscil_nn::models::{BackboneKind, MobileNetVariant};
    pub use ofscil_nn::profile::{profile_backbone, profile_with_fcr};
    pub use ofscil_nn::{Layer, Mode};
    pub use ofscil_obs::{
        ChunkSpill, Event, EventKind, EventSink, LatencyHistogram, Obs, ObsConfig,
        ObsCursor, ObsQuery, ObsResult, ObsStore, ObsTail, Resolution, Rollup, TailBatch,
    };
    pub use ofscil_quant::{ExplicitMemoryFootprint, FakeQuant, PrototypePrecision, QuantTensor};
    pub use ofscil_router::{
        ClusterTail, HashRing, MigrationReport, PoolConfig, RouterConfig, RouterError,
        RouterHandle, RouterServer, ShardHealth, ShardStats,
    };
    pub use ofscil_serve::{
        decode_explicit_memory, encode_explicit_memory, BudgetPolicy, CommitJournal,
        DeploymentExport, DeploymentSpec, DeploymentStats, DurabilityStats, LearnCommit,
        LearnerRegistry, PendingResponse, ServeClient, ServeConfig, ServeError, ServeRequest,
        ServeResponse, ServeRuntime,
    };
    pub use ofscil_store::{
        ObsSpill, RecoveryReport, SpillRecovery, Store, StoreConfig, StoreError, SyncPolicy,
    };
    pub use ofscil_tensor::{SeedRng, Tensor};
    pub use ofscil_wire::{
        BoundAddr, Follower, FollowerConfig, ObsTailStream, ReplEvent, WireBind, WireClient,
        WireConfig, WireError, WireServer,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        // Type-level smoke test: constructing the micro config must work from
        // the prelude alone.
        let config = ExperimentConfig::micro(0);
        assert_eq!(config.fscil.num_sessions, 8);
        let _ = Gap9Config::default();
        let _ = SeedRng::new(0);
        let registry = LearnerRegistry::new();
        assert!(registry.is_empty());
        ServeConfig::default().validate().unwrap();
    }
}
