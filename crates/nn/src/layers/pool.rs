//! Pooling layers.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::Tensor;

/// Global average pooling: `[batch, channels, h, w] -> [batch, channels]`.
///
/// Used as the final spatial reduction of both backbones before the FCR.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "global_avg_pool".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = input.dims();
        if dims.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: "[batch, channels, h, w]".into(),
                actual: dims.to_vec(),
            });
        }
        let (batch, channels, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = h * w;
        let mut out = vec![0.0f32; batch * channels];
        for b in 0..batch {
            for c in 0..channels {
                let base = (b * channels + c) * spatial;
                out[b * channels + c] =
                    input.as_slice()[base..base + spatial].iter().sum::<f32>() / spatial as f32;
            }
        }
        if mode.is_train() {
            self.cached_dims = Some(dims.to_vec());
        }
        Tensor::from_vec(out, &[batch, channels]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        let (batch, channels, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_output.dims() != [batch, channels] {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[{batch}, {channels}]"),
                actual: grad_output.dims().to_vec(),
            });
        }
        let spatial = h * w;
        let mut grad = vec![0.0f32; batch * channels * spatial];
        for b in 0..batch {
            for c in 0..channels {
                let g = grad_output.as_slice()[b * channels + c] / spatial as f32;
                let base = (b * channels + c) * spatial;
                for s in 0..spatial {
                    grad[base + s] = g;
                }
            }
        }
        Tensor::from_vec(grad, &dims).map_err(NnError::from)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: "[batch, channels, h, w]".into(),
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], input[1]])
    }
}

/// 2×2 max pooling with stride 2: `[batch, c, h, w] -> [batch, c, h/2, w/2]`.
///
/// Used between the stages of the ResNet-12 backbone (the convolutions run at
/// full stage resolution and the pooling performs the downsampling).
#[derive(Debug, Default)]
pub struct MaxPool2d {
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input dims, argmax indices)
}

impl MaxPool2d {
    /// Creates a 2×2 stride-2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2d { cache: None }
    }

    fn check(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize)> {
        if dims.len() != 4 || dims[2] < 2 || dims[3] < 2 {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: "[batch, channels, h>=2, w>=2]".into(),
                actual: dims.to_vec(),
            });
        }
        Ok((dims[0], dims[1], dims[2], dims[3]))
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        "max_pool2d(2x2)".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (batch, channels, h, w) = self.check(input.dims())?;
        let (oh, ow) = (h / 2, w / 2);
        let src = input.as_slice();
        let mut out = vec![0.0f32; batch * channels * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for b in 0..batch {
            for c in 0..channels {
                let base = (b * channels + c) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = base + (2 * oy) * w + 2 * ox;
                        let mut best = src[best_idx];
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = base + (2 * oy + dy) * w + (2 * ox + dx);
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let dst = (b * channels + c) * oh * ow + oy * ow + ox;
                        out[dst] = best;
                        argmax[dst] = best_idx;
                    }
                }
            }
        }
        if mode.is_train() {
            self.cache = Some((input.dims().to_vec(), argmax));
        }
        Tensor::from_vec(out, &[batch, channels, oh, ow]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (in_dims, argmax) = self
            .cache
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        if grad_output.len() != argmax.len() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("{} elements", argmax.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut grad = vec![0.0f32; in_dims.iter().product()];
        for (g, &idx) in grad_output.as_slice().iter().zip(&argmax) {
            grad[idx] += g;
        }
        Tensor::from_vec(grad, &in_dims).map_err(NnError::from)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (batch, channels, h, w) = self.check(input)?;
        Ok(vec![batch, channels, h / 2, w / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_selects_maximum() {
        let mut pool = MaxPool2d::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        // Backward routes gradients to the argmax positions only.
        let g = pool.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.as_slice()[5], 1.0);
        assert_eq!(g.as_slice()[0], 0.0);
    }

    #[test]
    fn max_pool_rejects_small_inputs() {
        let mut pool = MaxPool2d::new();
        assert!(pool.forward(&Tensor::ones(&[1, 1, 1, 4]), Mode::Eval).is_err());
        assert!(pool.output_dims(&[1, 1, 4]).is_err());
        assert!(pool.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn averages_spatial_extent() {
        let mut pool = GlobalAvgPool::new();
        // 2 samples × 1 channel × 2×2 spatial.
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 1, 2, 2])
            .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 1]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::ones(&[1, 2, 2, 2]);
        pool.forward(&x, Mode::Train).unwrap();
        let g = pool.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap()).unwrap();
        assert_eq!(g.dims(), &[1, 2, 2, 2]);
        assert_eq!(&g.as_slice()[..4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&g.as_slice()[4..], &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn rejects_bad_rank() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.forward(&Tensor::ones(&[2, 3]), Mode::Eval).is_err());
        assert!(pool.output_dims(&[2, 3]).is_err());
        assert!(pool.backward(&Tensor::ones(&[1, 2])).is_err());
    }
}
