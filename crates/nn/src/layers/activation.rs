//! Pointwise activations: ReLU and ReLU6.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::Tensor;

/// Rectified linear unit: `max(x, 0)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> String {
        "relu".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode.is_train() {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        if mask.len() != grad_output.len() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("{} elements", mask.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let data: Vec<f32> = grad_output
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.dims()).map_err(NnError::from)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }
}

/// ReLU6: `min(max(x, 0), 6)`, the activation used throughout MobileNetV2.
#[derive(Debug, Default)]
pub struct Relu6 {
    mask: Option<Vec<bool>>,
}

impl Relu6 {
    /// Creates a ReLU6 activation.
    pub fn new() -> Self {
        Relu6 { mask: None }
    }
}

impl Layer for Relu6 {
    fn name(&self) -> String {
        "relu6".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode.is_train() {
            self.mask = Some(
                input
                    .as_slice()
                    .iter()
                    .map(|&x| x > 0.0 && x < 6.0)
                    .collect(),
            );
        }
        Ok(input.map(|x| x.clamp(0.0, 6.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        if mask.len() != grad_output.len() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("{} elements", mask.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let data: Vec<f32> = grad_output
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.dims()).map_err(NnError::from)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-2.0, 0.0, 3.0]);
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
        assert!(relu.backward(&Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let mut relu6 = Relu6::new();
        let x = Tensor::from_slice(&[-1.0, 3.0, 7.0]);
        let y = relu6.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0]);
        let g = relu6.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn no_params_and_shape_preserved() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        assert_eq!(relu.output_dims(&[4, 7]).unwrap(), vec![4, 7]);
        let mut relu6 = Relu6::new();
        assert_eq!(relu6.param_count(), 0);
    }

    #[test]
    fn backward_rejects_wrong_length() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::ones(&[4]), Mode::Train).unwrap();
        assert!(relu.backward(&Tensor::ones(&[5])).is_err());
    }
}
