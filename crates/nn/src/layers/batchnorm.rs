//! Batch normalisation over the channel dimension.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::Tensor;

/// Batch normalisation.
///
/// Accepts either `[batch, channels, h, w]` activations (per-channel
/// statistics over `batch * h * w` elements) or `[batch, features]`
/// activations (per-feature statistics over the batch).
///
/// In [`Mode::Train`] batch statistics are used and running statistics are
/// updated with exponential momentum; in [`Mode::Eval`] the running statistics
/// are used.
#[derive(Debug)]
pub struct BatchNorm {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Parameter,
    beta: Parameter,
    running_mean: Parameter,
    running_var: Parameter,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-normalisation layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Parameter::new("gamma", Tensor::ones(&[channels])),
            beta: Parameter::new("beta", Tensor::zeros(&[channels])),
            running_mean: Parameter::frozen("running_mean", Tensor::zeros(&[channels])),
            running_var: Parameter::frozen("running_var", Tensor::ones(&[channels])),
            cache: None,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Returns the running mean (used by the quantizer to fold BN into convs).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean.value
    }

    /// Returns the running variance.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var.value
    }

    /// Returns the scale parameter γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma.value
    }

    /// Returns the shift parameter β.
    pub fn beta(&self) -> &Tensor {
        &self.beta.value
    }

    /// Numerical-stability epsilon used in the variance denominator.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    fn layout(&self, dims: &[usize]) -> Result<(usize, usize)> {
        // Returns (groups, spatial): groups = batch, spatial = h*w (or 1).
        match dims {
            [batch, c] if *c == self.channels => Ok((*batch, 1)),
            [batch, c, h, w] if *c == self.channels => Ok((*batch, h * w)),
            _ => Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}] or [batch, {}, h, w]", self.channels, self.channels),
                actual: dims.to_vec(),
            }),
        }
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> String {
        format!("batchnorm({})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (batch, spatial) = self.layout(input.dims())?;
        let count = (batch * spatial) as f32;
        let c = self.channels;
        let src = input.as_slice();

        let (mean, var) = if mode.is_train() {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for b in 0..batch {
                for (ch, m) in mean.iter_mut().enumerate() {
                    let base = (b * c + ch) * spatial;
                    for s in 0..spatial {
                        *m += src[base + s];
                    }
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            for b in 0..batch {
                for ch in 0..c {
                    let base = (b * c + ch) * spatial;
                    for s in 0..spatial {
                        let d = src[base + s] - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= count;
            }
            // Update running statistics.
            for ch in 0..c {
                let rm = &mut self.running_mean.value.as_mut_slice()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ch];
                let rv = &mut self.running_var.value.as_mut_slice()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ch];
            }
            (mean, var)
        } else {
            (
                self.running_mean.value.as_slice().to_vec(),
                self.running_var.value.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = vec![0.0f32; src.len()];
        let mut x_hat = vec![0.0f32; src.len()];
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        for b in 0..batch {
            for ch in 0..c {
                let base = (b * c + ch) * spatial;
                for s in 0..spatial {
                    let xh = (src[base + s] - mean[ch]) * inv_std[ch];
                    x_hat[base + s] = xh;
                    out[base + s] = gamma[ch] * xh + beta[ch];
                }
            }
        }

        if mode.is_train() {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, input.dims())?,
                inv_std,
                dims: input.dims().to_vec(),
            });
        }
        Tensor::from_vec(out, input.dims()).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        if grad_output.dims() != cache.dims.as_slice() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("{:?}", cache.dims),
                actual: grad_output.dims().to_vec(),
            });
        }
        let (batch, spatial) = self.layout(&cache.dims)?;
        let count = (batch * spatial) as f32;
        let c = self.channels;
        let dy = grad_output.as_slice();
        let xh = cache.x_hat.as_slice();
        let gamma: Vec<f32> = self.gamma.value.as_slice().to_vec();

        // Per-channel sums needed by the closed-form BN backward pass.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for b in 0..batch {
            for ch in 0..c {
                let base = (b * c + ch) * spatial;
                for s in 0..spatial {
                    sum_dy[ch] += dy[base + s];
                    sum_dy_xhat[ch] += dy[base + s] * xh[base + s];
                }
            }
        }
        self.gamma.accumulate_grad(&Tensor::from_slice(&sum_dy_xhat));
        self.beta.accumulate_grad(&Tensor::from_slice(&sum_dy));

        let mut grad_input = vec![0.0f32; dy.len()];
        for b in 0..batch {
            for ch in 0..c {
                let base = (b * c + ch) * spatial;
                let scale = gamma[ch] * cache.inv_std[ch];
                for s in 0..spatial {
                    grad_input[base + s] = scale
                        * (dy[base + s]
                            - sum_dy[ch] / count
                            - xh[base + s] * sum_dy_xhat[ch] / count);
                }
            }
        }
        Tensor::from_vec(grad_input, &cache.dims).map_err(NnError::from)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
        visitor(&mut self.running_mean);
        visitor(&mut self.running_var);
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        self.layout(input)?;
        Ok(input.to_vec())
    }

    fn weight_count(&self) -> u64 {
        // On-device the scale and shift are folded into the preceding
        // convolution; γ and β still need to be resident.
        2 * self.channels as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn train_output_is_normalised() {
        let mut bn = BatchNorm::new(3);
        let mut rng = SeedRng::new(0);
        let x = Tensor::from_vec(
            (0..4 * 3 * 4 * 4).map(|_| rng.normal_with(5.0, 3.0)).collect(),
            &[4, 3, 4, 4],
        )
        .unwrap();
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for s in 0..16 {
                    vals.push(y.as_slice()[(b * 3 + ch) * 16 + s]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm::new(2);
        let mut rng = SeedRng::new(1);
        // Feed many batches so the running stats converge to the data stats.
        for _ in 0..200 {
            let x = Tensor::from_vec(
                (0..8 * 2).map(|_| rng.normal_with(2.0, 0.5)).collect(),
                &[8, 2],
            )
            .unwrap();
            bn.forward(&x, Mode::Train).unwrap();
        }
        let x = Tensor::full(&[1, 2], 2.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // An input equal to the running mean must map close to beta (=0).
        assert!(y.as_slice().iter().all(|v| v.abs() < 0.2), "{:?}", y.as_slice());
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm::new(4);
        assert!(bn.forward(&Tensor::ones(&[2, 3, 4, 4]), Mode::Train).is_err());
        assert!(bn.output_dims(&[2, 3]).is_err());
        assert_eq!(bn.output_dims(&[2, 4]).unwrap(), vec![2, 4]);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new(2);
        let mut rng = SeedRng::new(5);
        let x = Tensor::from_vec(
            (0..6 * 2).map(|_| rng.normal_with(1.0, 2.0)).collect(),
            &[6, 2],
        )
        .unwrap();
        // Use a non-uniform upstream gradient, otherwise the BN backward is
        // trivially zero (sum of dy is removed by the mean term).
        let upstream = Tensor::from_vec(
            (0..12).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect(),
            &[6, 2],
        )
        .unwrap();
        let y = bn.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), x.dims());
        let grad_in = bn.backward(&upstream).unwrap();

        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            let y = bn.forward(x, Mode::Train).unwrap();
            y.mul(&upstream).unwrap().sum()
        };
        let eps = 1e-2;
        for &idx in &[0usize, 3, 7, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            // Fresh BN copies so running stats do not drift between probes.
            let mut bn_p = BatchNorm::new(2);
            let mut bn_m = BatchNorm::new(2);
            let numeric = (loss(&mut bn_p, &xp) - loss(&mut bn_m, &xm)) / (2.0 * eps);
            let analytic = grad_in.as_slice()[idx];
            assert!((numeric - analytic).abs() < 0.05, "{numeric} vs {analytic}");
        }
    }

    #[test]
    fn only_gamma_beta_are_trainable() {
        let mut bn = BatchNorm::new(8);
        assert_eq!(bn.param_count(), 16);
        let mut names = Vec::new();
        bn.visit_params(&mut |p| names.push(p.name().to_string()));
        assert_eq!(names, vec!["gamma", "beta", "running_mean", "running_var"]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm::new(2);
        assert!(matches!(
            bn.backward(&Tensor::ones(&[2, 2])),
            Err(NnError::NoForwardCache(_))
        ));
    }
}
