//! Standard 2-D convolution executed as im2col + matrix multiplication.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::{col2im, im2col, Conv2dGeometry, Init, Initializer, SeedRng, Tensor};

/// A 2-D convolution with square kernel, shared stride/padding on both axes.
///
/// * input: `[batch, in_channels, h, w]`
/// * weight: `[out_channels, in_channels * k * k]`
/// * output: `[batch, out_channels, h', w']`
#[derive(Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Parameter,
    bias: Option<Parameter>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal initialised weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut SeedRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let mut init = Initializer::new(rng.fork(0xc0c0));
        let weight = Parameter::new(
            "weight",
            init.tensor(&[out_channels, fan_in], Init::KaimingNormal { fan_in }),
        );
        let bias = bias.then(|| Parameter::new("bias", Tensor::zeros(&[out_channels])));
        Conv2d { in_channels, out_channels, kernel, stride, padding, weight, bias, cached_input: None }
    }

    /// The convolution geometry for a given input height/width.
    pub fn geometry(&self, in_h: usize, in_w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(in_h, in_w, self.kernel, self.stride, self.padding)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Kernel size of the convolution.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Immutable access to the weight matrix (`[out_c, in_c * k * k]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight matrix.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    fn check_input(&self, dims: &[usize]) -> Result<(usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}, h, w]", self.in_channels),
                actual: dims.to_vec(),
            });
        }
        Ok((dims[0], dims[2], dims[3]))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv2d({}→{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (batch, in_h, in_w) = self.check_input(input.dims())?;
        let geom = self.geometry(in_h, in_w);
        geom.validate()?;
        let (out_h, out_w) = (geom.out_h(), geom.out_w());
        let plane = self.in_channels * in_h * in_w;
        let out_plane = self.out_channels * out_h * out_w;
        let mut out = vec![0.0f32; batch * out_plane];

        for b in 0..batch {
            let image = Tensor::from_vec(
                input.as_slice()[b * plane..(b + 1) * plane].to_vec(),
                &[self.in_channels, in_h, in_w],
            )?;
            let cols = im2col(&image, self.in_channels, &geom)?;
            let result = self.weight.value.matmul(&cols)?;
            let dst = &mut out[b * out_plane..(b + 1) * out_plane];
            dst.copy_from_slice(result.as_slice());
            if let Some(bias) = &self.bias {
                for (c, chunk) in dst.chunks_mut(out_h * out_w).enumerate() {
                    let bv = bias.value.as_slice()[c];
                    for x in chunk {
                        *x += bv;
                    }
                }
            }
        }
        self.cached_input = mode.is_train().then(|| input.clone());
        Tensor::from_vec(out, &[batch, self.out_channels, out_h, out_w]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        let (batch, in_h, in_w) = self.check_input(input.dims())?;
        let geom = self.geometry(in_h, in_w);
        let (out_h, out_w) = (geom.out_h(), geom.out_w());
        if grad_output.dims() != [batch, self.out_channels, out_h, out_w] {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[{batch}, {}, {out_h}, {out_w}]", self.out_channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let plane = self.in_channels * in_h * in_w;
        let out_plane = self.out_channels * out_h * out_w;
        let mut grad_input = vec![0.0f32; batch * plane];
        let weight_t = self.weight.value.transpose()?;

        for b in 0..batch {
            let image = Tensor::from_vec(
                input.as_slice()[b * plane..(b + 1) * plane].to_vec(),
                &[self.in_channels, in_h, in_w],
            )?;
            // Recompute the patch matrix instead of caching it: trades a
            // second im2col for a large reduction in peak training memory.
            let cols = im2col(&image, self.in_channels, &geom)?;
            let grad_y = Tensor::from_vec(
                grad_output.as_slice()[b * out_plane..(b + 1) * out_plane].to_vec(),
                &[self.out_channels, out_h * out_w],
            )?;
            let grad_w = grad_y.matmul(&cols.transpose()?)?;
            self.weight.accumulate_grad(&grad_w);
            if let Some(bias) = &mut self.bias {
                let mut gb = vec![0.0f32; self.out_channels];
                for (c, g) in gb.iter_mut().enumerate() {
                    *g = grad_y.row(c)?.iter().sum();
                }
                bias.accumulate_grad(&Tensor::from_slice(&gb));
            }
            let grad_cols = weight_t.matmul(&grad_y)?;
            let grad_img = col2im(&grad_cols, self.in_channels, &geom)?;
            grad_input[b * plane..(b + 1) * plane].copy_from_slice(grad_img.as_slice());
        }
        Tensor::from_vec(grad_input, input.dims()).map_err(NnError::from)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            visitor(bias);
        }
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (batch, in_h, in_w) = self.check_input(input)?;
        let geom = self.geometry(in_h, in_w);
        geom.validate()?;
        Ok(vec![batch, self.out_channels, geom.out_h(), geom.out_w()])
    }

    fn macs(&self, input: &[usize]) -> u64 {
        // `input` is the batch-less shape [channels, h, w].
        if input.len() != 3 {
            return 0;
        }
        let geom = self.geometry(input[1], input[2]);
        (self.out_channels * self.in_channels * self.kernel * self.kernel) as u64
            * geom.out_pixels() as u64
    }

    fn weight_count(&self) -> u64 {
        let bias = if self.bias.is_some() { self.out_channels } else { 0 };
        (self.out_channels * self.in_channels * self.kernel * self.kernel + bias) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = SeedRng::new(0);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, true, &mut rng);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4, 4]);
        assert_eq!(conv.output_dims(&[2, 3, 8, 8]).unwrap(), vec![2, 8, 4, 4]);
        assert!(conv.forward(&Tensor::ones(&[2, 4, 8, 8]), Mode::Eval).is_err());
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = SeedRng::new(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        conv.weight_mut().as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_sum_kernel() {
        // A 3x3 all-ones kernel over an all-ones 3x3 input with padding 1:
        // centre output = 9, corners = 4, edges = 6.
        let mut rng = SeedRng::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        conv.weight_mut().fill(1.0);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(
            y.as_slice(),
            &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]
        );
    }

    #[test]
    fn gradient_check_input_and_weight() {
        let mut rng = SeedRng::new(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 2 * 4 * 4).map(|i| ((i % 7) as f32 - 3.0) * 0.3).collect(),
            &[2, 2, 4, 4],
        )
        .unwrap();
        let y = conv.forward(&x, Mode::Train).unwrap();
        let grad_in = conv.backward(&Tensor::ones(y.dims())).unwrap();
        let analytic_w = conv.weight.grad.clone();

        let eps = 1e-2;
        // dL/dx spot check
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = conv.forward(&xp, Mode::Eval).unwrap().sum();
            let lm = conv.forward(&xm, Mode::Eval).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.as_slice()[idx];
            assert!((numeric - analytic).abs() < 0.05, "x[{idx}]: {numeric} vs {analytic}");
        }
        // dL/dW spot check
        for &idx in &[0usize, 7, 20] {
            let orig = conv.weight.value.as_slice()[idx];
            conv.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = conv.forward(&x, Mode::Eval).unwrap().sum();
            conv.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = conv.forward(&x, Mode::Eval).unwrap().sum();
            conv.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_w.as_slice()[idx];
            assert!((numeric - analytic).abs() < 0.05, "w[{idx}]: {numeric} vs {analytic}");
        }
    }

    #[test]
    fn mac_count_matches_formula() {
        let mut rng = SeedRng::new(0);
        let conv = Conv2d::new(16, 32, 3, 1, 1, false, &mut rng);
        // 32 * 16 * 3 * 3 * 8 * 8
        assert_eq!(conv.macs(&[16, 8, 8]), 32 * 16 * 9 * 64);
        assert_eq!(conv.macs(&[16, 8]), 0);
    }

    #[test]
    fn param_count() {
        let mut rng = SeedRng::new(0);
        let mut conv = Conv2d::new(4, 8, 3, 1, 1, true, &mut rng);
        assert_eq!(conv.param_count(), (8 * 4 * 9 + 8) as u64);
    }
}
