//! Primitive layers: convolutions, batch normalisation, activations, pooling,
//! linear projections and the [`Sequential`] container.

mod activation;
mod batchnorm;
mod conv2d;
mod dwconv;
mod flatten;
mod linear;
mod pool;
mod sequential;

pub use activation::{Relu, Relu6};
pub use batchnorm::BatchNorm;
pub use conv2d::Conv2d;
pub use dwconv::DepthwiseConv2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use sequential::Sequential;
