//! Fully connected layer.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::{Axis, Init, Initializer, SeedRng, Tensor};

/// A fully connected (dense) layer: `y = x · Wᵀ + b`.
///
/// Weight shape is `[out_features, in_features]`, input shape `[batch,
/// in_features]`.
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Parameter,
    bias: Option<Parameter>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a new linear layer with Kaiming-normal weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut SeedRng) -> Self {
        let mut init = Initializer::new(rng.fork(0x11ea));
        let weight = Parameter::new(
            "weight",
            init.tensor(&[out_features, in_features], Init::KaimingNormal { fan_in: in_features }),
        );
        let bias = bias.then(|| Parameter::new("bias", Tensor::zeros(&[out_features])));
        Linear { in_features, out_features, weight, bias, cached_input: None }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight matrix (`[out, in]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable access to the weight matrix, e.g. for loading pretrained
    /// parameters or bipolarised prototypes.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Immutable access to the bias vector, when present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref().map(|b| &b.value)
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.dims().len() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}]", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("linear({}x{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check_input(input)?;
        let wt = self.weight.value.transpose()?;
        let mut out = input.matmul(&wt)?;
        if let Some(bias) = &self.bias {
            let cols = self.out_features;
            for row in out.as_mut_slice().chunks_mut(cols) {
                for (x, b) in row.iter_mut().zip(bias.value.as_slice()) {
                    *x += b;
                }
            }
        }
        self.cached_input = mode.is_train().then(|| input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        if grad_output.dims() != [input.dims()[0], self.out_features] {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}]", self.out_features),
                actual: grad_output.dims().to_vec(),
            });
        }
        // dW = gradᵀ · x, db = Σ_batch grad, dx = grad · W
        let grad_w = grad_output.transpose()?.matmul(&input)?;
        self.weight.accumulate_grad(&grad_w);
        if let Some(bias) = &mut self.bias {
            let grad_b = grad_output.sum_axis(Axis(0))?;
            bias.accumulate_grad(&grad_b);
        }
        Ok(grad_output.matmul(&self.weight.value)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            visitor(bias);
        }
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 2 || input[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}]", self.in_features),
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], self.out_features])
    }

    fn macs(&self, _input: &[usize]) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    fn weight_count(&self) -> u64 {
        let bias = if self.bias.is_some() { self.out_features } else { 0 };
        (self.in_features * self.out_features + bias) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut Linear, x: &Tensor) {
        // Numerical gradient check of dL/dx where L = sum(forward(x)).
        let eps = 1e-3;
        let y = layer.forward(x, Mode::Train).unwrap();
        let grad_in = layer.backward(&Tensor::ones(y.dims())).unwrap();
        for idx in 0..x.len().min(6) {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = layer.forward(&xp, Mode::Eval).unwrap().sum();
            let lm = layer.forward(&xm, Mode::Eval).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} analytic {}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SeedRng::new(0);
        let mut layer = Linear::new(3, 5, true, &mut rng);
        let x = Tensor::ones(&[2, 3]);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
        assert!(layer.forward(&Tensor::ones(&[2, 4]), Mode::Eval).is_err());
        assert_eq!(layer.output_dims(&[2, 3]).unwrap(), vec![2, 5]);
        assert!(layer.output_dims(&[3]).is_err());
    }

    #[test]
    fn known_small_case() {
        let mut rng = SeedRng::new(0);
        let mut layer = Linear::new(2, 1, true, &mut rng);
        layer.weight_mut().as_mut_slice().copy_from_slice(&[2.0, -1.0]);
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[2.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = SeedRng::new(0);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        assert!(matches!(
            layer.backward(&Tensor::ones(&[1, 2])),
            Err(NnError::NoForwardCache(_))
        ));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(3);
        let mut layer = Linear::new(4, 3, true, &mut rng);
        let x = Tensor::from_vec((0..8).map(|i| 0.25 * i as f32 - 1.0).collect(), &[2, 4]).unwrap();
        finite_diff_check(&mut layer, &x);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(5);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]).unwrap();
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(y.dims())).unwrap();
        let analytic = layer.weight.grad.clone();

        let eps = 1e-3;
        for idx in 0..layer.weight.value.len() {
            let orig = layer.weight.value.as_slice()[idx];
            layer.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[idx]).abs() < 1e-2,
                "numeric {numeric} vs analytic {}",
                analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn param_count_and_macs() {
        let mut rng = SeedRng::new(0);
        let mut layer = Linear::new(10, 4, true, &mut rng);
        assert_eq!(layer.param_count(), 44);
        assert_eq!(layer.macs(&[10]), 40);
        let mut no_bias = Linear::new(10, 4, false, &mut rng);
        assert_eq!(no_bias.param_count(), 40);
    }
}
