//! Depthwise 2-D convolution (channel multiplier 1), the core of the
//! MobileNetV2 inverted-residual block.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::{col2im, im2col, Conv2dGeometry, Init, Initializer, SeedRng, Tensor};

/// Depthwise convolution: every input channel is convolved with its own
/// `k x k` kernel; channel count is preserved.
///
/// * input: `[batch, channels, h, w]`
/// * weight: `[channels, k * k]`
/// * output: `[batch, channels, h', w']`
#[derive(Debug)]
pub struct DepthwiseConv2d {
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Parameter,
    bias: Option<Parameter>,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal initialised weights.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut SeedRng,
    ) -> Self {
        let fan_in = kernel * kernel;
        let mut init = Initializer::new(rng.fork(0xd00d));
        let weight = Parameter::new(
            "weight",
            init.tensor(&[channels, fan_in], Init::KaimingNormal { fan_in }),
        );
        let bias = bias.then(|| Parameter::new("bias", Tensor::zeros(&[channels])));
        DepthwiseConv2d { channels, kernel, stride, padding, weight, bias, cached_input: None }
    }

    /// The convolution geometry for a given input height/width.
    pub fn geometry(&self, in_h: usize, in_w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(in_h, in_w, self.kernel, self.stride, self.padding)
    }

    /// Stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Mutable access to the weight matrix (`[channels, k * k]`).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    fn check_input(&self, dims: &[usize]) -> Result<(usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[batch, {}, h, w]", self.channels),
                actual: dims.to_vec(),
            });
        }
        Ok((dims[0], dims[2], dims[3]))
    }
}

impl Layer for DepthwiseConv2d {
    fn name(&self) -> String {
        format!("dwconv2d({}, k{}, s{})", self.channels, self.kernel, self.stride)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (batch, in_h, in_w) = self.check_input(input.dims())?;
        let geom = self.geometry(in_h, in_w);
        geom.validate()?;
        let (out_h, out_w) = (geom.out_h(), geom.out_w());
        let in_plane = in_h * in_w;
        let out_plane = out_h * out_w;
        let mut out = vec![0.0f32; batch * self.channels * out_plane];

        for b in 0..batch {
            for c in 0..self.channels {
                let offset = (b * self.channels + c) * in_plane;
                let channel = Tensor::from_vec(
                    input.as_slice()[offset..offset + in_plane].to_vec(),
                    &[1, in_h, in_w],
                )?;
                let cols = im2col(&channel, 1, &geom)?;
                let kernel = Tensor::from_vec(
                    self.weight.value.row(c)?.to_vec(),
                    &[1, self.kernel * self.kernel],
                )?;
                let result = kernel.matmul(&cols)?;
                let dst_off = (b * self.channels + c) * out_plane;
                let bias_v = self.bias.as_ref().map_or(0.0, |bias| bias.value.as_slice()[c]);
                for (dst, src) in out[dst_off..dst_off + out_plane]
                    .iter_mut()
                    .zip(result.as_slice())
                {
                    *dst = src + bias_v;
                }
            }
        }
        self.cached_input = mode.is_train().then(|| input.clone());
        Tensor::from_vec(out, &[batch, self.channels, out_h, out_w]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        let (batch, in_h, in_w) = self.check_input(input.dims())?;
        let geom = self.geometry(in_h, in_w);
        let (out_h, out_w) = (geom.out_h(), geom.out_w());
        if grad_output.dims() != [batch, self.channels, out_h, out_w] {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: format!("[{batch}, {}, {out_h}, {out_w}]", self.channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let in_plane = in_h * in_w;
        let out_plane = out_h * out_w;
        let mut grad_input = vec![0.0f32; batch * self.channels * in_plane];
        let mut grad_weight = Tensor::zeros(self.weight.value.dims());
        let mut grad_bias = vec![0.0f32; self.channels];

        for b in 0..batch {
            for (c, bias_slot) in grad_bias.iter_mut().enumerate() {
                let offset = (b * self.channels + c) * in_plane;
                let channel = Tensor::from_vec(
                    input.as_slice()[offset..offset + in_plane].to_vec(),
                    &[1, in_h, in_w],
                )?;
                let cols = im2col(&channel, 1, &geom)?;
                let g_off = (b * self.channels + c) * out_plane;
                let grad_y = Tensor::from_vec(
                    grad_output.as_slice()[g_off..g_off + out_plane].to_vec(),
                    &[1, out_plane],
                )?;
                // dW_c += grad_y · colsᵀ   (1 x k²)
                let gw = grad_y.matmul(&cols.transpose()?)?;
                for (dst, src) in grad_weight
                    .as_mut_slice()
                    [c * self.kernel * self.kernel..(c + 1) * self.kernel * self.kernel]
                    .iter_mut()
                    .zip(gw.as_slice())
                {
                    *dst += src;
                }
                *bias_slot += grad_y.sum();
                // dx_c = col2im(w_cᵀ · grad_y)
                let kernel = Tensor::from_vec(
                    self.weight.value.row(c)?.to_vec(),
                    &[1, self.kernel * self.kernel],
                )?;
                let grad_cols = kernel.transpose()?.matmul(&grad_y)?;
                let grad_img = col2im(&grad_cols, 1, &geom)?;
                for (dst, src) in grad_input[offset..offset + in_plane]
                    .iter_mut()
                    .zip(grad_img.as_slice())
                {
                    *dst += src;
                }
            }
        }
        self.weight.accumulate_grad(&grad_weight);
        if let Some(bias) = &mut self.bias {
            bias.accumulate_grad(&Tensor::from_slice(&grad_bias));
        }
        Tensor::from_vec(grad_input, input.dims()).map_err(NnError::from)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        visitor(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            visitor(bias);
        }
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        let (batch, in_h, in_w) = self.check_input(input)?;
        let geom = self.geometry(in_h, in_w);
        geom.validate()?;
        Ok(vec![batch, self.channels, geom.out_h(), geom.out_w()])
    }

    fn macs(&self, input: &[usize]) -> u64 {
        if input.len() != 3 {
            return 0;
        }
        let geom = self.geometry(input[1], input[2]);
        (self.channels * self.kernel * self.kernel) as u64 * geom.out_pixels() as u64
    }

    fn weight_count(&self) -> u64 {
        let bias = if self.bias.is_some() { self.channels } else { 0 };
        (self.channels * self.kernel * self.kernel + bias) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_preserves_channels() {
        let mut rng = SeedRng::new(0);
        let mut dw = DepthwiseConv2d::new(4, 3, 2, 1, true, &mut rng);
        let x = Tensor::ones(&[2, 4, 8, 8]);
        let y = dw.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 4, 4, 4]);
        assert!(dw.forward(&Tensor::ones(&[2, 3, 8, 8]), Mode::Eval).is_err());
    }

    #[test]
    fn channels_are_independent() {
        // Zero the kernel for channel 1; its output must be exactly zero while
        // channel 0 stays non-zero.
        let mut rng = SeedRng::new(1);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, false, &mut rng);
        for x in dw.weight_mut().as_mut_slice()[9..18].iter_mut() {
            *x = 0.0;
        }
        dw.weight_mut().as_mut_slice()[..9].copy_from_slice(&[1.0; 9]);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let y = dw.forward(&x, Mode::Eval).unwrap();
        let ch0: f32 = y.as_slice()[..16].iter().sum();
        let ch1: f32 = y.as_slice()[16..].iter().sum();
        assert!(ch0 > 0.0);
        assert_eq!(ch1, 0.0);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedRng::new(3);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, true, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5).map(|i| ((i % 5) as f32 - 2.0) * 0.4).collect(),
            &[2, 2, 5, 5],
        )
        .unwrap();
        let y = dw.forward(&x, Mode::Train).unwrap();
        let grad_in = dw.backward(&Tensor::ones(y.dims())).unwrap();
        let analytic_w = dw.weight.grad.clone();

        let eps = 1e-2;
        for &idx in &[0usize, 13, 49, 80] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = dw.forward(&xp, Mode::Eval).unwrap().sum();
            let lm = dw.forward(&xm, Mode::Eval).unwrap().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad_in.as_slice()[idx]).abs() < 0.05);
        }
        for &idx in &[0usize, 10, 17] {
            let orig = dw.weight.value.as_slice()[idx];
            dw.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = dw.forward(&x, Mode::Eval).unwrap().sum();
            dw.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = dw.forward(&x, Mode::Eval).unwrap().sum();
            dw.weight.value.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - analytic_w.as_slice()[idx]).abs() < 0.05);
        }
    }

    #[test]
    fn macs_and_params() {
        let mut rng = SeedRng::new(0);
        let mut dw = DepthwiseConv2d::new(32, 3, 1, 1, false, &mut rng);
        assert_eq!(dw.macs(&[32, 16, 16]), 32 * 9 * 256);
        assert_eq!(dw.param_count(), 32 * 9);
    }
}
