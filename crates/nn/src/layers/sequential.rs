//! A container running layers in order.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::Tensor;

/// A sequence of layers executed in order; the backward pass walks the layers
/// in reverse.
///
/// `Sequential` is itself a [`Layer`], so blocks and whole backbones compose
/// naturally.
#[derive(Default)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field("layers", &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty container with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential { name: name.into(), layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the child layers.
    pub fn iter(&self) -> impl Iterator<Item = &Box<dyn Layer>> {
        self.layers.iter()
    }

    /// Per-layer MAC counts for a single sample with the given batch-less
    /// input dims; used by the profiler and the GAP9 deployment model.
    ///
    /// # Errors
    ///
    /// Returns an error when a layer rejects the propagated shape.
    pub fn macs_per_layer(&self, input: &[usize]) -> Result<Vec<(String, u64)>> {
        let mut shape = {
            let mut v = vec![1];
            v.extend_from_slice(input);
            v
        };
        let mut out = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            out.push((layer.name(), layer.macs(&shape[1..])));
            shape = layer.output_dims(&shape)?;
        }
        Ok(out)
    }
}

impl Layer for Sequential {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig(format!(
                "sequential {} has no layers",
                self.name
            )));
        }
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_dims(&shape)?;
        }
        Ok(shape)
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let mut shape = {
            let mut v = vec![1usize];
            v.extend_from_slice(input);
            v
        };
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.macs(&shape[1..]);
            match layer.output_dims(&shape) {
                Ok(next) => shape = next,
                Err(_) => return total,
            }
        }
        total
    }

    fn weight_count(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use ofscil_tensor::SeedRng;

    fn tiny_mlp() -> Sequential {
        let mut rng = SeedRng::new(0);
        Sequential::new("mlp")
            .with(Linear::new(4, 8, true, &mut rng))
            .with(Relu::new())
            .with(Linear::new(8, 2, true, &mut rng))
    }

    #[test]
    fn forward_chains_layers() {
        let mut mlp = tiny_mlp();
        let y = mlp.forward(&Tensor::ones(&[3, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(mlp.output_dims(&[3, 4]).unwrap(), vec![3, 2]);
        assert_eq!(mlp.len(), 3);
        assert!(!mlp.is_empty());
    }

    #[test]
    fn backward_chains_in_reverse() {
        let mut mlp = tiny_mlp();
        let x = Tensor::ones(&[2, 4]);
        let y = mlp.forward(&x, Mode::Train).unwrap();
        let g = mlp.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // All parameters received gradients.
        let mut any_nonzero = false;
        mlp.visit_params(&mut |p| {
            if p.trainable && p.grad.max_abs() > 0.0 {
                any_nonzero = true;
            }
        });
        assert!(any_nonzero);
    }

    #[test]
    fn empty_sequential_backward_errors() {
        let mut s = Sequential::new("empty");
        assert!(s.backward(&Tensor::ones(&[1])).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn macs_accumulate() {
        let mlp = tiny_mlp();
        assert_eq!(mlp.macs(&[4]), (4 * 8 + 8 * 2) as u64);
        let per_layer = mlp.macs_per_layer(&[4]).unwrap();
        assert_eq!(per_layer.len(), 3);
        assert_eq!(per_layer[0].1, 32);
        assert_eq!(per_layer[1].1, 0);
        assert_eq!(per_layer[2].1, 16);
    }

    #[test]
    fn zero_grads_resets_all() {
        let mut mlp = tiny_mlp();
        let x = Tensor::ones(&[2, 4]);
        let y = mlp.forward(&x, Mode::Train).unwrap();
        mlp.backward(&Tensor::ones(y.dims())).unwrap();
        mlp.zero_grads();
        mlp.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }
}
