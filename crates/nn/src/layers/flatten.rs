//! Flatten layer: collapses everything after the batch dimension.

use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::Tensor;

/// Flattens `[batch, d1, d2, …]` into `[batch, d1*d2*…]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: "at least rank 1".into(),
                actual: dims.to_vec(),
            });
        }
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product::<usize>().max(1);
        if mode.is_train() {
            self.cached_dims = Some(dims.to_vec());
        }
        Ok(input.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_dims
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        Ok(grad_output.reshape(&dims)?)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Parameter)) {}

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name(),
                expected: "at least rank 1".into(),
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], input[1..].iter().product::<usize>().max(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 5]);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        let g = f.backward(&Tensor::ones(&[2, 60])).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4, 5]);
        assert_eq!(f.output_dims(&[7, 8]).unwrap(), vec![7, 8]);
    }

    #[test]
    fn rejects_rank_zero() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::scalar(1.0), Mode::Eval).is_err());
        assert!(f.output_dims(&[]).is_err());
    }
}
