//! The `Layer` trait: explicit forward/backward with parameter visitation.

use crate::{Parameter, Result};
use ofscil_tensor::Tensor;

/// Execution mode of a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: activations are cached for the backward pass and
    /// batch-normalisation uses batch statistics.
    Train,
    /// Inference: no caching, running statistics are used.
    Eval,
}

impl Mode {
    /// Returns `true` in training mode.
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A differentiable network component.
///
/// Layers are stateful: `forward(Mode::Train)` caches whatever the layer
/// needs, and the next `backward` consumes that cache, accumulates parameter
/// gradients and returns the gradient with respect to the layer input.
///
/// Containers ([`crate::layers::Sequential`], the residual blocks) implement
/// the same trait, so whole backbones are just `Layer`s.
pub trait Layer: Send {
    /// Human-readable layer name (used in error messages and profiling).
    fn name(&self) -> String;

    /// Runs the layer on `input`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_output` back through the layer, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::NoForwardCache`] when called before a
    /// training-mode forward pass.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every parameter of the layer (and sub-layers) in a fixed,
    /// deterministic order.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter));

    /// Computes the output dimensions for a given input shape without running
    /// the layer.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>>;

    /// Number of multiply-accumulate operations for one sample with the given
    /// (batch-less) input dimensions. Defaults to zero for parameter-free
    /// layers.
    fn macs(&self, _input: &[usize]) -> u64 {
        0
    }

    /// Number of weight parameters that must be resident on a device to run
    /// this layer (excludes optimizer state); zero for parameter-free layers.
    /// Unlike [`Layer::param_count`] this is callable without mutable access,
    /// which the deployment cost models rely on.
    fn weight_count(&self) -> u64 {
        0
    }

    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalar parameters.
    fn param_count(&mut self) -> u64 {
        let mut count = 0u64;
        self.visit_params(&mut |p| {
            if p.trainable {
                count += p.len() as u64;
            }
        });
        count
    }

    /// Freezes (or unfreezes) every parameter of the layer.
    fn set_trainable(&mut self, trainable: bool) {
        self.visit_params(&mut |p| p.trainable = trainable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_is_train() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }

    #[test]
    fn layer_trait_is_object_safe() {
        fn _takes_dyn(_l: &mut dyn Layer) {}
    }
}
