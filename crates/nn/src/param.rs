//! Trainable parameters: a value tensor paired with its gradient accumulator.

use ofscil_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: the value tensor plus an accumulated gradient of the
/// same shape.
///
/// Layers own their `Parameter`s; optimizers visit them through
/// [`crate::Layer::visit_params`] in a deterministic order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Human-readable name, unique within its owning layer.
    name: String,
    /// The parameter value.
    pub value: Tensor,
    /// The accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether the optimizer should update this parameter.
    pub trainable: bool,
}

impl Parameter {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter { name: name.into(), value, grad, trainable: true }
    }

    /// Creates a non-trainable (frozen) parameter, e.g. running statistics.
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter { name: name.into(), value, grad, trainable: false }
    }

    /// Returns the parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Accumulates `delta` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `delta` has a different shape from the parameter — that is
    /// always a programming error inside a layer's backward pass.
    pub fn accumulate_grad(&mut self, delta: &Tensor) {
        self.grad
            .axpy(1.0, delta)
            .expect("gradient shape must match parameter shape");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_parameter_has_zero_grad() {
        let p = Parameter::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.grad, Tensor::zeros(&[2, 3]));
        assert!(p.trainable);
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn frozen_parameter_is_not_trainable() {
        let p = Parameter::frozen("running_mean", Tensor::zeros(&[4]));
        assert!(!p.trainable);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Parameter::new("b", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        assert_eq!(p.grad.as_slice(), &[2.0, 2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn mismatched_grad_panics() {
        let mut p = Parameter::new("b", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::ones(&[4]));
    }
}
